//! Byte-identity of byte-weighted shard balancing across engines.
//!
//! The weighted chunking the parallel engine now defaults to moves shard
//! *boundaries*, never stream *bytes*: every round must match a
//! journal-free sequential reference byte-for-byte on heaps skewed enough
//! that weighted and count-balanced boundaries genuinely differ —
//! including rounds served from the dirty-set journal fast path and
//! rounds whose ref rewires force a plan recompute.

use ickp_backend::{Engine, GenericBackend, ParallelBackend};
use ickp_core::{plan_shards, CheckpointConfig, Checkpointer, MethodTable, ShardBalance};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;

/// Mirrored heaps with heavily skewed root weights: a few long chains up
/// front, then a tail of singletons. Count-balanced and byte-weighted
/// chunking place different boundaries on this shape.
fn skewed_world() -> (Heap, Heap, Vec<ObjectId>, Vec<Vec<ObjectId>>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let build = |reg: &ClassRegistry| {
        let mut heap = Heap::new(reg.clone());
        let mut roots = Vec::new();
        let mut chains = Vec::new();
        for len in [14usize, 10, 6, 1, 1, 1, 1, 1, 1, 1, 1, 1] {
            let mut ids = Vec::new();
            let mut next = None;
            for _ in 0..len {
                let e = heap.alloc(node).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                ids.push(e);
            }
            ids.reverse();
            roots.push(ids[0]);
            chains.push(ids);
        }
        (heap, roots, chains)
    };
    let (a, roots_a, chains_a) = build(&reg);
    let (b, roots_b, _) = build(&reg);
    assert_eq!(roots_a, roots_b, "mirrored construction diverged");
    (a, b, roots_a, chains_a)
}

/// The same random write script on both mirrors: mostly scalar writes
/// (journal-friendly), occasionally a rewire within one chain that bumps
/// `structure_version` and invalidates cached plans.
fn mutate(rng: &mut Prng, heaps: [&mut Heap; 2], chains: &[Vec<ObjectId>]) {
    let [a, b] = heaps;
    for _ in 0..1 + rng.index(6) {
        let chain = rng.index(chains.len());
        let pos = rng.index(chains[chain].len());
        let id = chains[chain][pos];
        if rng.ratio(1, 8) {
            let target =
                if rng.next_bool() { None } else { Some(chains[chain][chains[chain].len() - 1]) };
            a.set_field(id, 1, Value::Ref(target)).unwrap();
            b.set_field(id, 1, Value::Ref(target)).unwrap();
        } else {
            let v = rng.next_i32();
            a.set_field(id, 0, Value::Int(v)).unwrap();
            b.set_field(id, 0, Value::Int(v)).unwrap();
        }
    }
}

/// The skew is real: on this world, weighted and count-balanced plans
/// disagree (otherwise the byte-identity rounds below prove nothing).
#[test]
fn weighted_and_counted_plans_actually_differ_on_the_skewed_world() {
    let (heap, _, roots, _) = skewed_world();
    let weighted = plan_shards(&heap, &roots, 4, ShardBalance::Bytes).unwrap();
    let counted = plan_shards(&heap, &roots, 4, ShardBalance::RootCount).unwrap();
    assert_ne!(
        weighted.objects_per_shard(),
        counted.objects_per_shard(),
        "skewed world no longer separates the two balance strategies"
    );
}

/// **Weighted parallel vs sequential reference, with the journal on**:
/// every round byte-identical, and the script drives both journal-served
/// fast-path rounds and slow-path rounds through plan recomputes.
#[test]
fn weighted_parallel_matches_the_reference_through_journal_and_replans() {
    for workers in [2usize, 4] {
        let mut rng = Prng::seed_from_u64(0x3e1d_0001 + workers as u64);
        let (mut heap, mut ref_heap, roots, chains) = skewed_world();
        let mut backend = ParallelBackend::new(workers, heap.registry());
        let table = MethodTable::derive(ref_heap.registry());
        let mut reference = Checkpointer::new(CheckpointConfig::incremental().without_journal());

        let (mut fast_rounds, mut slow_rounds) = (0u32, 0u32);
        for round in 0..24 {
            mutate(&mut rng, [&mut heap, &mut ref_heap], &chains);
            let a = backend.checkpoint(&mut heap, &roots).unwrap();
            let b = reference.checkpoint(&mut ref_heap, &table, &roots).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{workers} workers, round {round}");
            if backend.phases().unwrap().fast_path {
                fast_rounds += 1;
            } else {
                slow_rounds += 1;
            }
        }
        assert!(fast_rounds > 0, "{workers} workers: journal fast path never exercised");
        assert!(slow_rounds > 1, "{workers} workers: shard workers never re-ran");
    }
}

/// **Balance strategies are interchangeable on the wire**: with the
/// journal off (every round runs the shard workers), count-balanced and
/// byte-weighted backends emit identical bytes round after round, at
/// every worker count.
#[test]
fn both_balance_strategies_emit_identical_streams_every_round() {
    for workers in [1usize, 2, 4, 8] {
        let mut rng = Prng::seed_from_u64(0x3e1d_0100 + workers as u64);
        let (mut heap_w, mut heap_c, roots, chains) = skewed_world();
        let config = CheckpointConfig::incremental().without_journal();
        let mut weighted = ParallelBackend::with_config(workers, heap_w.registry(), config);
        let mut counted = ParallelBackend::with_config(
            workers,
            heap_c.registry(),
            config.balanced_by(ShardBalance::RootCount),
        );
        for round in 0..12 {
            mutate(&mut rng, [&mut heap_w, &mut heap_c], &chains);
            let a = weighted.checkpoint(&mut heap_w, &roots).unwrap();
            let b = counted.checkpoint(&mut heap_c, &roots).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{workers} workers, round {round}");
            assert!(!weighted.phases().unwrap().fast_path, "journal off, yet fast path taken");
        }
    }
}

/// **Weighted parallel vs every sequential dispatch engine**: the full
/// first round matches each generic engine's stream byte-for-byte (same
/// heap shape, fresh mirrors per engine).
#[test]
fn weighted_parallel_matches_every_sequential_engine_on_the_full_round() {
    for engine in Engine::ALL {
        let (mut heap, mut ref_heap, roots, _) = skewed_world();
        let mut parallel = ParallelBackend::new(4, heap.registry());
        let mut reference = GenericBackend::new(engine, ref_heap.registry());
        let a = parallel.checkpoint(&mut heap, &roots).unwrap();
        let b = reference.checkpoint(&mut ref_heap, &roots).unwrap();
        assert_eq!(a.bytes(), b.bytes(), "{engine}");
    }
}
