//! End-to-end behaviour of the `sanitize` feature: the parallel backend
//! produces a sanitizer verdict per checkpoint, clean plans stay clean,
//! the journal fast path is marked, and tracing never perturbs the
//! record bytes.
//!
//! Compiled only with `--features sanitize`.
#![cfg(feature = "sanitize")]

use ickp_backend::ParallelBackend;
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

fn world(n: usize) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for i in 0..n {
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i as i32)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        roots.push(head);
    }
    (heap, roots)
}

#[test]
fn every_checkpoint_carries_a_clean_sanitizer_verdict() {
    let (mut heap, roots) = world(12);
    let mut backend = ParallelBackend::new(4, heap.registry());
    assert!(backend.sanitizer_report().is_none(), "no verdict before the first checkpoint");

    let record = backend.checkpoint(&mut heap, &roots).unwrap();
    let report = backend.sanitizer_report().expect("sanitize feature traces every checkpoint");
    assert!(report.is_clean(), "{}", report.render());
    assert!(!report.fast_path);
    assert_eq!(report.shards, 4);
    assert_eq!(
        report.objects_per_shard.iter().sum::<usize>() as u64,
        record.stats().objects_visited
    );
}

#[test]
fn fast_path_checkpoints_are_marked_raceless() {
    let (mut heap, roots) = world(6);
    let mut backend = ParallelBackend::new(3, heap.registry());
    backend.checkpoint(&mut heap, &roots).unwrap();
    // Nothing dirty: served from the journal, no shard workers.
    backend.checkpoint(&mut heap, &roots).unwrap();
    let report = backend.sanitizer_report().unwrap();
    assert!(report.fast_path && report.is_clean());
    assert_eq!(report.shards, 0);
}

#[test]
fn tracing_does_not_perturb_the_record_bytes() {
    let (mut heap, roots) = world(9);
    let (mut ref_heap, ref_roots) = world(9);
    let mut traced = ParallelBackend::new(3, heap.registry());
    let mut reference = ickp_core::Checkpointer::new(ickp_core::CheckpointConfig::incremental());
    let table = ickp_core::MethodTable::derive(ref_heap.registry());
    let a = traced.checkpoint(&mut heap, &roots).unwrap();
    let b = reference.checkpoint_parallel(&mut ref_heap, &table, &ref_roots, 3).unwrap();
    assert_eq!(a.bytes(), b.bytes());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn checkpoint_into_also_sanitizes() {
    let (mut heap, roots) = world(5);
    let mut backend = ParallelBackend::new(2, heap.registry());
    let mut store = ickp_core::CheckpointStore::new();
    backend.checkpoint_into(&mut heap, &roots, &mut store).unwrap();
    assert!(backend.sanitizer_report().unwrap().is_clean());
    assert_eq!(store.len(), 1);
}
