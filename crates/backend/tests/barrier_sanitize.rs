#![cfg(feature = "barrier-sanitize")]
//! The differential journal sanitizer end to end: with the
//! `barrier-sanitize` feature armed, every backend checkpoint is
//! shadow-verified against a full-traversal state digest. Sound barrier
//! discipline stays clean across full, incremental, and fast-path rounds
//! on both backends — and a single write smuggled past the barrier is
//! caught on the very checkpoint whose stream it corrupted.

use ickp_backend::{Engine, GenericBackend, ParallelBackend};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

fn world() -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for i in 0..10 {
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        roots.push(head);
    }
    (heap, roots)
}

#[test]
fn sound_barriers_stay_clean_across_rounds_and_paths() {
    for engine in Engine::ALL {
        let (mut heap, roots) = world();
        let mut backend = GenericBackend::new(engine, heap.registry());
        assert!(backend.barrier_report().is_none(), "nothing verified yet");

        // Full round: slow path builds the traversal cache.
        backend.checkpoint(&mut heap, &roots).unwrap();
        let report = *backend.barrier_report().unwrap();
        assert!(report.is_clean(), "{engine}: {}", report.render());
        assert!(!report.fast_path, "first round is the slow path");

        // Steady-state rounds ride the journal fast path — the path a
        // broken barrier would corrupt, and the one under scrutiny.
        for round in 0..4 {
            heap.set_field(roots[round], 0, Value::Int(-(round as i32) - 1)).unwrap();
            backend.checkpoint(&mut heap, &roots).unwrap();
            let report = *backend.barrier_report().unwrap();
            assert!(report.fast_path, "{engine} round {round}");
            assert!(report.is_clean(), "{engine} round {round}: {}", report.render());
        }

        // A structural change falls back to the slow path; still clean.
        heap.set_field(roots[7], 1, Value::Ref(None)).unwrap();
        backend.checkpoint(&mut heap, &roots).unwrap();
        let report = *backend.barrier_report().unwrap();
        assert!(!report.fast_path, "{engine}: ref store invalidates the order cache");
        assert!(report.is_clean(), "{engine}: {}", report.render());
        assert_eq!(report.records_absorbed, 6);
        assert_eq!(report.missing_refs, 0);
    }
}

#[test]
fn the_parallel_backend_is_shadow_verified_too() {
    let (mut heap, roots) = world();
    let mut backend = ParallelBackend::new(4, heap.registry());
    assert!(backend.barrier_report().is_none());
    backend.checkpoint(&mut heap, &roots).unwrap();
    assert!(backend.barrier_report().unwrap().is_clean());
    heap.set_field(roots[2], 0, Value::Int(77)).unwrap();
    backend.checkpoint(&mut heap, &roots).unwrap();
    let report = *backend.barrier_report().unwrap();
    assert!(report.fast_path);
    assert!(report.is_clean(), "{}", report.render());
}

/// **The headline**: a store smuggled past the write barrier leaves no
/// journal trace, the fast path ships a stream without it, and the shadow
/// digest catches the divergence immediately — on both backends.
#[test]
fn an_unbarriered_write_is_caught_on_the_next_checkpoint() {
    let (mut heap, roots) = world();
    let mut backend = GenericBackend::new(Engine::Harissa, heap.registry());
    backend.checkpoint(&mut heap, &roots).unwrap();
    assert!(backend.barrier_report().unwrap().is_clean());

    // Scalar store: the traversal-order cache stays valid, so the next
    // checkpoint takes the fast path — and the journal never saw this.
    heap.set_field_unbarriered(roots[4], 0, Value::Int(12345)).unwrap();
    let record = backend.checkpoint(&mut heap, &roots).unwrap();
    assert_eq!(record.stats().objects_recorded, 0, "the stream is silently incomplete");
    let report = *backend.barrier_report().unwrap();
    assert!(report.fast_path);
    assert!(!report.is_clean(), "the shadow digest must catch it: {}", report.render());
    assert_ne!(report.live_digest, report.shadow_digest);

    let (mut heap, roots) = world();
    let mut parallel = ParallelBackend::new(2, heap.registry());
    parallel.checkpoint(&mut heap, &roots).unwrap();
    heap.set_field_unbarriered(roots[0], 0, Value::Int(999)).unwrap();
    parallel.checkpoint(&mut heap, &roots).unwrap();
    assert!(!parallel.barrier_report().unwrap().is_clean());
}
