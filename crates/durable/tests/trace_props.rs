//! TraceVfs transparency properties: decorating a filesystem with a
//! trace recorder must not change its behaviour in any observable way.
//!
//! Randomized (but seeded, hence deterministic) workloads drive a
//! `TraceVfs<MemFs>` and a bare `MemFs` in lockstep and require:
//!
//! * every operation returns the identical result (success or the
//!   identical error),
//! * the visible filesystem state (reads, existence, listing) agrees
//!   after every operation,
//! * crash semantics agree: crashing both filesystems at any point
//!   yields byte-identical durable state,
//! * the recorded trace is sound: indices tile `0..counted` exactly.

use ickp_durable::{MemFs, TraceEvent, TraceLog, TraceVfs, Vfs};
use ickp_prng::Prng;

const PATHS: &[&str] = &["a", "b", "seg-000001.ickd", "MANIFEST.tmp", "MANIFEST"];

/// Applies one random mutating op to both filesystems, asserting the
/// results agree. Returns a short description for failure messages.
fn step(rng: &mut Prng, traced: &mut TraceVfs<MemFs>, bare: &mut MemFs) -> String {
    let path = *rng.choose(PATHS);
    let kind = rng.below(7);
    let (desc, lhs, rhs) = match kind {
        0 => {
            let data = vec![rng.next_u32() as u8; rng.index(9)];
            (
                format!("write_file {path} ({} bytes)", data.len()),
                traced.write_file(path, &data),
                bare.write_file(path, &data),
            )
        }
        1 => {
            let data = vec![rng.next_u32() as u8; rng.index(9)];
            (
                format!("append {path} ({} bytes)", data.len()),
                traced.append(path, &data),
                bare.append(path, &data),
            )
        }
        2 => (format!("sync {path}"), traced.sync(path), bare.sync(path)),
        3 => {
            let to = *rng.choose(PATHS);
            (format!("rename {path} -> {to}"), traced.rename(path, to), bare.rename(path, to))
        }
        4 => ("sync_dir".to_string(), traced.sync_dir(), bare.sync_dir()),
        5 => {
            let len = rng.below(16);
            (
                format!("truncate {path} to {len}"),
                traced.truncate(path, len),
                bare.truncate(path, len),
            )
        }
        _ => (format!("remove {path}"), traced.remove(path), bare.remove(path)),
    };
    assert_eq!(lhs, rhs, "op result diverged at: {desc}");
    desc
}

/// The full visible state of a filesystem: every file's bytes.
fn visible(fs: &impl Vfs) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for name in fs.list().expect("list") {
        assert!(fs.exists(&name));
        out.push((name.clone(), fs.read(&name).expect("read listed file")));
    }
    out
}

#[test]
fn traced_memfs_is_byte_identical_to_bare_memfs() {
    for seed in 0..20u64 {
        let mut rng = Prng::seed_from_u64(0xD0C5_0000 + seed);
        let log = TraceLog::new();
        let mut traced = TraceVfs::new(MemFs::new(), log);
        let mut bare = MemFs::new();
        for _ in 0..120 {
            let desc = step(&mut rng, &mut traced, &mut bare);
            assert_eq!(visible(&traced), visible(&bare), "state diverged after: {desc}");
        }
    }
}

#[test]
fn traced_memfs_is_crash_identical_to_bare_memfs() {
    for seed in 0..20u64 {
        let mut rng = Prng::seed_from_u64(0xC4A5_0000 + seed);
        let log = TraceLog::new();
        let mut traced = TraceVfs::new(MemFs::new(), log);
        let mut bare = MemFs::new();
        for _ in 0..80 {
            step(&mut rng, &mut traced, &mut bare);
            // Crash a clone of both at every step: durable state agrees.
            let mut crashed_traced = traced.inner().clone();
            crashed_traced.crash();
            let mut crashed_bare = bare.clone();
            crashed_bare.crash();
            assert_eq!(visible(&crashed_traced), visible(&crashed_bare));
        }
    }
}

#[test]
fn recorded_indices_tile_the_counted_space_exactly() {
    let mut rng = Prng::seed_from_u64(0x71CE);
    let log = TraceLog::new();
    let mut traced = TraceVfs::new(MemFs::new(), log);
    let mut bare = MemFs::new();
    let mut attempted = 0u64;
    for _ in 0..200 {
        step(&mut rng, &mut traced, &mut bare);
        attempted += 1;
        let _ = traced.read("a"); // reads must not claim indices
        let _ = traced.exists("b");
        let _ = traced.list();
    }
    let trace = traced.log().snapshot(&traced.counter());
    // Every attempt is recorded (even ones that returned an error), each
    // claiming exactly one fresh index.
    assert_eq!(trace.counted, attempted);
    let mut indices: Vec<u64> = trace
        .events
        .iter()
        .map(|e| match e {
            TraceEvent::Op { index, .. } => *index,
            TraceEvent::ClientAck { .. } => panic!("no markers were recorded"),
        })
        .collect();
    indices.sort_unstable();
    let expect: Vec<u64> = (0..attempted).collect();
    assert_eq!(indices, expect, "indices must tile 0..counted exactly once each");
}
