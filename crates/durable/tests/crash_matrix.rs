//! Crash-point enumeration over real workloads (the ISSUE's acceptance
//! bar): for every mutating I/O operation the workload performs, crash
//! there, recover, and require the recovered store to hold exactly the
//! acknowledged checkpoints — byte-identical — and to restore to the
//! matching program state.

use ickp_analysis::{AnalysisEngine, Division, Phase};
use ickp_backend::{Engine, GenericBackend, ParallelBackend};
use ickp_core::{verify_restore, CheckpointRecord, RecordSink};
use ickp_durable::{enumerate_crash_points, DurableConfig, DurableStore, MemFs};
use ickp_heap::{ClassRegistry, Heap, ObjectId};
use ickp_synth::{ModificationSpec, SynthConfig, SynthWorld};

/// Heap snapshot taken right after each checkpoint, for state verification.
type States = Vec<(Heap, Vec<ObjectId>)>;

/// Synthetic workload: the paper's list-of-structures world, checkpointed
/// by the parallel sharded engine across several modification rounds.
fn synthetic_workload() -> (ClassRegistry, States, Vec<CheckpointRecord>) {
    let config = SynthConfig {
        structures: 6,
        lists_per_structure: 2,
        list_len: 3,
        ints_per_element: 1,
        seed: 11,
    };
    let mut world = SynthWorld::build(config).expect("world builds");
    let registry = world.heap().registry().clone();
    let roots = world.roots().to_vec();
    let mut backend = ParallelBackend::new(2, &registry);
    let mut states = Vec::new();
    let mut records = Vec::new();
    // The world is built clean; the first checkpoint must be a base.
    world.heap_mut().mark_all_modified();
    for round in 0..4 {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(30));
        }
        records.push(backend.checkpoint(world.heap_mut(), &roots).expect("checkpoint"));
        states.push((world.heap().clone(), roots.clone()));
    }
    (registry, states, records)
}

/// Analysis-engine workload: the three analysis phases over a small
/// program, checkpointed after every fixpoint iteration.
fn analysis_workload() -> (ClassRegistry, States, Vec<CheckpointRecord>) {
    let program = ickp_minic::parse("int d; int s; void main() { s = d + 1; }").expect("parses");
    let division = Division { dynamic_globals: vec!["d".to_string()] };
    let mut engine = AnalysisEngine::new(program, division).expect("engine builds");
    let registry = engine.heap().registry().clone();
    let mut backend = GenericBackend::new(Engine::Jdk12, &registry);
    let mut states: States = Vec::new();
    let mut records = Vec::new();
    for phase in [Phase::SideEffect, Phase::BindingTime, Phase::EvalTime] {
        engine
            .run_phase(phase, |heap, attrs, _iter| {
                records.push(backend.checkpoint(heap, attrs)?);
                states.push((heap.clone(), attrs.to_vec()));
                Ok(())
            })
            .expect("phase runs");
    }
    (registry, states, records)
}

fn run_matrix(
    name: &str,
    registry: &ClassRegistry,
    states: &States,
    records: &[CheckpointRecord],
    config: DurableConfig,
) {
    assert!(records.len() >= 3, "{name}: workload too small to be interesting");
    let report = enumerate_crash_points(registry, records, config, |acked, restored| {
        let (heap, roots) = &states[acked - 1];
        verify_restore(heap, roots, restored).expect("verify_restore runs")
    })
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    // Every append is at least 6 mutating ops; all were enumerated.
    assert!(report.total_ops >= 6 * records.len() as u64, "{name}: too few ops enumerated");
    assert_eq!(report.acked.len(), report.total_ops as usize);
    // The matrix covers every acknowledgment state from "nothing durable"
    // up to "all but the final append durable".
    assert_eq!(report.acked[0], 0, "{name}");
    assert_eq!(*report.acked.last().unwrap(), records.len() - 1, "{name}");
}

#[test]
fn synthetic_workload_survives_every_crash_point() {
    let (registry, states, records) = synthetic_workload();
    // Tiny segment target: the matrix also crosses segment rolls.
    let config = DurableConfig { segment_target_bytes: 256 };
    run_matrix("synthetic", &registry, &states, &records, config);
}

#[test]
fn synthetic_workload_survives_every_crash_point_in_one_segment() {
    let (registry, states, records) = synthetic_workload();
    run_matrix("synthetic/one-segment", &registry, &states, &records, DurableConfig::default());
}

#[test]
fn analysis_workload_survives_every_crash_point() {
    let (registry, states, records) = analysis_workload();
    let config = DurableConfig { segment_target_bytes: 512 };
    run_matrix("analysis", &registry, &states, &records, config);
}

#[test]
fn parallel_backend_streams_into_durable_segments() {
    let config = SynthConfig {
        structures: 4,
        lists_per_structure: 2,
        list_len: 3,
        ints_per_element: 1,
        seed: 3,
    };
    let mut world = SynthWorld::build(config).expect("world builds");
    let registry = world.heap().registry().clone();
    let roots = world.roots().to_vec();
    let mut backend = ParallelBackend::new(3, &registry);

    let mut fs = MemFs::new();
    let mut store =
        DurableStore::create(&mut fs, DurableConfig { segment_target_bytes: 128 }).unwrap();
    world.heap_mut().mark_all_modified();
    for round in 0..5 {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(40));
        }
        backend.checkpoint_into(world.heap_mut(), &roots, &mut store).expect("streams");
    }
    assert_eq!(store.record_count(), 5);
    assert!(store.segment_count() > 1, "small target must roll segments");
    drop(store);

    // A clean reopen restores the exact final state.
    let (_, recovered) =
        DurableStore::open(&mut fs, DurableConfig { segment_target_bytes: 128 }, &registry)
            .unwrap();
    assert_eq!(recovered.len(), 5);
    let rebuilt =
        ickp_core::restore(&recovered, &registry, ickp_core::RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None);
}

/// `RecordSink` failures surface as `CoreError::Storage`, so producers
/// (the backend's `checkpoint_into`) report storage trouble through the
/// normal core error channel.
#[test]
fn sink_failures_surface_as_storage_errors() {
    use ickp_core::CoreError;
    use ickp_durable::{FailFs, FaultPlan};

    let (_, _, records) = synthetic_workload();
    // Fail the very first I/O op of the first append (op 4, after the
    // 4 ops of `create`).
    let mut fs = FailFs::new(FaultPlan::error_at(4));
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
    let err = store.append_record(records[0].clone()).unwrap_err();
    assert!(matches!(err, CoreError::Storage { .. }), "unexpected error: {err}");
    // The store self-heals and the retry lands.
    store.append_record(records[0].clone()).unwrap();
    assert_eq!(store.record_count(), 1);
    drop(store);
    assert!(!fs.crashed());
}
