//! The crash matrix over the *parallel* path: `ParallelBackend`
//! streaming `checkpoint_into` a `DurableStore`, crashed at every
//! mutating I/O operation. Recovery must equal the acknowledged prefix
//! byte-for-byte and restore to the acknowledged program state — exactly
//! the invariant the sequential path already proves, now for the sharded
//! engine whose records are produced by concurrent workers.

use ickp_backend::ParallelBackend;
use ickp_core::{verify_restore, CheckpointRecord};
use ickp_durable::{
    enumerate_crash_points_driven, CrashMatrixError, DurableConfig, DurableStore, FailFs,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

const ROUNDS: usize = 4;
const WORKERS: usize = 2;

/// Six two-node chains; deterministic by construction.
fn world() -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for i in 0..6 {
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        roots.push(head);
    }
    (heap, roots)
}

/// Round `r` touches root `r` — each incremental checkpoint records a
/// different, predictable object.
fn mutate(heap: &mut Heap, roots: &[ObjectId], round: usize) {
    heap.set_field(roots[round % roots.len()], 0, Value::Int(100 + round as i32)).unwrap();
}

type HeapSnapshot = (Heap, Vec<ObjectId>);

/// The fault-free reference run: per-round records and heap snapshots.
fn expected_workload() -> (ClassRegistry, Vec<HeapSnapshot>, Vec<CheckpointRecord>) {
    let (mut heap, roots) = world();
    let registry = heap.registry().clone();
    let mut backend = ParallelBackend::new(WORKERS, heap.registry());
    let mut states = Vec::new();
    let mut records = Vec::new();
    for round in 0..ROUNDS {
        mutate(&mut heap, &roots, round);
        records.push(backend.checkpoint(&mut heap, &roots).unwrap());
        states.push((heap.clone(), roots.clone()));
    }
    (registry, states, records)
}

#[test]
fn every_crash_point_of_the_parallel_path_recovers_the_acked_prefix() {
    let (registry, states, records) = expected_workload();
    let config = DurableConfig { segment_target_bytes: 64 };
    let report = enumerate_crash_points_driven(
        &registry,
        &records,
        config,
        |fs: &mut FailFs, acked: &mut usize| {
            let (mut heap, roots) = world();
            let mut backend = ParallelBackend::new(WORKERS, heap.registry());
            let mut store = DurableStore::create(fs, config).map_err(|e| e.to_string())?;
            for round in 0..ROUNDS {
                mutate(&mut heap, &roots, round);
                backend
                    .checkpoint_into(&mut heap, &roots, &mut store)
                    .map_err(|e| e.to_string())?;
                *acked += 1;
            }
            Ok(())
        },
        |acked, restored| {
            let (heap, roots) = &states[acked - 1];
            verify_restore(heap, roots, restored).expect("verify runs")
        },
    )
    .unwrap();

    assert_eq!(report.records, ROUNDS);
    assert!(report.total_ops > 0);
    assert_eq!(report.acked.len(), report.total_ops as usize);
    assert_eq!(*report.acked.first().unwrap(), 0);
    assert_eq!(*report.acked.last().unwrap(), ROUNDS - 1);
    assert!(report.acked.windows(2).all(|w| w[0] <= w[1]));
}

/// A drive whose workload diverges from the expected records is caught
/// in the baseline, before any crash is injected.
#[test]
fn a_divergent_driver_is_rejected_at_baseline() {
    let (registry, _, records) = expected_workload();
    let config = DurableConfig::default();
    let err = enumerate_crash_points_driven(
        &registry,
        &records,
        config,
        |fs: &mut FailFs, acked: &mut usize| {
            let (mut heap, roots) = world();
            let mut backend = ParallelBackend::new(WORKERS, heap.registry());
            let mut store = DurableStore::create(fs, config).map_err(|e| e.to_string())?;
            for round in 0..ROUNDS {
                // Wrong mutation schedule: same record count, other bytes.
                mutate(&mut heap, &roots, round + 1);
                backend
                    .checkpoint_into(&mut heap, &roots, &mut store)
                    .map_err(|e| e.to_string())?;
                *acked += 1;
            }
            Ok(())
        },
        |_, _| None,
    )
    .unwrap_err();
    assert!(
        matches!(err, CrashMatrixError::BaselineDriver(ref what) if what.contains("diverges")),
        "unexpected error: {err}"
    );
}
