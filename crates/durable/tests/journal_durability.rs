//! The dirty-set journal must never get ahead of stable storage.
//!
//! Taking a checkpoint clears the per-object modified flags and the
//! heap's dirty-set journal — *before* the record reaches disk. If the
//! durable append then fails, the in-memory bookkeeping claims
//! checkpoint k+1 exists while the durable log ends at k; the next
//! incremental checkpoint would silently skip every update captured by
//! the lost record. These tests pin the hazard and the repair
//! ([`redirty_record`]): re-marking the lost record's objects dirty puts
//! them back into the next checkpoint, so the durable log never loses an
//! update — whether the process survives the failure (transient I/O
//! error) or not (crash, restart, restore).

use ickp_core::{
    journal_dirty_set, restore, verify_restore, CheckpointConfig, CheckpointRecord, Checkpointer,
    CoreError, MethodTable, RestorePolicy,
};
use ickp_durable::{redirty_record, DurableConfig, DurableStore, FailFs, FaultPlan, MemFs};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

fn world() -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for i in 0..6 {
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        roots.push(head);
    }
    (heap, roots)
}

/// The surviving-process case: checkpoint k+1 is taken (journal cleared)
/// but its durable append fails with a transient error. Without repair
/// the update would be lost; with `redirty_record` the retaken
/// checkpoint re-captures it and the durable log converges to the live
/// heap.
#[test]
fn failed_append_is_repaired_by_redirtying_the_lost_record() {
    let (mut heap, roots) = world();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

    // Append of checkpoint k succeeds; checkpoint k+1's very first I/O
    // op (op 10: create is 4 ops, the first append 6) is failed.
    let mut fs = FailFs::new(FaultPlan::error_at(10));
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
    let base: CheckpointRecord = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    store.append(&base).unwrap();

    // One update, then checkpoint k+1 — which clears flags and journal.
    heap.set_field(roots[2], 0, Value::Int(777)).unwrap();
    assert!(heap.journal_has_dirty());
    let lost = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    assert_eq!(lost.stats().objects_recorded, 1);

    // The hazard: the heap now claims clean while the store never got
    // checkpoint k+1.
    let err = store.append(&lost).unwrap_err();
    assert!(!heap.journal_has_dirty(), "checkpointing cleared the journal");
    assert_eq!(store.record_count(), 1, "the lost record must not be acknowledged: {err}");

    // The repair: re-dirty exactly what the lost record captured, rewind
    // the sequence counter, and retake.
    let remarked = redirty_record(&mut heap, &lost).unwrap();
    assert_eq!(remarked, 1);
    assert!(heap.journal_has_dirty(), "re-dirtied objects are back in the journal");
    assert_eq!(journal_dirty_set(&heap), vec![roots[2]]);

    ckp.set_next_seq(lost.seq());
    let retaken = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    assert_eq!(retaken.seq(), lost.seq());
    assert_eq!(retaken.stats().objects_recorded, 1);
    store.append(&retaken).unwrap();
    assert_eq!(store.record_count(), 2);
    drop(store);

    // The durable log restores to the live state, update included.
    let disk = fs.into_recovered();
    let (_, recovered) =
        DurableStore::open(disk, DurableConfig::default(), heap.registry()).unwrap();
    let rebuilt = restore(&recovered, heap.registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
}

/// Without the repair, the update *is* lost — pinning that the hazard is
/// real and the journal really does claim k+1 persisted.
#[test]
fn without_redirty_the_update_is_silently_dropped() {
    let (mut heap, roots) = world();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

    let mut fs = FailFs::new(FaultPlan::error_at(10));
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
    store.append(&ckp.checkpoint(&mut heap, &table, &roots).unwrap()).unwrap();

    heap.set_field(roots[2], 0, Value::Int(777)).unwrap();
    let lost = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    store.append(&lost).unwrap_err();

    // Skip the repair: the next checkpoint sees a clean heap and records
    // nothing, though the durable log is missing the update.
    ckp.set_next_seq(lost.seq());
    let next = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    assert_eq!(next.stats().objects_recorded, 0, "journal claims everything persisted");
    store.append(&next).unwrap();
    drop(store);

    let disk = fs.into_recovered();
    let (_, recovered) =
        DurableStore::open(disk, DurableConfig::default(), heap.registry()).unwrap();
    let rebuilt = restore(&recovered, heap.registry(), RestorePolicy::Lenient).unwrap();
    let mismatch = verify_restore(&heap, &roots, &rebuilt).unwrap();
    assert!(mismatch.is_some(), "the lost update must make restore diverge");
}

/// The dead-process case: crash mid-append of checkpoint k+1, restart,
/// recover. The restored heap is the state at k; continuing from it with
/// a fresh full base keeps the durable log consistent.
#[test]
fn crash_between_checkpoints_recovers_to_k_and_continues() {
    let (mut heap, roots) = world();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

    // Crash during checkpoint k+1's manifest swap (op 12 = create 4 +
    // append 6 + segment append 1 + segment sync 1).
    let mut fs = FailFs::new(FaultPlan::crash_at(12));
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
    let base = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    store.append(&base).unwrap();
    let state_k = heap.clone();

    heap.set_field(roots[4], 0, Value::Int(-5)).unwrap();
    let lost = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
    store.append(&lost).unwrap_err();
    drop(store);
    assert!(fs.crashed());

    // Restart: recover the durable log — checkpoint k+1 is simply not
    // there — and restore the state at k.
    let mut disk: MemFs = fs.into_recovered();
    let (mut store, recovered) =
        DurableStore::open(&mut disk, DurableConfig::default(), state_k.registry()).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(store.last_seq(), Some(base.seq()));
    let rebuilt = restore(&recovered, state_k.registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&state_k, &roots, &rebuilt).unwrap(), None);

    // Continue the run from the restored heap. Its journal starts empty,
    // so the continuation's first checkpoint must be a full base.
    let mut resumed = rebuilt.into_heap();
    resumed.mark_all_modified();
    let mut ckp2 = Checkpointer::new(CheckpointConfig::incremental());
    ckp2.set_next_seq(base.seq() + 1);
    let resume_roots: Vec<ObjectId> = roots
        .iter()
        .map(|&r| {
            let stable = state_k.stable_id(r).unwrap();
            resumed
                .iter_live()
                .find(|&id| resumed.stable_id(id).unwrap() == stable)
                .expect("root survives restore")
        })
        .collect();
    store.append(&ckp2.checkpoint(&mut resumed, &table, &resume_roots).unwrap()).unwrap();
    assert_eq!(store.record_count(), 2);
    drop(store);

    let (_, full) =
        DurableStore::open(&mut disk, DurableConfig::default(), state_k.registry()).unwrap();
    let rebuilt2 = restore(&full, state_k.registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&resumed, &resume_roots, &rebuilt2).unwrap(), None);
}

/// A `CoreError::Heap` from `redirty_record` is impossible for live
/// objects, but a record that does not decode must error cleanly.
#[test]
fn redirty_rejects_garbage_records() {
    let (mut heap, _) = world();
    let garbage = CheckpointRecord::from_parts(
        0,
        ickp_core::CheckpointKind::Full,
        vec![],
        vec![0xFF; 16],
        Default::default(),
    );
    let err = redirty_record(&mut heap, &garbage).unwrap_err();
    assert!(matches!(err, CoreError::Decode { .. }), "unexpected error: {err}");
}
