//! Group-commit pins: the batched write path must keep its fsync
//! budget, its dedup accounting, and — the load-bearing invariant — its
//! atomicity: a back-reference may dedup against chunks staged earlier
//! in the *same* batch (one manifest swap commits them together) but a
//! crash mid-batch must erase the whole batch, staged chunks included,
//! leaving every earlier chunk valid for future back-references.

use std::ops::Range;

use ickp_core::{
    object_slices, verify_restore, CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable,
};
use ickp_durable::{
    enumerate_crash_points_driven, DurableConfig, DurableStore, FailFs, FaultPlan, MemFs,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

/// Heap snapshot taken right after each checkpoint, for state verify.
type States = Vec<(Heap, Vec<ObjectId>)>;

/// Two-node list whose head is re-touched with the *same* value every
/// round (so it recurs byte-identically and is dedupable) while the
/// tail really changes. Long padding makes a back-reference a clear win.
fn workload(rounds: usize) -> (Heap, Vec<ObjectId>, States, Vec<CheckpointRecord>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[
                ("v", FieldType::Int),
                ("next", FieldType::Ref(None)),
                ("p0", FieldType::Long),
                ("p1", FieldType::Long),
                ("p2", FieldType::Long),
                ("p3", FieldType::Long),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let tail = heap.alloc(node).unwrap();
    let head = heap.alloc(node).unwrap();
    heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
    let roots = vec![head];
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut states = Vec::new();
    let mut records = Vec::new();
    for i in 0..rounds {
        heap.set_field(head, 0, Value::Int(7)).unwrap();
        heap.set_field(tail, 0, Value::Int(i as i32)).unwrap();
        records.push(ckp.checkpoint(&mut heap, &table, &roots).unwrap());
        states.push((heap.clone(), roots.clone()));
    }
    (heap, roots, states, records)
}

fn layouts(records: &[CheckpointRecord], registry: &ClassRegistry) -> Vec<Vec<Range<usize>>> {
    records
        .iter()
        .map(|r| object_slices(r.bytes(), registry).expect("records decode").objects)
        .collect()
}

#[test]
fn a_single_segment_batch_costs_three_fsyncs() {
    let (heap, _, _, records) = workload(6);
    let registry = heap.registry();
    let mut fs = MemFs::new();
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();

    let before = store.io_stats();
    store.append_batch(&records).unwrap();
    let after = store.io_stats();
    assert_eq!(after.frames_written - before.frames_written, records.len() as u64);
    assert_eq!(after.manifest_swaps - before.manifest_swaps, 1, "one swap acks the batch");
    assert_eq!(
        after.fsyncs() - before.fsyncs(),
        3,
        "segment + manifest + directory, independent of batch size"
    );
    // The split, not just the total: one segment fsync + one manifest-tmp
    // fsync, one directory fsync, one rename (the manifest publish).
    assert_eq!(after.file_syncs - before.file_syncs, 2, "segment + manifest tmp");
    assert_eq!(after.dir_syncs - before.dir_syncs, 1, "one directory fsync per swap");
    assert_eq!(after.renames - before.renames, 1, "one manifest rename per swap");

    // The same records as single appends pay the per-record price.
    let (heap2, _, _, records2) = workload(6);
    let mut fs2 = MemFs::new();
    let mut single = DurableStore::create(&mut fs2, DurableConfig::default()).unwrap();
    let before = single.io_stats();
    for r in &records2 {
        single.append(r).unwrap();
    }
    let after = single.io_stats();
    assert_eq!(after.fsyncs() - before.fsyncs(), 3 * records2.len() as u64);
    assert_eq!(after.manifest_swaps - before.manifest_swaps, records2.len() as u64);
    let n = records2.len() as u64;
    assert_eq!(after.file_syncs - before.file_syncs, 2 * n, "per record: segment + manifest tmp");
    assert_eq!(after.dir_syncs - before.dir_syncs, n, "per record: one directory fsync");
    assert_eq!(after.renames - before.renames, n, "per record: one manifest rename");
    drop(single);
    drop(store);

    // Same acknowledged contents either way.
    let (_, a) = DurableStore::open(&mut fs, DurableConfig::default(), registry).unwrap();
    let (_, b) = DurableStore::open(&mut fs2, DurableConfig::default(), heap2.registry()).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.records().iter().zip(b.records()) {
        assert_eq!(x.bytes(), y.bytes());
    }
}

#[test]
fn intra_batch_back_references_are_counted_and_invisible_after_recovery() {
    let (heap, _, _, records) = workload(5);
    let registry = heap.registry();
    let layouts = layouts(&records, registry);

    let mut fs = MemFs::new();
    let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
    let stats = store.append_batch_deduped(&records, &layouts).unwrap();
    let offered: u64 = layouts.iter().map(|l| l.len() as u64).sum();
    assert_eq!(stats.chunks_total, offered, "every offered chunk is accounted");
    // Rounds 2..5 re-record the head byte-identically to round 1's: all
    // four later copies dedup against chunks staged earlier in the batch.
    assert!(stats.chunks_deduped >= 4, "got {} back-references", stats.chunks_deduped);
    assert!(stats.bytes_saved() > 0);
    // Only the distinct chunks entered the index.
    assert_eq!(store.chunk_count(), stats.chunks_total - stats.chunks_deduped);
    drop(store);

    let (_, recovered) = DurableStore::open(&mut fs, DurableConfig::default(), registry).unwrap();
    assert_eq!(recovered.len(), records.len());
    for (a, b) in records.iter().zip(recovered.records()) {
        assert_eq!(a.bytes(), b.bytes(), "dedup must be invisible after recovery");
    }
}

/// The regression this file exists for: crash at *every* I/O operation
/// inside the second batch, reopen, and require (a) the whole torn
/// batch gone — never a prefix of it, (b) the first batch's chunks
/// still present and valid, (c) a re-append of the lost batch to dedup
/// against those surviving chunks and recover byte-identical.
#[test]
fn a_torn_batch_vanishes_whole_and_never_poisons_earlier_chunks() {
    let (heap, _, _, records) = workload(6);
    let registry = heap.registry().clone();
    let config = DurableConfig { segment_target_bytes: 256 }; // batches cross segment rolls
    let (first, second) = records.split_at(3);
    let first_layouts = layouts(first, &registry);
    let second_layouts = layouts(second, &registry);

    // Baseline: where does the first batch end, where does the run end?
    let mut baseline = FailFs::new(FaultPlan::none());
    let mut store = DurableStore::create(&mut baseline, config).unwrap();
    store.append_batch_deduped(first, &first_layouts).unwrap();
    let committed_chunks = store.chunk_count();
    drop(store);
    let first_batch_ops = baseline.ops();
    let mut store = DurableStore::open(&mut baseline, config, &registry).map(|(s, _)| s).unwrap();
    store.append_batch_deduped(second, &second_layouts).unwrap();
    drop(store);
    let total_ops = baseline.ops();
    assert!(total_ops > first_batch_ops + 3, "second batch too cheap to be interesting");

    for crash_at in first_batch_ops..total_ops {
        let mut fs = FailFs::new(FaultPlan::crash_at(crash_at));
        let mut store = DurableStore::create(&mut fs, config).unwrap();
        store.append_batch_deduped(first, &first_layouts).unwrap();
        let torn = store.append_batch_deduped(second, &second_layouts);
        drop(store);
        // The reopen between batches in the baseline shifts op indices
        // slightly; a crash landing there aborts the run just the same.
        if torn.is_ok() && !fs.crashed() {
            continue; // crash point fell past this run's ops
        }
        assert!(fs.crashed(), "crash {crash_at}: run failed without the fault firing");

        let mut disk = fs.into_recovered();
        let (mut reopened, recovered) = DurableStore::open(&mut disk, config, &registry)
            .unwrap_or_else(|e| panic!("crash {crash_at}: recovery failed: {e}"));
        assert_eq!(recovered.len(), first.len(), "crash {crash_at}: torn batch leaked a prefix");
        assert_eq!(
            reopened.chunk_count(),
            committed_chunks,
            "crash {crash_at}: staged chunks from the torn batch escaped into the index"
        );
        for (want, got) in first.iter().zip(recovered.records()) {
            assert_eq!(want.bytes(), got.bytes(), "crash {crash_at}: first batch corrupted");
        }

        // Earlier chunks must still be live targets for back-references.
        let stats = reopened
            .append_batch_deduped(second, &second_layouts)
            .unwrap_or_else(|e| panic!("crash {crash_at}: re-append failed: {e}"));
        assert!(
            stats.chunks_deduped > 0,
            "crash {crash_at}: re-appended batch found no surviving chunks to reference"
        );
        drop(reopened);
        let (_, full) = DurableStore::open(&mut disk, config, &registry).unwrap();
        assert_eq!(full.len(), records.len(), "crash {crash_at}");
        for (want, got) in records.iter().zip(full.records()) {
            assert_eq!(want.bytes(), got.bytes(), "crash {crash_at}: divergence after re-append");
        }
    }
}

#[test]
fn batched_writes_survive_the_full_crash_matrix() {
    let (heap, _, states, records) = workload(7);
    let registry = heap.registry().clone();
    let config = DurableConfig { segment_target_bytes: 256 };
    let all_layouts = layouts(&records, &registry);

    let report = enumerate_crash_points_driven(
        &registry,
        &records,
        config,
        |fs, acked| {
            let mut store = DurableStore::create(fs, config).map_err(|e| e.to_string())?;
            for (batch, lay) in records.chunks(3).zip(all_layouts.chunks(3)) {
                store.append_batch_deduped(batch, lay).map_err(|e| e.to_string())?;
                *acked += batch.len();
            }
            Ok(())
        },
        |acked, restored| {
            let (heap, roots) = &states[acked - 1];
            verify_restore(heap, roots, restored).expect("verify_restore runs")
        },
    )
    .expect("batched crash matrix");
    assert!(report.total_ops > 0);
    // Acknowledgment moves in whole batches: the acked counts seen
    // across the matrix are exactly {0, 3, 6, 7} — never mid-batch.
    let mut seen: Vec<usize> = report.acked.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, vec![0, 3, 6], "a crash mid-batch must ack at a batch boundary");
    assert_eq!(*report.acked.last().unwrap(), 6, "final crash point sits in the last batch");
}
