//! Deterministic fault injection over [`MemFs`].
//!
//! [`FailFs`] numbers every *mutating* VFS operation (0-based, in
//! execution order) and can make exactly one of them misbehave:
//!
//! * **crash** — the operation takes partial effect (appends apply half
//!   their bytes; an fsync makes half the pending bytes durable; renames
//!   and directory syncs do not happen at all), then the machine dies:
//!   [`MemFs::crash`] semantics apply and every later operation returns
//!   [`FsError::Crashed`].
//! * **error** — the operation fails with [`FsError::Injected`] and takes
//!   no effect, but the machine keeps running (a transient I/O error).
//!
//! Because the schedule is a pure function of the operation index, a
//! workload that performs N mutating operations defines exactly N crash
//! scenarios — the crash-point enumeration the
//! [`harness`](crate::harness) iterates.

use crate::vfs::{FsError, MemFs, Vfs};

/// What, if anything, to do to the I/O stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash at this mutating-operation index.
    pub crash_at: Option<u64>,
    /// Fail this mutating-operation index with an injected error.
    pub error_at: Option<u64>,
}

impl FaultPlan {
    /// No faults: every operation succeeds.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Crash at mutating operation `k`.
    pub fn crash_at(k: u64) -> FaultPlan {
        FaultPlan { crash_at: Some(k), ..FaultPlan::default() }
    }

    /// Inject a transient error at mutating operation `k`.
    pub fn error_at(k: u64) -> FaultPlan {
        FaultPlan { error_at: Some(k), ..FaultPlan::default() }
    }
}

/// [`MemFs`] wrapped with an operation counter and a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FailFs {
    inner: MemFs,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

enum Gate {
    Proceed,
    Crash,
}

impl FailFs {
    /// An empty filesystem under the given plan.
    pub fn new(plan: FaultPlan) -> FailFs {
        FailFs { inner: MemFs::new(), plan, ops: 0, crashed: false }
    }

    /// Wraps an existing filesystem image (e.g. one recovered from an
    /// earlier crash) under a new plan, with the counter reset to 0.
    pub fn resume(fs: MemFs, plan: FaultPlan) -> FailFs {
        FailFs { inner: fs, plan, ops: 0, crashed: false }
    }

    /// Mutating operations performed so far (including the faulted one).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Whether the simulated crash has happened.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Consumes the wrapper and returns what a restarted process would
    /// find on disk: if the crash fired, the post-crash image (volatile
    /// state lost); otherwise the filesystem as-is (clean shutdown).
    pub fn into_recovered(self) -> MemFs {
        self.inner
    }

    /// Checks this operation against the plan. `Ok(Gate::Crash)` means
    /// the caller must apply the operation's *partial* effect, then call
    /// [`FailFs::die`].
    fn gate(&mut self, op: &'static str) -> Result<Gate, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        let index = self.ops;
        self.ops += 1;
        if self.plan.crash_at == Some(index) {
            return Ok(Gate::Crash);
        }
        if self.plan.error_at == Some(index) {
            return Err(FsError::Injected { op_index: index, op });
        }
        Ok(Gate::Proceed)
    }

    fn die(&mut self) -> FsError {
        self.crashed = true;
        self.inner.crash();
        FsError::Crashed
    }
}

impl Vfs for FailFs {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        match self.gate("write_file")? {
            Gate::Proceed => self.inner.write_file(name, data),
            Gate::Crash => {
                // Half the bytes land, all volatile — gone after the crash.
                let _ = self.inner.write_file(name, &data[..data.len() / 2]);
                Err(self.die())
            }
        }
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        match self.gate("append")? {
            Gate::Proceed => self.inner.append(name, data),
            Gate::Crash => {
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                Err(self.die())
            }
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        match self.gate("sync")? {
            Gate::Proceed => self.inner.sync(name),
            Gate::Crash => {
                // A crash mid-fsync leaves an arbitrary durable prefix;
                // the deterministic model picks half the pending bytes,
                // which is how torn frame tails reach recovery.
                self.inner.partial_sync(name);
                Err(self.die())
            }
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        match self.gate("rename")? {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::Crash => Err(self.die()), // atomic: simply did not happen
        }
    }

    fn sync_dir(&mut self) -> Result<(), FsError> {
        match self.gate("sync_dir")? {
            Gate::Proceed => self.inner.sync_dir(),
            Gate::Crash => Err(self.die()),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        match self.gate("truncate")? {
            Gate::Proceed => self.inner.truncate(name, len),
            Gate::Crash => Err(self.die()),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        match self.gate("remove")? {
            Gate::Proceed => self.inner.remove(name),
            Gate::Crash => Err(self.die()),
        }
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        self.inner.read(name)
    }

    fn exists(&self, name: &str) -> bool {
        !self.crashed && self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_count_only_mutations() {
        let mut fs = FailFs::new(FaultPlan::none());
        fs.write_file("a", b"x").unwrap(); // 1
        fs.append("a", b"y").unwrap(); // 2
        fs.sync("a").unwrap(); // 3
        let _ = fs.read("a").unwrap(); // not counted
        assert!(fs.exists("a")); // not counted
        fs.sync_dir().unwrap(); // 4
        assert_eq!(fs.ops(), 4);
    }

    #[test]
    fn crash_at_append_applies_half_then_kills_the_fs() {
        let mut fs = FailFs::new(FaultPlan::crash_at(2));
        fs.append("f", b"base").unwrap();
        fs.sync("f").unwrap();
        // Op 2: this append crashes after 4 of 8 bytes (all volatile).
        assert_eq!(fs.append("f", b"ABCDEFGH"), Err(FsError::Crashed));
        assert!(fs.crashed());
        assert_eq!(fs.append("f", b"later"), Err(FsError::Crashed));
        // Name was never durable (no sync_dir) — nothing survives.
        let recovered = fs.into_recovered();
        assert!(!recovered.exists("f"));
    }

    #[test]
    fn crash_at_sync_leaves_a_torn_durable_prefix() {
        let mut fs = FailFs::new(FaultPlan::crash_at(4));
        fs.append("f", b"AAAA").unwrap(); // 0
        fs.sync("f").unwrap(); // 1
        fs.sync_dir().unwrap(); // 2
        fs.append("f", b"BBBBBBBB").unwrap(); // 3
        assert_eq!(fs.sync("f"), Err(FsError::Crashed)); // 4: torn
        let recovered = fs.into_recovered();
        assert_eq!(recovered.read("f").unwrap(), b"AAAABBBB");
    }

    #[test]
    fn injected_error_does_not_crash() {
        let mut fs = FailFs::new(FaultPlan::error_at(1));
        fs.append("f", b"ok").unwrap();
        assert_eq!(fs.append("f", b"fails"), Err(FsError::Injected { op_index: 1, op: "append" }));
        assert!(!fs.crashed());
        fs.append("f", b"!").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"ok!");
    }

    #[test]
    fn clean_shutdown_preserves_volatile_state() {
        let mut fs = FailFs::new(FaultPlan::none());
        fs.append("f", b"volatile").unwrap();
        let recovered = fs.into_recovered();
        assert_eq!(recovered.read("f").unwrap(), b"volatile");
    }
}
