//! Deterministic fault injection over [`MemFs`].
//!
//! [`FailFs`] numbers every *mutating* VFS operation (0-based, in
//! execution order) and can make exactly one of them misbehave:
//!
//! * **crash** — the operation takes partial effect (appends apply half
//!   their bytes; an fsync makes half the pending bytes durable; renames
//!   and directory syncs do not happen at all), then the machine dies:
//!   [`MemFs::crash`] semantics apply and every later operation returns
//!   [`FsError::Crashed`].
//! * **error** — the operation fails with [`FsError::Injected`] and takes
//!   no effect, but the machine keeps running (a transient I/O error).
//!
//! Because the schedule is a pure function of the operation index, a
//! workload that performs N mutating operations defines exactly N crash
//! scenarios — the crash-point enumeration the
//! [`harness`](crate::harness) iterates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::trace::{TraceLog, TraceNode, TraceOp};
use crate::vfs::{FsError, MemFs, Vfs};

/// A shareable mutating-operation counter.
///
/// Clones share the same underlying count, so several fault-injectable
/// layers — a primary's [`FailFs`], a follower's [`FailFs`], a
/// fault-injectable transport — can number their operations in **one
/// interleaved index space**. A composed harness then enumerates a
/// single fault schedule over the union of every layer's operations
/// instead of two independent (and combinatorially misaligned) ones.
///
/// [`FailFs::new`] makes a private counter, so single-store harnesses
/// behave exactly as before; [`FailFs::with_counter`] opts into sharing.
#[derive(Debug, Clone, Default)]
pub struct OpCounter(Arc<AtomicU64>);

impl OpCounter {
    /// A fresh counter starting at operation index 0.
    pub fn new() -> OpCounter {
        OpCounter::default()
    }

    /// Claims the next operation index (0-based, in execution order
    /// across every layer sharing this counter).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }

    /// Operations claimed so far across all sharers.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// What, if anything, to do to the I/O stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash at this mutating-operation index.
    pub crash_at: Option<u64>,
    /// Fail this mutating-operation index with an injected error.
    pub error_at: Option<u64>,
}

impl FaultPlan {
    /// No faults: every operation succeeds.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Crash at mutating operation `k`.
    pub fn crash_at(k: u64) -> FaultPlan {
        FaultPlan { crash_at: Some(k), ..FaultPlan::default() }
    }

    /// Inject a transient error at mutating operation `k`.
    pub fn error_at(k: u64) -> FaultPlan {
        FaultPlan { error_at: Some(k), ..FaultPlan::default() }
    }
}

/// [`MemFs`] wrapped with an operation counter and a [`FaultPlan`].
///
/// The counter may be private (the default) or shared with other layers
/// via [`FailFs::with_counter`] — see [`OpCounter`]. Cloning a `FailFs`
/// clones the filesystem image but *shares* the counter handle.
#[derive(Debug, Clone)]
pub struct FailFs {
    inner: MemFs,
    plan: FaultPlan,
    counter: OpCounter,
    crashed: bool,
    trace: Option<TraceLog>,
    node: TraceNode,
    faulted: Option<(u64, String)>,
}

enum Gate {
    Proceed,
    Crash,
}

impl FailFs {
    /// An empty filesystem under the given plan, numbering its
    /// operations on a private counter starting at 0.
    pub fn new(plan: FaultPlan) -> FailFs {
        FailFs::with_counter(MemFs::new(), plan, OpCounter::new())
    }

    /// Wraps an existing filesystem image (e.g. one recovered from an
    /// earlier crash) under a new plan, with a fresh counter at 0.
    pub fn resume(fs: MemFs, plan: FaultPlan) -> FailFs {
        FailFs::with_counter(fs, plan, OpCounter::new())
    }

    /// Wraps a filesystem image under `plan`, numbering its mutating
    /// operations on the given (possibly shared) counter. Fault indices
    /// in `plan` refer to that counter's index space, so composed
    /// harnesses can aim one schedule at several layers at once.
    pub fn with_counter(fs: MemFs, plan: FaultPlan, counter: OpCounter) -> FailFs {
        FailFs {
            inner: fs,
            plan,
            counter,
            crashed: false,
            trace: None,
            node: TraceNode::Local,
            faulted: None,
        }
    }

    /// Attaches a [`TraceLog`]: every mutating operation is recorded as a
    /// typed [`TraceOp`](crate::TraceOp) tagged `node`, at the index it
    /// claims on the counter — so one log can capture the interleaved op
    /// stream of several layers sharing one [`OpCounter`].
    pub fn set_trace(&mut self, log: TraceLog, node: TraceNode) {
        self.trace = Some(log);
        self.node = node;
    }

    /// The operation the plan faulted, if any: its counter index and a
    /// human-readable description (kind and path) — what the crash-matrix
    /// harness prints instead of a bare index.
    pub fn faulted_op(&self) -> Option<(u64, String)> {
        self.faulted.clone()
    }

    /// Mutating operations claimed so far on this filesystem's counter
    /// (including the faulted one, and — for a shared counter — the
    /// operations of every other sharer).
    pub fn ops(&self) -> u64 {
        self.counter.count()
    }

    /// A handle to this filesystem's operation counter, for sharing with
    /// other fault-injectable layers.
    pub fn counter(&self) -> OpCounter {
        self.counter.clone()
    }

    /// Whether the simulated crash has happened.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Consumes the wrapper and returns what a restarted process would
    /// find on disk: if the crash fired, the post-crash image (volatile
    /// state lost); otherwise the filesystem as-is (clean shutdown).
    pub fn into_recovered(self) -> MemFs {
        self.inner
    }

    /// Checks this operation against the plan, recording it into the
    /// trace (if attached) at the index it claims. `Ok(Gate::Crash)`
    /// means the caller must apply the operation's *partial* effect,
    /// then call [`FailFs::die`].
    fn gate(&mut self, op: TraceOp) -> Result<Gate, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        let index = self.counter.next();
        if let Some(log) = &self.trace {
            log.record(index, self.node, op.clone());
        }
        if self.plan.crash_at == Some(index) {
            self.faulted = Some((index, op.to_string()));
            return Ok(Gate::Crash);
        }
        if self.plan.error_at == Some(index) {
            self.faulted = Some((index, op.to_string()));
            return Err(FsError::Injected { op_index: index, op: op.name() });
        }
        Ok(Gate::Proceed)
    }

    fn die(&mut self) -> FsError {
        self.crashed = true;
        self.inner.crash();
        FsError::Crashed
    }
}

impl Vfs for FailFs {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let op = TraceOp::Create { path: name.to_string(), len: data.len() as u64 };
        match self.gate(op)? {
            Gate::Proceed => self.inner.write_file(name, data),
            Gate::Crash => {
                // Half the bytes land, all volatile — gone after the crash.
                let _ = self.inner.write_file(name, &data[..data.len() / 2]);
                Err(self.die())
            }
        }
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let op = TraceOp::Write {
            path: name.to_string(),
            offset: self.inner.len_of(name),
            len: data.len() as u64,
        };
        match self.gate(op)? {
            Gate::Proceed => self.inner.append(name, data),
            Gate::Crash => {
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                Err(self.die())
            }
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        match self.gate(TraceOp::Fsync { path: name.to_string() })? {
            Gate::Proceed => self.inner.sync(name),
            Gate::Crash => {
                // A crash mid-fsync leaves an arbitrary durable prefix;
                // the deterministic model picks half the pending bytes,
                // which is how torn frame tails reach recovery.
                self.inner.partial_sync(name);
                Err(self.die())
            }
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let op = TraceOp::Rename { from: from.to_string(), to: to.to_string() };
        match self.gate(op)? {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::Crash => Err(self.die()), // atomic: simply did not happen
        }
    }

    fn sync_dir(&mut self) -> Result<(), FsError> {
        match self.gate(TraceOp::DirFsync)? {
            Gate::Proceed => self.inner.sync_dir(),
            Gate::Crash => Err(self.die()),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        match self.gate(TraceOp::Truncate { path: name.to_string(), len })? {
            Gate::Proceed => self.inner.truncate(name, len),
            Gate::Crash => Err(self.die()),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        match self.gate(TraceOp::Remove { path: name.to_string() })? {
            Gate::Proceed => self.inner.remove(name),
            Gate::Crash => Err(self.die()),
        }
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        self.inner.read(name)
    }

    fn exists(&self, name: &str) -> bool {
        !self.crashed && self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_count_only_mutations() {
        let mut fs = FailFs::new(FaultPlan::none());
        fs.write_file("a", b"x").unwrap(); // 1
        fs.append("a", b"y").unwrap(); // 2
        fs.sync("a").unwrap(); // 3
        let _ = fs.read("a").unwrap(); // not counted
        assert!(fs.exists("a")); // not counted
        fs.sync_dir().unwrap(); // 4
        assert_eq!(fs.ops(), 4);
    }

    #[test]
    fn crash_at_append_applies_half_then_kills_the_fs() {
        let mut fs = FailFs::new(FaultPlan::crash_at(2));
        fs.append("f", b"base").unwrap();
        fs.sync("f").unwrap();
        // Op 2: this append crashes after 4 of 8 bytes (all volatile).
        assert_eq!(fs.append("f", b"ABCDEFGH"), Err(FsError::Crashed));
        assert!(fs.crashed());
        assert_eq!(fs.append("f", b"later"), Err(FsError::Crashed));
        // Name was never durable (no sync_dir) — nothing survives.
        let recovered = fs.into_recovered();
        assert!(!recovered.exists("f"));
    }

    #[test]
    fn crash_at_sync_leaves_a_torn_durable_prefix() {
        let mut fs = FailFs::new(FaultPlan::crash_at(4));
        fs.append("f", b"AAAA").unwrap(); // 0
        fs.sync("f").unwrap(); // 1
        fs.sync_dir().unwrap(); // 2
        fs.append("f", b"BBBBBBBB").unwrap(); // 3
        assert_eq!(fs.sync("f"), Err(FsError::Crashed)); // 4: torn
        let recovered = fs.into_recovered();
        assert_eq!(recovered.read("f").unwrap(), b"AAAABBBB");
    }

    #[test]
    fn injected_error_does_not_crash() {
        let mut fs = FailFs::new(FaultPlan::error_at(1));
        fs.append("f", b"ok").unwrap();
        assert_eq!(fs.append("f", b"fails"), Err(FsError::Injected { op_index: 1, op: "append" }));
        assert!(!fs.crashed());
        fs.append("f", b"!").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"ok!");
    }

    #[test]
    fn shared_counter_interleaves_two_filesystems() {
        let counter = OpCounter::new();
        // The crash index is aimed at the *shared* space: whichever
        // filesystem performs op 2 dies; the other never sees index 2.
        let mut a = FailFs::with_counter(MemFs::new(), FaultPlan::crash_at(2), counter.clone());
        let mut b = FailFs::with_counter(MemFs::new(), FaultPlan::crash_at(2), counter.clone());
        a.write_file("a", b"x").unwrap(); // op 0
        b.write_file("b", b"y").unwrap(); // op 1
        assert_eq!(b.append("b", b"zz"), Err(FsError::Crashed)); // op 2: b dies
        assert!(b.crashed());
        assert!(!a.crashed());
        a.append("a", b"still fine").unwrap(); // op 3
        assert_eq!(counter.count(), 4);
        assert_eq!(a.ops(), 4, "ops() reports the shared space");
    }

    #[test]
    fn clean_shutdown_preserves_volatile_state() {
        let mut fs = FailFs::new(FaultPlan::none());
        fs.append("f", b"volatile").unwrap();
        let recovered = fs.into_recovered();
        assert_eq!(recovered.read("f").unwrap(), b"volatile");
    }
}
