//! Error type for the durable store.

use std::error::Error;
use std::fmt;

use crate::vfs::FsError;
use ickp_core::CoreError;

/// Errors surfaced by [`DurableStore`](crate::DurableStore) and the
/// crash harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The underlying filesystem failed (or was made to fail).
    Fs(FsError),
    /// Data inside the *acknowledged* region failed validation. Unlike a
    /// torn tail — which recovery silently truncates — this is real
    /// corruption and is never repaired automatically.
    Corrupt {
        /// The file the corruption was found in.
        file: String,
        /// Byte offset of the bad frame or header.
        offset: u64,
        /// What went wrong.
        what: String,
    },
    /// Recovered records are not a contiguous sequence.
    SequenceGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number it found.
        got: u64,
    },
    /// A checkpoint-level operation (encode/decode) failed.
    Core(CoreError),
    /// [`DurableStore::create`](crate::DurableStore::create) found an
    /// existing store in the directory.
    AlreadyExists,
    /// A tag or rewrite referenced a sequence number the store holds no
    /// record for.
    UnknownSeq(u64),
    /// A tag operation referenced a label the store does not carry.
    UnknownTag(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Fs(e) => write!(f, "filesystem: {e}"),
            DurableError::Corrupt { file, offset, what } => {
                write!(f, "corrupt store: {file} at byte {offset}: {what}")
            }
            DurableError::SequenceGap { expected, got } => {
                write!(f, "sequence gap in recovered records: expected seq {expected}, got {got}")
            }
            DurableError::Core(e) => write!(f, "checkpoint: {e}"),
            DurableError::AlreadyExists => write!(f, "a durable store already exists here"),
            DurableError::UnknownSeq(seq) => {
                write!(f, "no checkpoint with sequence number {seq} in the store")
            }
            DurableError::UnknownTag(label) => write!(f, "no tag named {label:?} in the store"),
        }
    }
}

impl Error for DurableError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DurableError::Fs(e) => Some(e),
            DurableError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for DurableError {
    fn from(e: FsError) -> DurableError {
        DurableError::Fs(e)
    }
}

impl From<CoreError> for DurableError {
    fn from(e: CoreError) -> DurableError {
        DurableError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(DurableError, &str)> = vec![
            (DurableError::Fs(FsError::NotFound("x".into())), "filesystem: no such file: x"),
            (
                DurableError::Corrupt {
                    file: "seg-000001.ickd".into(),
                    offset: 10,
                    what: "crc mismatch".into(),
                },
                "corrupt store: seg-000001.ickd at byte 10: crc mismatch",
            ),
            (
                DurableError::SequenceGap { expected: 3, got: 5 },
                "sequence gap in recovered records: expected seq 3, got 5",
            ),
            (DurableError::AlreadyExists, "a durable store already exists here"),
            (DurableError::UnknownSeq(9), "no checkpoint with sequence number 9 in the store"),
            (DurableError::UnknownTag("release".into()), "no tag named \"release\" in the store"),
        ];
        for (err, text) in cases {
            assert_eq!(err.to_string(), text);
        }
    }
}
