//! Crash-point enumeration: prove the store safe at *every* crash point.
//!
//! The harness runs a workload once fault-free to count its mutating I/O
//! operations, N. It then replays the identical workload N times, with
//! [`FailFs`] simulating a crash at operation k for every k < N, and
//! after each crash reopens the store and checks the durability
//! invariant:
//!
//! > The recovered store holds **exactly** the checkpoints whose
//! > `append` was acknowledged before the crash, byte-identical to what
//! > was appended — never a torn, reordered, or phantom record — and the
//! > recovered prefix restores to the matching program state.
//!
//! Because the fault schedule is a pure function of the operation index,
//! the whole matrix is deterministic: a failure is a unit-test failure
//! with a reproducible crash index, not a flake.

use std::collections::HashMap;

use crate::error::DurableError;
use crate::fail::{FailFs, FaultPlan};
use crate::store::{DurableConfig, DurableStore};
use crate::trace::{crash_classes, TraceLog, TraceNode};
use ickp_core::{decode, restore, CheckpointRecord, CoreError, RestorePolicy, RestoredHeap};
use ickp_heap::{ClassRegistry, Heap};
use std::error::Error;
use std::fmt;

/// A failed crash-matrix run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashMatrixError {
    /// The fault-free baseline run itself failed.
    Baseline(DurableError),
    /// The fault-free baseline of a driven run failed or diverged from
    /// the expected records.
    BaselineDriver(String),
    /// The durability invariant broke at one crash point.
    Invariant {
        /// The mutating-operation index the crash was injected at.
        crash_at: u64,
        /// The operation at that index — kind and path (e.g.
        /// `fsync "seg-000001.ickd"`). Empty if unknown.
        op: String,
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for CrashMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashMatrixError::Baseline(e) => write!(f, "baseline run failed: {e}"),
            CrashMatrixError::BaselineDriver(what) => {
                write!(f, "driven baseline run failed: {what}")
            }
            CrashMatrixError::Invariant { crash_at, op, what } if op.is_empty() => {
                write!(f, "crash at op {crash_at}: {what}")
            }
            CrashMatrixError::Invariant { crash_at, op, what } => {
                write!(f, "crash at op {crash_at} ({op}): {what}")
            }
        }
    }
}

impl Error for CrashMatrixError {}

impl From<DurableError> for CrashMatrixError {
    fn from(e: DurableError) -> CrashMatrixError {
        CrashMatrixError::Baseline(e)
    }
}

/// Sweep options for the crash-matrix harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixOptions {
    /// Replay only one representative per crash-equivalence class (see
    /// [`crash_classes`](crate::crash_classes)) instead of every index.
    /// Sound because equivalent indices provably leave byte-identical
    /// durable states — and for a workload that only acknowledges after
    /// a completed commit (every commit changes the durable state), an
    /// identical durable state implies an identical acknowledged count.
    /// The report's `acked` vector still covers every index, with class
    /// members inheriting their representative's verdict.
    pub prune_equivalent: bool,
}

/// What a full crash-matrix sweep established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashMatrixReport {
    /// Mutating I/O operations in the fault-free run — also the number of
    /// crash points exercised.
    pub total_ops: u64,
    /// Number of checkpoint records in the workload.
    pub records: usize,
    /// For each crash point k, how many appends had been acknowledged
    /// when the crash hit (and hence how many records recovery returned).
    pub acked: Vec<usize>,
    /// Distinct crash-equivalence classes in the baseline trace.
    pub classes: usize,
    /// Crash points skipped as provably equivalent to an already-replayed
    /// representative (0 unless [`MatrixOptions::prune_equivalent`]).
    pub pruned_points: u64,
}

/// Runs the workload `records` through the store at every possible crash
/// point and checks the durability invariant at each.
///
/// `verify_state(acked, restored)` is called after each recovery with
/// `acked > 0`; it should compare `restored` against the caller's
/// snapshot of the program state at checkpoint `acked - 1` (e.g. via
/// [`verify_restore`](ickp_core::verify_restore)) and return a mismatch
/// description, or `None` if the states agree.
///
/// After each recovery the harness also finishes the workload — appends
/// the remaining records and reopens once more — proving a post-crash
/// store is fully usable, not merely readable.
///
/// # Errors
///
/// [`CrashMatrixError::Baseline`] if the fault-free run fails;
/// [`CrashMatrixError::Invariant`] with the offending crash index if any
/// replay breaks the invariant.
pub fn enumerate_crash_points<V>(
    registry: &ClassRegistry,
    records: &[CheckpointRecord],
    config: DurableConfig,
    verify_state: V,
) -> Result<CrashMatrixReport, CrashMatrixError>
where
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    enumerate_crash_points_with(registry, records, config, MatrixOptions::default(), verify_state)
}

/// [`enumerate_crash_points`] with explicit [`MatrixOptions`] — set
/// [`MatrixOptions::prune_equivalent`] to sweep one representative per
/// crash-equivalence class instead of every index.
///
/// # Errors
///
/// As [`enumerate_crash_points`].
pub fn enumerate_crash_points_with<V>(
    registry: &ClassRegistry,
    records: &[CheckpointRecord],
    config: DurableConfig,
    options: MatrixOptions,
    verify_state: V,
) -> Result<CrashMatrixReport, CrashMatrixError>
where
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    enumerate_crash_points_driven_with(
        registry,
        records,
        config,
        options,
        |fs, acked| {
            let mut store = DurableStore::create(fs, config).map_err(describe)?;
            for record in records {
                store.append(record).map_err(describe)?;
                *acked += 1;
            }
            Ok(())
        },
        verify_state,
    )
}

/// Maps a driver error to the harness's message form, keeping the typed
/// crash recognizable (the driven harness re-checks `FailFs::crashed`, so
/// the string is only ever shown for *unexpected* failures).
fn describe<E: fmt::Display>(e: E) -> String {
    e.to_string()
}

/// [`enumerate_crash_points`] for workloads that *produce* their records
/// while writing — the parallel backend streaming `checkpoint_into` a
/// [`DurableStore`] — rather than appending a pre-built list.
///
/// `drive` must rebuild the identical deterministic workload on every
/// call: given a fresh [`FailFs`], it creates the store, runs the
/// workload, and increments `acked` after each acknowledged append. Any
/// error is returned as a string; the harness decides from
/// [`FailFs::crashed`] whether it was the injected crash propagating
/// (expected) or a real failure. `expected` is the record sequence of a
/// fault-free run (obtained by the caller, e.g. against an in-memory
/// sink); the harness validates the baseline against it and holds every
/// recovery to the byte-identical acknowledged prefix of it.
///
/// # Errors
///
/// [`CrashMatrixError::BaselineDriver`] if the fault-free drive fails or
/// diverges from `expected`; [`CrashMatrixError::Invariant`] with the
/// offending crash index if any replay breaks the invariant.
pub fn enumerate_crash_points_driven<D, V>(
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
    config: DurableConfig,
    drive: D,
    verify_state: V,
) -> Result<CrashMatrixReport, CrashMatrixError>
where
    D: FnMut(&mut FailFs, &mut usize) -> Result<(), String>,
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    enumerate_crash_points_driven_with(
        registry,
        expected,
        config,
        MatrixOptions::default(),
        drive,
        verify_state,
    )
}

/// [`enumerate_crash_points_driven`] with explicit [`MatrixOptions`].
///
/// # Errors
///
/// As [`enumerate_crash_points_driven`].
pub fn enumerate_crash_points_driven_with<D, V>(
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
    config: DurableConfig,
    options: MatrixOptions,
    mut drive: D,
    mut verify_state: V,
) -> Result<CrashMatrixReport, CrashMatrixError>
where
    D: FnMut(&mut FailFs, &mut usize) -> Result<(), String>,
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    // Fault-free baseline: count the mutating I/O operations, record the
    // typed op trace (for equivalence classing), and prove the driver
    // reproduces the expected records on disk.
    let mut baseline = FailFs::new(FaultPlan::none());
    let log = TraceLog::new();
    baseline.set_trace(log.clone(), TraceNode::Local);
    let mut baseline_acked = 0usize;
    drive(&mut baseline, &mut baseline_acked).map_err(CrashMatrixError::BaselineDriver)?;
    if baseline_acked != expected.len() {
        return Err(CrashMatrixError::BaselineDriver(format!(
            "baseline acknowledged {baseline_acked} records, expected {}",
            expected.len()
        )));
    }
    let total_ops = baseline.ops();
    let trace = log.snapshot(&baseline.counter());
    let classes = crash_classes(&trace);
    let mut disk = baseline.into_recovered();
    let (_, on_disk) = DurableStore::open(&mut disk, config, registry)
        .map_err(|e| CrashMatrixError::BaselineDriver(format!("baseline reopen failed: {e}")))?;
    for (want, got) in expected.iter().zip(on_disk.records()) {
        if want.bytes() != got.bytes() {
            return Err(CrashMatrixError::BaselineDriver(format!(
                "baseline record seq {} diverges from the expected workload",
                got.seq()
            )));
        }
    }

    let sweep: Vec<u64> = if options.prune_equivalent {
        classes.iter().map(|c| c.representative).collect()
    } else {
        (0..total_ops).collect()
    };
    let pruned_points = total_ops - sweep.len() as u64;

    let mut acked_per_point = vec![usize::MAX; total_ops as usize];
    for &crash_at in &sweep {
        // Replay until the injected crash kills the run.
        let mut fs = FailFs::new(FaultPlan::crash_at(crash_at));
        let mut acked = 0usize;
        let outcome = drive(&mut fs, &mut acked);
        let op_desc = fs.faulted_op().map(|(_, desc)| desc).unwrap_or_default();
        let fail =
            |what: String| CrashMatrixError::Invariant { crash_at, op: op_desc.clone(), what };
        match outcome {
            Err(_) if fs.crashed() => {}
            Err(what) => return Err(fail(format!("run errored without the crash firing: {what}"))),
            Ok(()) => return Err(fail("crash point was never reached".into())),
        }

        // Reboot: recover from what survived on disk.
        let mut disk = fs.into_recovered();
        let (mut store, recovered) = DurableStore::open(&mut disk, config, registry)
            .map_err(|e| fail(format!("recovery failed: {e}")))?;

        // The invariant: exactly the acknowledged prefix, byte-identical.
        if recovered.len() != acked {
            return Err(fail(format!(
                "recovered {} records but {acked} appends were acknowledged",
                recovered.len()
            )));
        }
        for (appended, got) in expected.iter().zip(recovered.records()) {
            if appended.seq() != got.seq() {
                return Err(fail(format!(
                    "recovered seq {} where {} was appended",
                    got.seq(),
                    appended.seq()
                )));
            }
            if appended.bytes() != got.bytes() {
                return Err(fail(format!("record seq {} is not byte-identical", got.seq())));
            }
        }

        // The recovered prefix must restore to the acknowledged state.
        if acked > 0 {
            let rebuilt = restore(&recovered, registry, RestorePolicy::Lenient)
                .map_err(|e| fail(format!("restore of recovered store failed: {e}")))?;
            if let Some(mismatch) = verify_state(acked, &rebuilt) {
                return Err(fail(format!("restored state diverges: {mismatch}")));
            }
        }

        // A recovered store must be fully usable: finish the workload and
        // confirm a final clean reopen sees everything.
        for record in &expected[acked..] {
            store.append(record).map_err(|e| fail(format!("post-recovery append failed: {e}")))?;
        }
        drop(store);
        let (_, full) = DurableStore::open(&mut disk, config, registry)
            .map_err(|e| fail(format!("post-recovery reopen failed: {e}")))?;
        if full.len() != expected.len() {
            return Err(fail(format!(
                "store finished with {} records, expected {}",
                full.len(),
                expected.len()
            )));
        }

        acked_per_point[crash_at as usize] = acked;
    }

    // Pruned sweep: every class member inherits its representative's
    // verdict (equivalent indices leave byte-identical durable states,
    // hence identical recoveries).
    if options.prune_equivalent {
        for class in &classes {
            let verdict = acked_per_point[class.representative as usize];
            for &k in &class.indices {
                acked_per_point[k as usize] = verdict;
            }
        }
    }

    Ok(CrashMatrixReport {
        total_ops,
        records: expected.len(),
        acked: acked_per_point,
        classes: classes.len(),
        pruned_points,
    })
}

/// Re-marks as modified every object that `record` captured and that is
/// still live in `heap`, returning how many were re-marked.
///
/// This is the journal-repair step after a failed durable append: the
/// in-heap dirty-set journal was cleared when the checkpoint was *taken*,
/// but the checkpoint never reached stable storage. Re-dirtying the
/// captured objects makes the next checkpoint record them again, so the
/// durable log never silently loses an update.
///
/// # Errors
///
/// [`CoreError::Decode`] (and friends) if `record` does not decode
/// against the heap's registry.
pub fn redirty_record(heap: &mut Heap, record: &CheckpointRecord) -> Result<usize, CoreError> {
    let decoded = decode(record.bytes(), heap.registry())?;
    let by_stable: HashMap<_, _> = heap
        .iter_live()
        .map(|id| heap.stable_id(id).map(|stable| (stable, id)))
        .collect::<Result<_, _>>()?;
    let mut remarked = 0;
    for object in &decoded.objects {
        if let Some(&id) = by_stable.get(&object.stable) {
            heap.set_modified(id)?;
            remarked += 1;
        }
    }
    Ok(remarked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{verify_restore, CheckpointConfig, Checkpointer, MethodTable};
    use ickp_heap::{FieldType, ObjectId, Value};

    type HeapSnapshot = (Heap, Vec<ObjectId>);

    /// A tiny workload with per-checkpoint heap snapshots.
    fn workload(n: usize) -> (ClassRegistry, Vec<HeapSnapshot>, Vec<CheckpointRecord>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let registry = heap.registry().clone();
        let mut states = Vec::new();
        let mut records = Vec::new();
        for i in 0..n {
            heap.set_field(tail, 0, Value::Int(i as i32)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap());
            states.push((heap.clone(), vec![head]));
        }
        (registry, states, records)
    }

    #[test]
    fn every_crash_point_recovers_the_acked_prefix() {
        let (registry, states, records) = workload(4);
        let report = enumerate_crash_points(
            &registry,
            &records,
            DurableConfig { segment_target_bytes: 64 },
            |acked, restored| {
                let (heap, roots) = &states[acked - 1];
                verify_restore(heap, roots, restored).expect("verify runs")
            },
        )
        .unwrap();
        assert_eq!(report.records, 4);
        assert!(report.total_ops >= 24, "4 appends are at least 24 ops");
        assert_eq!(report.acked.len(), report.total_ops as usize);
        // Acked counts are monotone in the crash index and span 0..=3.
        assert_eq!(*report.acked.first().unwrap(), 0);
        assert_eq!(*report.acked.last().unwrap(), records.len() - 1);
        assert!(report.acked.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pruned_matrix_matches_the_full_matrix() {
        let (registry, states, records) = workload(4);
        let config = DurableConfig { segment_target_bytes: 64 };
        let verify = |states: &[HeapSnapshot]| {
            let states = states.to_vec();
            move |acked: usize, restored: &RestoredHeap| {
                let (heap, roots) = &states[acked - 1];
                verify_restore(heap, roots, restored).expect("verify runs")
            }
        };
        let full = enumerate_crash_points(&registry, &records, config, verify(&states)).unwrap();
        let pruned = enumerate_crash_points_with(
            &registry,
            &records,
            config,
            MatrixOptions { prune_equivalent: true },
            verify(&states),
        )
        .unwrap();
        assert_eq!(pruned.acked, full.acked, "pruned verdicts must equal the full matrix");
        assert_eq!(pruned.total_ops, full.total_ops);
        assert_eq!(pruned.classes, full.classes);
        assert_eq!(full.pruned_points, 0);
        assert!(pruned.pruned_points > 0, "commit protocols have equivalent crash points");
        assert_eq!(pruned.pruned_points, pruned.total_ops - pruned.classes as u64);
    }

    #[test]
    fn invariant_failures_name_the_op_kind_and_path() {
        let (registry, _, records) = workload(2);
        let err = enumerate_crash_points(&registry, &records, DurableConfig::default(), |_, _| {
            Some("deliberate mismatch".into())
        })
        .unwrap_err();
        let CrashMatrixError::Invariant { ref op, .. } = err else {
            panic!("expected an invariant failure, got: {err}");
        };
        assert!(!op.is_empty(), "faulted op description missing: {err}");
        let shown = err.to_string();
        // The failing index is a store op: kind and quoted path, not just
        // a bare counter value.
        assert!(shown.contains('(') && shown.contains('"'), "weak failure output: {shown}");
    }

    #[test]
    fn a_divergent_state_check_surfaces_the_crash_index() {
        let (registry, _, records) = workload(2);
        let err = enumerate_crash_points(&registry, &records, DurableConfig::default(), |_, _| {
            Some("deliberate mismatch".into())
        })
        .unwrap_err();
        assert!(
            matches!(err, CrashMatrixError::Invariant { ref what, .. } if what.contains("deliberate")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn redirty_marks_exactly_the_recorded_live_objects() {
        let (_, states, records) = workload(3);
        let (heap, _) = &states[2];
        let mut heap = heap.clone();
        // After a checkpoint, nothing is modified.
        let dirty_before: Vec<_> =
            heap.iter_live().filter(|&id| heap.is_modified(id).unwrap()).collect();
        assert!(dirty_before.is_empty());
        // Replaying the last record's objects marks them again.
        let remarked = redirty_record(&mut heap, &records[2]).unwrap();
        assert!(remarked > 0);
        let dirty_after = heap.iter_live().filter(|&id| heap.is_modified(id).unwrap()).count();
        assert_eq!(dirty_after, remarked);
    }
}
