//! The virtual filesystem beneath the durable store.
//!
//! [`DurableStore`](crate::DurableStore) never touches `std::fs`
//! directly; every byte goes through the [`Vfs`] trait. That indirection
//! is what makes crash-safety *testable*: the same store code runs over
//! [`StdFs`] (a real directory) in production and over [`MemFs`] (an
//! in-memory filesystem with an explicit durable/volatile split) under
//! the fault-injection layer ([`FailFs`](crate::FailFs)) in tests.
//!
//! ## The durability model
//!
//! `MemFs` models the two-level durability contract of a POSIX
//! filesystem, pessimistically and deterministically:
//!
//! * **Content durability is per file.** Appended bytes are *volatile*
//!   until [`Vfs::sync`] (fsync) on that file; a crash truncates every
//!   file back to its last synced length.
//! * **Name durability is per directory.** Creations, renames and
//!   removals are volatile until [`Vfs::sync_dir`]; a crash reverts the
//!   namespace to its last synced state. A rename is atomic (it either
//!   happened or it did not — never a torn name), but it is *not* durable
//!   until the directory is synced.
//!
//! Anything the model calls volatile is *lost* at a crash — the
//! pessimistic reading of POSIX, under which a protocol proven correct
//! here is correct on any real filesystem that gives at least these
//! guarantees.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// Errors from the VFS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// An underlying I/O operation failed.
    Io {
        /// The VFS operation that failed.
        op: &'static str,
        /// Human-readable description.
        what: String,
    },
    /// A deterministic fault-injection plan made this operation fail
    /// (without crashing the filesystem).
    Injected {
        /// The zero-based mutating-operation index that was failed.
        op_index: u64,
        /// The VFS operation that was failed.
        op: &'static str,
    },
    /// The simulated machine has crashed; no further operations are
    /// possible on this filesystem handle.
    Crashed,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(name) => write!(f, "no such file: {name}"),
            FsError::Io { op, what } => write!(f, "{op} failed: {what}"),
            FsError::Injected { op_index, op } => {
                write!(f, "injected fault at mutating op {op_index} ({op})")
            }
            FsError::Crashed => write!(f, "simulated crash: filesystem is gone"),
        }
    }
}

impl Error for FsError {}

/// A minimal filesystem interface over one flat directory.
///
/// Mutating operations (`write_file`, `append`, `sync`, `rename`,
/// `sync_dir`, `truncate`, `remove`) are the unit of crash-point
/// enumeration: the fault-injection layer counts exactly these.
pub trait Vfs {
    /// Creates (or atomically begins replacing) `name` with `data`.
    /// The content is volatile until [`Vfs::sync`]; for an existing name
    /// the previous durable content survives a crash.
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError>;

    /// Appends `data` to `name`, creating it empty first if absent.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError>;

    /// Makes `name`'s current content durable (fsync).
    fn sync(&mut self, name: &str) -> Result<(), FsError>;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    /// Durable only after [`Vfs::sync_dir`].
    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError>;

    /// Makes the directory's current name set durable (fsync on the
    /// directory).
    fn sync_dir(&mut self) -> Result<(), FsError>;

    /// Truncates `name` to `len` bytes.
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError>;

    /// Removes `name`. Durable only after [`Vfs::sync_dir`].
    fn remove(&mut self, name: &str) -> Result<(), FsError>;

    /// Reads the full content of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, FsError>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;

    /// All file names in the directory, sorted.
    fn list(&self) -> Result<Vec<String>, FsError>;
}

/// Forwarding impl so stores can borrow a filesystem instead of owning
/// it — the crash harness keeps ownership of its [`FailFs`](crate::FailFs)
/// and lends it to each store run.
impl<F: Vfs + ?Sized> Vfs for &mut F {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        (**self).write_file(name, data)
    }
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        (**self).append(name, data)
    }
    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        (**self).sync(name)
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        (**self).rename(from, to)
    }
    fn sync_dir(&mut self) -> Result<(), FsError> {
        (**self).sync_dir()
    }
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        (**self).truncate(name, len)
    }
    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        (**self).remove(name)
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        (**self).read(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self) -> Result<Vec<String>, FsError> {
        (**self).list()
    }
}

// --------------------------------------------------------------- MemFs

/// One in-memory inode: its content and the durable prefix length.
#[derive(Debug, Clone, Default)]
struct Inode {
    content: Vec<u8>,
    synced_len: usize,
}

/// Deterministic in-memory filesystem with explicit durability.
///
/// See the module docs for the model. [`MemFs::crash`] applies the crash
/// semantics: the namespace reverts to the last [`Vfs::sync_dir`] state
/// and every inode's content truncates to its last [`Vfs::sync`] length.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    inodes: Vec<Inode>,
    /// Current (volatile) name → inode mapping.
    namespace: BTreeMap<String, usize>,
    /// Name → inode mapping as of the last `sync_dir`.
    durable_namespace: BTreeMap<String, usize>,
}

impl MemFs {
    /// An empty filesystem.
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// Applies crash semantics in place: volatile names and volatile
    /// bytes are lost, durable ones survive. Idempotent.
    pub fn crash(&mut self) {
        self.namespace = self.durable_namespace.clone();
        for inode in &mut self.inodes {
            inode.content.truncate(inode.synced_len);
        }
    }

    /// Makes a deterministic *partial* fsync progress on `name`: half of
    /// the still-volatile bytes (rounded down) become durable. This is
    /// what a crash arriving *during* an fsync leaves behind, and is how
    /// the fault-injection layer manufactures torn frame tails.
    pub(crate) fn partial_sync(&mut self, name: &str) {
        if let Some(&idx) = self.namespace.get(name) {
            let inode = &mut self.inodes[idx];
            let pending = inode.content.len() - inode.synced_len;
            inode.synced_len += pending / 2;
        }
    }

    /// Current (volatile) length of `name`, or 0 if absent — the append
    /// offset the trace layer records.
    pub(crate) fn len_of(&self, name: &str) -> u64 {
        match self.namespace.get(name) {
            Some(&idx) => self.inodes[idx].content.len() as u64,
            None => 0,
        }
    }

    fn inode_of(&self, name: &str) -> Result<usize, FsError> {
        self.namespace.get(name).copied().ok_or_else(|| FsError::NotFound(name.to_string()))
    }
}

impl Vfs for MemFs {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        // A fresh inode: the previous inode (if any) stays reachable from
        // the durable namespace, so replacing a durable file is only
        // destructive once the directory is synced.
        self.inodes.push(Inode { content: data.to_vec(), synced_len: 0 });
        self.namespace.insert(name.to_string(), self.inodes.len() - 1);
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let idx = match self.namespace.get(name) {
            Some(&idx) => idx,
            None => {
                self.inodes.push(Inode::default());
                let idx = self.inodes.len() - 1;
                self.namespace.insert(name.to_string(), idx);
                idx
            }
        };
        self.inodes[idx].content.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        let idx = self.inode_of(name)?;
        self.inodes[idx].synced_len = self.inodes[idx].content.len();
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let idx = self.inode_of(from)?;
        self.namespace.remove(from);
        self.namespace.insert(to.to_string(), idx);
        Ok(())
    }

    fn sync_dir(&mut self) -> Result<(), FsError> {
        self.durable_namespace = self.namespace.clone();
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        let idx = self.inode_of(name)?;
        let inode = &mut self.inodes[idx];
        inode.content.truncate(len as usize);
        inode.synced_len = inode.synced_len.min(inode.content.len());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        self.inode_of(name)?;
        self.namespace.remove(name);
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        Ok(self.inodes[self.inode_of(name)?].content.clone())
    }

    fn exists(&self, name: &str) -> bool {
        self.namespace.contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        Ok(self.namespace.keys().cloned().collect())
    }
}

// --------------------------------------------------------------- StdFs

/// The real filesystem, rooted at one directory.
///
/// `sync` maps to `File::sync_all`, `sync_dir` to fsync on the directory
/// handle, `rename` to `std::fs::rename` — the exact calls whose
/// orderings the store's protocol (and the `MemFs` model) are about.
#[derive(Debug)]
pub struct StdFs {
    root: PathBuf,
}

fn io(op: &'static str) -> impl Fn(std::io::Error) -> FsError {
    move |e| FsError::Io { op, what: e.to_string() }
}

impl StdFs {
    /// Opens (creating if needed) the directory at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Io`] if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<StdFs, FsError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(io("create_dir_all"))?;
        Ok(StdFs { root })
    }

    /// The directory this filesystem is rooted at.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Vfs for StdFs {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let mut f = std::fs::File::create(self.path(name)).map_err(io("create"))?;
        f.write_all(data).map_err(io("write"))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))
            .map_err(io("open-append"))?;
        f.write_all(data).map_err(io("append"))
    }

    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        let path = self.path(name);
        if !path.exists() {
            return Err(FsError::NotFound(name.to_string()));
        }
        let f = std::fs::File::open(path).map_err(io("open-sync"))?;
        f.sync_all().map_err(io("fsync"))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(io("rename"))
    }

    fn sync_dir(&mut self) -> Result<(), FsError> {
        // Windows cannot open directories for fsync; the durable store's
        // correctness there degrades to the filesystem's own ordering.
        #[cfg(unix)]
        {
            let dir = std::fs::File::open(&self.root).map_err(io("open-dir"))?;
            dir.sync_all().map_err(io("fsync-dir"))?;
        }
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(io("open-truncate"))?;
        f.set_len(len).map_err(io("truncate"))
    }

    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        std::fs::remove_file(self.path(name)).map_err(io("remove"))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        std::fs::read(self.path(name)).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => FsError::NotFound(name.to_string()),
            _ => FsError::Io { op: "read", what: e.to_string() },
        })
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io("read-dir"))? {
            let entry = entry.map_err(io("read-dir"))?;
            if entry.file_type().map_err(io("file-type"))?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_appends_are_lost_at_crash() {
        let mut fs = MemFs::new();
        fs.append("wal", b"durable").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        fs.append("wal", b"+volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn unsynced_names_are_lost_at_crash_even_if_content_was_synced() {
        let mut fs = MemFs::new();
        fs.write_file("orphan", b"bytes").unwrap();
        fs.sync("orphan").unwrap(); // content durable, name volatile
        fs.crash();
        assert!(!fs.exists("orphan"));
    }

    #[test]
    fn rename_reverts_without_dir_sync_and_holds_with_it() {
        let mut fs = MemFs::new();
        fs.write_file("target", b"old").unwrap();
        fs.sync("target").unwrap();
        fs.sync_dir().unwrap();

        fs.write_file("tmp", b"new").unwrap();
        fs.sync("tmp").unwrap();
        fs.rename("tmp", "target").unwrap();
        // Crash before sync_dir: the old target must come back intact.
        let mut crashed = fs.clone();
        crashed.crash();
        assert_eq!(crashed.read("target").unwrap(), b"old");
        assert!(!crashed.exists("tmp"));

        // With sync_dir the swap is durable.
        fs.sync_dir().unwrap();
        fs.crash();
        assert_eq!(fs.read("target").unwrap(), b"new");
    }

    #[test]
    fn partial_sync_leaves_a_torn_durable_prefix() {
        let mut fs = MemFs::new();
        fs.append("seg", b"AAAA").unwrap();
        fs.sync("seg").unwrap();
        fs.sync_dir().unwrap();
        fs.append("seg", b"BBBBBBBB").unwrap();
        fs.partial_sync("seg"); // 4 of the 8 pending bytes become durable
        fs.crash();
        assert_eq!(fs.read("seg").unwrap(), b"AAAABBBB");
    }

    #[test]
    fn truncate_clamps_synced_length() {
        let mut fs = MemFs::new();
        fs.append("f", b"0123456789").unwrap();
        fs.sync("f").unwrap();
        fs.sync_dir().unwrap();
        fs.truncate("f", 4).unwrap();
        fs.crash();
        assert_eq!(fs.read("f").unwrap(), b"0123");
    }

    #[test]
    fn std_fs_round_trips_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("ickp-stdfs-{}", std::process::id()));
        let mut fs = StdFs::new(&dir).unwrap();
        fs.write_file("a", b"hello").unwrap();
        fs.append("a", b" world").unwrap();
        fs.sync("a").unwrap();
        fs.rename("a", "b").unwrap();
        fs.sync_dir().unwrap();
        assert_eq!(fs.read("b").unwrap(), b"hello world");
        assert!(!fs.exists("a"));
        assert_eq!(fs.list().unwrap(), vec!["b".to_string()]);
        fs.truncate("b", 5).unwrap();
        assert_eq!(fs.read("b").unwrap(), b"hello");
        fs.remove("b").unwrap();
        assert!(!fs.exists("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
