//! Content-hash chunk index: store identical object records once.
//!
//! OJXPerf-style replica detection (arXiv 2203.12712) applied to the
//! checkpoint store: each object record inside a checkpoint stream is a
//! pure function of the object's state, so two checkpoints of the same
//! unmodified subtree encode it byte-identically. The durable layer
//! hashes those slices (the *chunks*) and, when an incoming chunk's
//! bytes already live in the store, writes a 13-byte back-reference
//! instead of the bytes.
//!
//! Stored frame payloads are a sequence of **parts**:
//!
//! ```text
//! 0x00 | len: u32 | bytes        glue literal (headers, footers, gaps)
//! 0x02 | len: u32 | bytes        indexed literal — enters the chunk index
//! 0x01 | hash: u64 | len: u32    back-reference to an earlier indexed chunk
//! ```
//!
//! The logical payload — the ICKP stream handed back to recovery — is
//! the concatenation of the literal bytes and the referenced chunks'
//! bytes. References always point backwards (to a chunk indexed by an
//! earlier frame, or earlier in the same frame), so a single in-order
//! scan of the committed frontier rebuilds the index and resolves every
//! reference.
//!
//! Hashing is FNV-1a (64-bit), implemented here because the store takes
//! no dependencies. A hash match alone never dedups: the candidate's
//! bytes are compared against the indexed chunk, and on a collision the
//! chunk is stored as a glue literal. Dedup can therefore never corrupt
//! a payload — a false positive costs bytes, never correctness.

use std::collections::HashMap;
use std::ops::Range;

/// Part tag: literal bytes that do not enter the chunk index.
pub(crate) const PART_GLUE: u8 = 0x00;
/// Part tag: back-reference to an indexed chunk (`hash u64 | len u32`).
pub(crate) const PART_REF: u8 = 0x01;
/// Part tag: literal bytes that enter the chunk index.
pub(crate) const PART_CHUNK: u8 = 0x02;

/// Stored size of a back-reference part.
const REF_PART_LEN: usize = 1 + 8 + 4;
/// Stored overhead of a literal part (tag + length).
const LITERAL_OVERHEAD: usize = 1 + 4;

/// FNV-1a, 64-bit: the content hash of the dedup index.
pub fn content_hash(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Byte accounting for one deduplicating write (or a whole rewrite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Logical payload bytes handed to the store.
    pub bytes_in: u64,
    /// Bytes actually stored (part framing included).
    pub bytes_stored: u64,
    /// Chunks the caller offered for dedup.
    pub chunks_total: u64,
    /// Chunks written as back-references instead of bytes.
    pub chunks_deduped: u64,
}

impl DedupStats {
    /// Logical bytes the store did *not* have to write, zero when the
    /// part framing outweighed the references.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_in.saturating_sub(self.bytes_stored)
    }

    /// Folds another write's accounting into this one.
    pub fn absorb(&mut self, other: DedupStats) {
        self.bytes_in += other.bytes_in;
        self.bytes_stored += other.bytes_stored;
        self.chunks_total += other.chunks_total;
        self.chunks_deduped += other.chunks_deduped;
    }
}

/// One frame payload encoded into parts, plus the chunks it would add
/// to the index *if* the write is acknowledged. Nothing enters the index
/// until [`ChunkIndex::commit`] — a failed append must not leave hashes
/// that recovery cannot resolve.
pub(crate) struct EncodedPayload {
    pub stored: Vec<u8>,
    pub staged: Vec<(u64, Vec<u8>)>,
    pub stats: DedupStats,
}

/// The in-memory content-hash index over every indexed chunk in the
/// committed frontier. Rebuilt from the segments on open; the manifest
/// carries only a count + digest summary to cross-check the rebuild.
#[derive(Debug, Default)]
pub(crate) struct ChunkIndex {
    map: HashMap<u64, Vec<u8>>,
    digest: u64,
}

impl ChunkIndex {
    pub fn new() -> ChunkIndex {
        ChunkIndex::default()
    }

    /// Number of indexed chunks.
    pub fn count(&self) -> u64 {
        self.map.len() as u64
    }

    /// Order-independent summary of the index: the wrapping sum of every
    /// chunk hash. Stored in the manifest so open can verify the rebuilt
    /// index without the manifest growing with the store.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Encodes `payload` into parts. `ranges` are the dedup-candidate
    /// chunks (ascending, non-overlapping, in bounds — the slices
    /// `ickp_core::object_slices` reports); everything between them is
    /// glue. Panics if `ranges` violates that contract: the caller hands
    /// us slices of a stream it just validated.
    pub fn encode(&self, payload: &[u8], ranges: &[Range<usize>]) -> EncodedPayload {
        self.encode_batched(payload, ranges, &[])
    }

    /// [`ChunkIndex::encode`] with extra dedup context: `pending` holds
    /// the chunks staged by *earlier frames of the same atomic batch*.
    /// A reference may point at a pending chunk only because the whole
    /// batch commits in one manifest swap — either every frame of the
    /// batch is acknowledged (the referenced chunk is inside the
    /// frontier, earlier in the scan order) or none is. References can
    /// therefore never cross an un-acknowledged batch boundary.
    pub fn encode_batched(
        &self,
        payload: &[u8],
        ranges: &[Range<usize>],
        pending: &[(u64, Vec<u8>)],
    ) -> EncodedPayload {
        let mut stored = Vec::with_capacity(payload.len() + LITERAL_OVERHEAD);
        let mut staged: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut stats = DedupStats { bytes_in: payload.len() as u64, ..DedupStats::default() };
        let mut cursor = 0usize;
        let glue = |out: &mut Vec<u8>, bytes: &[u8]| {
            out.push(PART_GLUE);
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        };
        for range in ranges {
            assert!(
                cursor <= range.start && range.start < range.end && range.end <= payload.len(),
                "dedup ranges must be ascending, non-overlapping and in bounds"
            );
            if range.start > cursor {
                glue(&mut stored, &payload[cursor..range.start]);
            }
            let chunk = &payload[range.clone()];
            stats.chunks_total += 1;
            let hash = content_hash(chunk);
            let known: Option<&[u8]> = self
                .map
                .get(&hash)
                .map(Vec::as_slice)
                .or_else(|| staged.iter().find(|(h, _)| *h == hash).map(|(_, b)| b.as_slice()))
                .or_else(|| pending.iter().find(|(h, _)| *h == hash).map(|(_, b)| b.as_slice()));
            match known {
                // A hash hit only dedups when the bytes agree (collision
                // safety) and the reference is no larger than the chunk.
                Some(existing)
                    if existing == chunk && chunk.len() + LITERAL_OVERHEAD > REF_PART_LEN =>
                {
                    stats.chunks_deduped += 1;
                    stored.push(PART_REF);
                    stored.extend_from_slice(&hash.to_be_bytes());
                    stored.extend_from_slice(&(chunk.len() as u32).to_be_bytes());
                }
                Some(_) => glue(&mut stored, chunk),
                None => {
                    staged.push((hash, chunk.to_vec()));
                    stored.push(PART_CHUNK);
                    stored.extend_from_slice(&(chunk.len() as u32).to_be_bytes());
                    stored.extend_from_slice(chunk);
                }
            }
            cursor = range.end;
        }
        if cursor < payload.len() {
            glue(&mut stored, &payload[cursor..]);
        }
        stats.bytes_stored = stored.len() as u64;
        EncodedPayload { stored, staged, stats }
    }

    /// Enters an acknowledged write's staged chunks into the index.
    pub fn commit(&mut self, staged: Vec<(u64, Vec<u8>)>) {
        for (hash, bytes) in staged {
            self.digest = self.digest.wrapping_add(hash);
            self.map.insert(hash, bytes);
        }
    }

    /// Decodes a stored frame payload back into its logical bytes,
    /// entering indexed chunks as they stream past (recovery path: the
    /// frontier is committed, so inserts are immediate). Errors are
    /// `(offset, what)` for the caller to wrap in its corruption type.
    pub fn decode(&mut self, stored: &[u8]) -> Result<Vec<u8>, (usize, String)> {
        let mut payload = Vec::with_capacity(stored.len());
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<Range<usize>, (usize, String)> {
            if *at + n > stored.len() {
                return Err((*at, "frame part overruns the payload".to_string()));
            }
            let r = *at..*at + n;
            *at += n;
            Ok(r)
        };
        while at < stored.len() {
            let tag_at = at;
            let tag = stored[take(&mut at, 1)?.start];
            match tag {
                PART_GLUE | PART_CHUNK => {
                    let len =
                        u32::from_be_bytes(stored[take(&mut at, 4)?].try_into().expect("4 bytes"))
                            as usize;
                    let bytes = &stored[take(&mut at, len)?];
                    if tag == PART_CHUNK {
                        let hash = content_hash(bytes);
                        if let Some(existing) = self.map.get(&hash) {
                            if existing != bytes {
                                return Err((
                                    tag_at,
                                    "indexed chunk collides with an earlier chunk".to_string(),
                                ));
                            }
                        }
                        self.digest = self.digest.wrapping_add(hash);
                        self.map.insert(hash, bytes.to_vec());
                    }
                    payload.extend_from_slice(bytes);
                }
                PART_REF => {
                    let hash =
                        u64::from_be_bytes(stored[take(&mut at, 8)?].try_into().expect("8 bytes"));
                    let len =
                        u32::from_be_bytes(stored[take(&mut at, 4)?].try_into().expect("4 bytes"))
                            as usize;
                    let chunk = self.map.get(&hash).ok_or_else(|| {
                        (tag_at, format!("reference to unknown chunk {hash:#018x}"))
                    })?;
                    if chunk.len() != len {
                        return Err((
                            tag_at,
                            format!(
                                "reference length {len} does not match indexed chunk ({})",
                                chunk.len()
                            ),
                        ));
                    }
                    payload.extend_from_slice(chunk);
                }
                other => return Err((tag_at, format!("invalid frame part tag {other:#x}"))),
            }
        }
        Ok(payload)
    }
}

#[cfg(test)]
// Single-element `&[range]` literals here really are one-chunk range
// lists, not misread `vec![start; end]`s.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    fn round_trip(payload: &[u8], ranges: &[Range<usize>]) {
        let mut writer = ChunkIndex::new();
        let mut reader = ChunkIndex::new();
        let enc = writer.encode(payload, ranges);
        writer.commit(enc.staged);
        assert_eq!(reader.decode(&enc.stored).unwrap(), payload);
        assert_eq!(reader.count(), writer.count());
        assert_eq!(reader.digest(), writer.digest());
    }

    #[test]
    fn encode_decode_round_trips() {
        round_trip(b"plain payload, no chunks", &[]);
        round_trip(b"", &[]);
        let payload = b"head-AAAAAAAAAAAAAAAA-mid-BBBBBBBBBBBBBBBB-tail";
        round_trip(payload, &[5..21, 26..42]);
        round_trip(payload, &[0..payload.len()]);
    }

    #[test]
    fn repeated_chunks_become_references() {
        let mut index = ChunkIndex::new();
        let a = b"glue|CHUNKCHUNKCHUNKCHUNKCHUNKCHUNKCHUNKCHUNK|end";
        let first = index.encode(a, &[5..45]);
        assert_eq!(first.stats.chunks_deduped, 0);
        index.commit(first.staged);
        let second = index.encode(a, &[5..45]);
        assert_eq!(second.stats.chunks_total, 1);
        assert_eq!(second.stats.chunks_deduped, 1);
        assert!(second.stats.bytes_stored < second.stats.bytes_in);
        assert!(second.staged.is_empty());
        let mut reader = ChunkIndex::new();
        assert_eq!(reader.decode(&first.stored).unwrap(), a);
        assert_eq!(reader.decode(&second.stored).unwrap(), a);
    }

    #[test]
    fn same_frame_repeats_dedup_against_staging() {
        let index = ChunkIndex::new();
        let payload = b"XXXXYYYYYYYYYYYYYYYYZZZZYYYYYYYYYYYYYYYY";
        let enc = index.encode(payload, &[4..20, 24..40]);
        assert_eq!(enc.stats.chunks_deduped, 1);
        assert_eq!(enc.staged.len(), 1);
        let mut reader = ChunkIndex::new();
        assert_eq!(reader.decode(&enc.stored).unwrap(), payload);
    }

    #[test]
    fn batched_encode_dedups_against_pending_frames() {
        let index = ChunkIndex::new();
        let payload = b"....CHUNKCHUNKCHUNKCHUNKCHUNKCHUNK....";
        // Frame 1 of a batch stages the chunk; frame 2 of the *same*
        // batch references it without committing anything in between.
        let first = index.encode_batched(payload, &[4..34], &[]);
        assert_eq!(first.staged.len(), 1);
        let second = index.encode_batched(payload, &[4..34], &first.staged);
        assert_eq!(second.stats.chunks_deduped, 1);
        assert!(second.staged.is_empty(), "pending chunks are not re-staged");
        // An in-order decode (how recovery scans the frontier) resolves
        // the intra-batch reference.
        let mut reader = ChunkIndex::new();
        assert_eq!(reader.decode(&first.stored).unwrap(), payload);
        assert_eq!(reader.decode(&second.stored).unwrap(), payload);
    }

    #[test]
    fn uncommitted_chunks_never_enter_the_index() {
        let index = ChunkIndex::new();
        let enc = index.encode(b"ABCDEFGHIJKLMNOP", &[0..16]);
        drop(enc); // the append "failed": nothing committed
        assert_eq!(index.count(), 0);
        assert_eq!(index.digest(), 0);
    }

    #[test]
    fn decode_rejects_malformed_parts() {
        let mut reader = ChunkIndex::new();
        assert!(reader.decode(&[0x07]).is_err(), "unknown tag");
        assert!(reader.decode(&[PART_GLUE, 0, 0, 0, 9, b'x']).is_err(), "overrun");
        let mut dangling = vec![PART_REF];
        dangling.extend_from_slice(&42u64.to_be_bytes());
        dangling.extend_from_slice(&4u32.to_be_bytes());
        assert!(reader.decode(&dangling).is_err(), "unknown chunk hash");
    }

    #[test]
    fn tiny_chunks_stay_literal() {
        let mut index = ChunkIndex::new();
        let payload = b"abcdefg";
        let enc = index.encode(payload, &[0..7]);
        index.commit(enc.staged);
        // Second write: a 7-byte chunk + 5 framing < 13-byte reference,
        // so dedup would grow the store — keep the literal.
        let again = index.encode(payload, &[0..7]);
        assert_eq!(again.stats.chunks_deduped, 0);
        let mut reader = ChunkIndex::new();
        assert_eq!(reader.decode(&again.stored).unwrap(), payload);
    }
}
