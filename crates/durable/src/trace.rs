//! Typed operation tracing: the raw material of the durability auditor.
//!
//! [`TraceVfs`] decorates any [`Vfs`] and records every **mutating**
//! operation — create, append, fsync, rename, directory fsync, truncate,
//! remove — as a typed [`TraceEvent`] carrying the path, the byte range
//! and the operation's index in a (possibly shared) [`OpCounter`] space.
//! The fault-injection layer ([`FailFs`](crate::FailFs)) and the
//! replication transport can write into the same [`TraceLog`], so one
//! trace captures the complete interleaved op stream of a composed
//! system: both nodes' filesystems plus the wire.
//!
//! Two consumers build on the trace:
//!
//! * `ickp-audit`'s `audit_durability` replays the stream through an
//!   explicit persistence model and statically proves the fsync/rename
//!   protocol sound (diagnostics `AUD401`–`AUD408`).
//! * [`crash_classes`] collapses the crash points of a deterministic
//!   workload into **equivalence classes**: two crash indices are
//!   equivalent when they provably leave byte-identical durable
//!   filesystem states, so the crash-matrix harness need only replay one
//!   representative per class (the `prune_equivalent` mode of
//!   [`enumerate_crash_points`](crate::enumerate_crash_points)).
//!
//! ## The persistence model (normative)
//!
//! The equivalence proof uses exactly the pessimistic POSIX model
//! [`MemFs`](crate::MemFs) implements (see `docs/FORMAT.md`):
//!
//! * bytes written to a file are **volatile** until a covering
//!   [`Vfs::sync`] on that file;
//! * a rename is **atomic** (never a torn name) but, like creations and
//!   removals, **unordered with respect to a crash** until the parent
//!   directory is fsynced ([`Vfs::sync_dir`]);
//! * a crash *during* an fsync leaves an arbitrary durable prefix of the
//!   pending bytes (deterministically: half, matching
//!   [`FailFs`](crate::FailFs));
//! * every other operation interrupted by a crash simply did not happen.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::fail::OpCounter;
use crate::vfs::{FsError, Vfs};

/// Which node of a (possibly replicated) system performed an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceNode {
    /// A single-node workload (the only node there is).
    Local,
    /// The replication primary.
    Primary,
    /// The replication follower (hot standby).
    Follower,
}

impl fmt::Display for TraceNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceNode::Local => "local",
            TraceNode::Primary => "primary",
            TraceNode::Follower => "follower",
        })
    }
}

/// One typed mutating operation, as the persistence model sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `write_file`: a fresh inode for `path` holding `len` volatile
    /// bytes (any previous durable inode stays reachable until the
    /// directory is synced).
    Create {
        /// The file created or begun to be replaced.
        path: String,
        /// Bytes written.
        len: u64,
    },
    /// `append`: `len` volatile bytes at `offset` (the file's length
    /// before the write).
    Write {
        /// The file appended to.
        path: String,
        /// File length before the write.
        offset: u64,
        /// Bytes appended.
        len: u64,
    },
    /// `sync`: every byte of `path` becomes durable (fsync).
    Fsync {
        /// The file synced.
        path: String,
    },
    /// `rename`: atomic, volatile until the next [`TraceOp::DirFsync`].
    Rename {
        /// Source name.
        from: String,
        /// Destination name (replaced atomically if present).
        to: String,
    },
    /// `sync_dir`: the directory's name set becomes durable.
    DirFsync,
    /// `truncate` to `len` bytes.
    Truncate {
        /// The file truncated.
        path: String,
        /// New length.
        len: u64,
    },
    /// `remove`: volatile until the next [`TraceOp::DirFsync`].
    Remove {
        /// The file removed.
        path: String,
    },
    /// A replication data frame leaving the primary.
    WireSend,
    /// An acknowledgement frame leaving the follower.
    WireAck,
}

impl TraceOp {
    /// The static operation name (matches [`FsError::Injected`]'s `op`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceOp::Create { .. } => "write_file",
            TraceOp::Write { .. } => "append",
            TraceOp::Fsync { .. } => "sync",
            TraceOp::Rename { .. } => "rename",
            TraceOp::DirFsync => "sync_dir",
            TraceOp::Truncate { .. } => "truncate",
            TraceOp::Remove { .. } => "remove",
            TraceOp::WireSend => "wire_send",
            TraceOp::WireAck => "wire_ack",
        }
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::Create { path, len } => write!(f, "create {path:?} ({len} bytes)"),
            TraceOp::Write { path, offset, len } => {
                write!(f, "append {path:?} @{offset}+{len}")
            }
            TraceOp::Fsync { path } => write!(f, "fsync {path:?}"),
            TraceOp::Rename { from, to } => write!(f, "rename {from:?} -> {to:?}"),
            TraceOp::DirFsync => f.write_str("dir-fsync"),
            TraceOp::Truncate { path, len } => write!(f, "truncate {path:?} to {len}"),
            TraceOp::Remove { path } => write!(f, "remove {path:?}"),
            TraceOp::WireSend => f.write_str("wire send (primary -> follower)"),
            TraceOp::WireAck => f.write_str("wire ack (follower -> primary)"),
        }
    }
}

/// One entry of a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A counted mutating operation.
    Op {
        /// The index claimed on the shared [`OpCounter`].
        index: u64,
        /// The node that performed it.
        node: TraceNode,
        /// What it did.
        op: TraceOp,
    },
    /// A client-visible acknowledgement watermark: `records` checkpoint
    /// records are now acknowledged. Markers are positional (they sit
    /// between the counted operations) but claim **no** counter index,
    /// so filesystem op indices line up exactly with
    /// [`FailFs`](crate::FailFs) crash indices.
    ClientAck {
        /// Cumulative acknowledged record count.
        records: u64,
    },
}

/// A shareable, append-only event log. Clones share the same buffer, so
/// one log can collect events from a [`TraceVfs`], a
/// [`FailFs`](crate::FailFs) and a transport at once.
#[derive(Debug, Clone, Default)]
pub struct TraceLog(Arc<Mutex<Vec<TraceEvent>>>);

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Records one counted operation.
    pub fn record(&self, index: u64, node: TraceNode, op: TraceOp) {
        self.0.lock().expect("trace log poisoned").push(TraceEvent::Op { index, node, op });
    }

    /// Records a client-acknowledgement watermark (uncounted marker).
    pub fn client_ack(&self, records: u64) {
        self.0.lock().expect("trace log poisoned").push(TraceEvent::ClientAck { records });
    }

    /// A snapshot of everything recorded so far, with the counter's
    /// current claim count — the input [`audit_durability`] and
    /// [`crash_classes`] consume.
    ///
    /// [`audit_durability`]: https://docs.rs/ickp-audit
    pub fn snapshot(&self, counter: &OpCounter) -> OpTrace {
        OpTrace {
            events: self.0.lock().expect("trace log poisoned").clone(),
            counted: counter.count(),
        }
    }

    /// Number of events recorded so far (ops plus markers).
    pub fn len(&self) -> usize {
        self.0.lock().expect("trace log poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An immutable snapshot of a recorded op stream: the events in order
/// plus the total number of counter indices claimed while recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// The recorded events, in order.
    pub events: Vec<TraceEvent>,
    /// Indices claimed on the shared [`OpCounter`] during the trace. A
    /// sound trace covers `0..counted` exactly once each; a gap means
    /// some layer performed I/O outside the traced op space.
    pub counted: u64,
}

/// A [`Vfs`] decorator that records every mutating operation into a
/// [`TraceLog`], claiming indices on a (possibly shared) [`OpCounter`].
///
/// Tracing is transparent: every operation delegates to the inner
/// filesystem unchanged, reads are not counted (mirroring
/// [`FailFs`](crate::FailFs)), and the decorated filesystem is
/// byte-identical and crash-identical to the bare one (pinned by the
/// `trace_props` property suite).
#[derive(Debug)]
pub struct TraceVfs<F: Vfs> {
    inner: F,
    log: TraceLog,
    counter: OpCounter,
    node: TraceNode,
    /// Shadow file sizes, so append offsets are recorded without reading
    /// the inner filesystem (which may be expensive or absent).
    sizes: BTreeMap<String, u64>,
}

impl<F: Vfs> TraceVfs<F> {
    /// Wraps `inner`, recording into `log` as [`TraceNode::Local`] on a
    /// private counter.
    pub fn new(inner: F, log: TraceLog) -> TraceVfs<F> {
        TraceVfs::with_counter(inner, log, OpCounter::new(), TraceNode::Local)
    }

    /// Wraps `inner`, recording into `log` as `node`, numbering
    /// operations on the given (possibly shared) counter.
    pub fn with_counter(
        inner: F,
        log: TraceLog,
        counter: OpCounter,
        node: TraceNode,
    ) -> TraceVfs<F> {
        TraceVfs { inner, log, counter, node, sizes: BTreeMap::new() }
    }

    /// A handle to this filesystem's operation counter.
    pub fn counter(&self) -> OpCounter {
        self.counter.clone()
    }

    /// The trace log this filesystem records into.
    pub fn log(&self) -> TraceLog {
        self.log.clone()
    }

    /// Consumes the decorator, returning the inner filesystem.
    pub fn into_inner(self) -> F {
        self.inner
    }

    /// The inner filesystem, for inspection.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Mutable access to the inner filesystem.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }

    fn trace(&mut self, op: TraceOp) {
        let index = self.counter.next();
        self.log.record(index, self.node, op);
    }
}

impl<F: Vfs> Vfs for TraceVfs<F> {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        self.trace(TraceOp::Create { path: name.to_string(), len: data.len() as u64 });
        let r = self.inner.write_file(name, data);
        if r.is_ok() {
            self.sizes.insert(name.to_string(), data.len() as u64);
        }
        r
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let offset = self.sizes.get(name).copied().unwrap_or(0);
        self.trace(TraceOp::Write { path: name.to_string(), offset, len: data.len() as u64 });
        let r = self.inner.append(name, data);
        if r.is_ok() {
            *self.sizes.entry(name.to_string()).or_insert(0) += data.len() as u64;
        }
        r
    }

    fn sync(&mut self, name: &str) -> Result<(), FsError> {
        self.trace(TraceOp::Fsync { path: name.to_string() });
        self.inner.sync(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        self.trace(TraceOp::Rename { from: from.to_string(), to: to.to_string() });
        let r = self.inner.rename(from, to);
        if r.is_ok() {
            if let Some(len) = self.sizes.remove(from) {
                self.sizes.insert(to.to_string(), len);
            }
        }
        r
    }

    fn sync_dir(&mut self) -> Result<(), FsError> {
        self.trace(TraceOp::DirFsync);
        self.inner.sync_dir()
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        self.trace(TraceOp::Truncate { path: name.to_string(), len });
        let r = self.inner.truncate(name, len);
        if r.is_ok() {
            if let Some(size) = self.sizes.get_mut(name) {
                *size = (*size).min(len);
            }
        }
        r
    }

    fn remove(&mut self, name: &str) -> Result<(), FsError> {
        self.trace(TraceOp::Remove { path: name.to_string() });
        let r = self.inner.remove(name);
        if r.is_ok() {
            self.sizes.remove(name);
        }
        r
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        self.inner.read(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        self.inner.list()
    }
}

// ------------------------------------------------- crash-state classes

/// One equivalence class of crash points: every index in `indices`
/// provably leaves the same durable filesystem state (byte-identical
/// under the persistence model), so recovery behaves identically at each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashClass {
    /// The class's canonical member (its smallest crash index).
    pub representative: u64,
    /// Every crash index in the class, ascending.
    pub indices: Vec<u64>,
    /// The client-acknowledged record watermark at every index of the
    /// class (from the trace's [`TraceEvent::ClientAck`] markers; 0 if
    /// the workload recorded none). For a sound single-store protocol
    /// this is exactly the record count recovery returns.
    pub recovers_to: u64,
}

/// A symbolic inode: content as (writing-op, length) runs plus the
/// durable prefix length. Runs identify *which operation* produced each
/// byte range, so equal truncated run lists imply byte-identical durable
/// content for a deterministic workload — without the trace having to
/// record the bytes themselves.
#[derive(Debug, Clone, Default)]
struct SymInode {
    runs: Vec<(u64, u64)>,
    synced_len: u64,
}

impl SymInode {
    fn len(&self) -> u64 {
        self.runs.iter().map(|(_, l)| l).sum()
    }

    fn truncate(&mut self, len: u64) {
        let mut total = 0u64;
        self.runs.retain_mut(|(_, l)| {
            if total >= len {
                return false;
            }
            *l = (*l).min(len - total);
            total += *l;
            true
        });
        self.synced_len = self.synced_len.min(self.len());
    }

    /// Serializes the durable prefix (runs up to `synced`) into `key`.
    fn durable_key(&self, synced: u64, key: &mut Vec<u8>) {
        let mut remaining = synced;
        for &(op, len) in &self.runs {
            if remaining == 0 {
                break;
            }
            let take = len.min(remaining);
            key.extend_from_slice(&op.to_le_bytes());
            key.extend_from_slice(&take.to_le_bytes());
            remaining -= take;
        }
    }
}

/// A symbolic [`MemFs`](crate::MemFs): the same durable/volatile split,
/// tracked over op identities instead of bytes.
#[derive(Debug, Clone, Default)]
struct SymFs {
    inodes: Vec<SymInode>,
    namespace: BTreeMap<String, usize>,
    durable_namespace: BTreeMap<String, usize>,
}

impl SymFs {
    fn inode_for(&mut self, path: &str) -> usize {
        match self.namespace.get(path) {
            Some(&idx) => idx,
            None => {
                self.inodes.push(SymInode::default());
                let idx = self.inodes.len() - 1;
                self.namespace.insert(path.to_string(), idx);
                idx
            }
        }
    }

    fn apply(&mut self, index: u64, op: &TraceOp) {
        match op {
            TraceOp::Create { path, len } => {
                self.inodes.push(SymInode { runs: vec![(index, *len)], synced_len: 0 });
                self.namespace.insert(path.clone(), self.inodes.len() - 1);
            }
            TraceOp::Write { path, len, .. } => {
                let idx = self.inode_for(path);
                self.inodes[idx].runs.push((index, *len));
            }
            TraceOp::Fsync { path } => {
                if let Some(&idx) = self.namespace.get(path) {
                    self.inodes[idx].synced_len = self.inodes[idx].len();
                }
            }
            TraceOp::Rename { from, to } => {
                if let Some(idx) = self.namespace.remove(from) {
                    self.namespace.insert(to.clone(), idx);
                }
            }
            TraceOp::DirFsync => self.durable_namespace = self.namespace.clone(),
            TraceOp::Truncate { path, len } => {
                if let Some(&idx) = self.namespace.get(path) {
                    self.inodes[idx].truncate(*len);
                }
            }
            TraceOp::Remove { path } => {
                self.namespace.remove(path);
            }
            TraceOp::WireSend | TraceOp::WireAck => {}
        }
    }

    /// Serializes the durable state — the durable namespace and each
    /// reachable inode's durable content runs — into `key`.
    /// `partial_sync` optionally applies the half-pending partial effect
    /// of an in-flight fsync on one path (the crash-during-fsync rule).
    fn durable_key(&self, partial_sync: Option<&str>, key: &mut Vec<u8>) {
        for (name, &idx) in &self.durable_namespace {
            key.extend_from_slice(name.as_bytes());
            key.push(0);
            let inode = &self.inodes[idx];
            let mut synced = inode.synced_len;
            // An in-flight fsync resolves its path through the volatile
            // namespace; its partial effect is visible here only when
            // that inode is also reachable from the durable namespace.
            if let Some(path) = partial_sync {
                if self.namespace.get(path) == Some(&idx) {
                    synced += (inode.len() - inode.synced_len) / 2;
                }
            }
            inode.durable_key(synced, key);
            key.push(0xFF);
        }
    }
}

/// Collapses the crash points of a recorded trace into equivalence
/// classes of provably identical durable states.
///
/// Crash index `k` means: operations `0..k` took full effect, operation
/// `k` took its partial effect (only an in-flight fsync has one — half
/// the pending bytes become durable; every other interrupted operation
/// simply did not happen), then every volatile byte and name was lost.
/// Two indices land in the same class iff, under that model, they leave
/// the same durable namespace mapping to inodes with identical durable
/// content runs **on every node**, the same acknowledged watermark, and
/// (for wire operations, whose crash kills the sending node) the same
/// victim. Because the workload is deterministic, equal keys imply
/// byte-identical recovered filesystems — replaying one representative
/// per class exercises every distinct recovery the full matrix would.
pub fn crash_classes(trace: &OpTrace) -> Vec<CrashClass> {
    let mut nodes: BTreeMap<TraceNode, SymFs> = BTreeMap::new();
    let mut acked = 0u64;
    let mut by_key: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut classes: Vec<CrashClass> = Vec::new();

    let mut ordered: Vec<(&u64, &TraceNode, &TraceOp)> = Vec::new();
    let mut markers: Vec<(usize, u64)> = Vec::new(); // (position among ops, watermark)
    for event in &trace.events {
        match event {
            TraceEvent::Op { index, node, op } => ordered.push((index, node, op)),
            TraceEvent::ClientAck { records } => markers.push((ordered.len(), *records)),
        }
    }

    let mut marker_cursor = 0usize;
    for (position, (&index, &node, op)) in ordered.iter().enumerate() {
        while marker_cursor < markers.len() && markers[marker_cursor].0 <= position {
            acked = markers[marker_cursor].1;
            marker_cursor += 1;
        }
        nodes.entry(node).or_default();

        // The crash-at-`index` durable state: every node's durable key,
        // with the partial fsync effect applied on the owning node.
        let mut key = Vec::new();
        key.extend_from_slice(&acked.to_le_bytes());
        let victim = match op {
            TraceOp::WireSend | TraceOp::WireAck => Some(node),
            _ => None,
        };
        key.push(match victim {
            None => 0,
            Some(TraceNode::Local) => 1,
            Some(TraceNode::Primary) => 2,
            Some(TraceNode::Follower) => 3,
        });
        for (&n, fs) in &nodes {
            key.push(match n {
                TraceNode::Local => 1,
                TraceNode::Primary => 2,
                TraceNode::Follower => 3,
            });
            let partial = match op {
                TraceOp::Fsync { path } if n == node => Some(path.as_str()),
                _ => None,
            };
            fs.durable_key(partial, &mut key);
        }

        match by_key.get(&key) {
            Some(&slot) => classes[slot].indices.push(index),
            None => {
                by_key.insert(key, classes.len());
                classes.push(CrashClass {
                    representative: index,
                    indices: vec![index],
                    recovers_to: acked,
                });
            }
        }

        nodes.get_mut(&node).expect("inserted above").apply(index, op);
    }

    classes.sort_by_key(|c| c.representative);
    classes
}

impl OpTrace {
    /// Total counted operations whose index appears in the events. For a
    /// complete trace this equals [`OpTrace::counted`].
    pub fn traced_ops(&self) -> u64 {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Op { .. })).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;

    #[test]
    fn trace_vfs_records_typed_ops_with_indices() {
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log);
        fs.write_file("a", b"xy").unwrap();
        fs.append("a", b"zw").unwrap();
        fs.sync("a").unwrap();
        fs.rename("a", "b").unwrap();
        fs.sync_dir().unwrap();
        fs.log().client_ack(1);
        fs.truncate("b", 1).unwrap();
        fs.remove("b").unwrap();
        let _ = fs.read("b"); // reads are not counted
        let trace = fs.log().snapshot(&fs.counter());
        assert_eq!(trace.counted, 7);
        assert_eq!(trace.traced_ops(), 7);
        let ops: Vec<String> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Op { op, .. } => Some(op.to_string()),
                TraceEvent::ClientAck { .. } => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                "create \"a\" (2 bytes)",
                "append \"a\" @2+2",
                "fsync \"a\"",
                "rename \"a\" -> \"b\"",
                "dir-fsync",
                "truncate \"b\" to 1",
                "remove \"b\"",
            ]
        );
        assert!(trace.events.iter().any(|e| matches!(e, TraceEvent::ClientAck { records: 1 })));
    }

    /// A write-temp + fsync + rename + dir-fsync commit: every crash
    /// point before the dir-fsync completes is one class (the old state),
    /// the first point after it is another.
    #[test]
    fn commit_protocol_collapses_into_two_classes() {
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log);
        // Commit 1: publish "MANIFEST".
        fs.write_file("MANIFEST.tmp", b"v1").unwrap(); // 0
        fs.sync("MANIFEST.tmp").unwrap(); // 1
        fs.rename("MANIFEST.tmp", "MANIFEST").unwrap(); // 2
        fs.sync_dir().unwrap(); // 3
        fs.log().client_ack(1);
        // Commit 2 begins but we only trace its first op.
        fs.write_file("MANIFEST.tmp", b"v2").unwrap(); // 4
        let trace = fs.log().snapshot(&fs.counter());
        let classes = crash_classes(&trace);
        assert_eq!(classes.len(), 2, "{classes:?}");
        assert_eq!(classes[0].indices, vec![0, 1, 2, 3], "pre-commit crashes are one state");
        assert_eq!(classes[0].recovers_to, 0);
        assert_eq!(classes[1].indices, vec![4]);
        assert_eq!(classes[1].recovers_to, 1);
    }

    /// A crash *during* an fsync with >= 2 pending bytes leaves a torn
    /// durable prefix distinct from both neighbours — its own class.
    #[test]
    fn torn_fsync_is_its_own_class() {
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log);
        fs.append("seg", b"AA").unwrap(); // 0
        fs.sync("seg").unwrap(); // 1
        fs.sync_dir().unwrap(); // 2
        fs.append("seg", b"BBBB").unwrap(); // 3: volatile
        fs.sync("seg").unwrap(); // 4: crash here -> 2 of 4 pending bytes land
        fs.append("seg", b"C").unwrap(); // 5
        let trace = fs.log().snapshot(&fs.counter());
        let classes = crash_classes(&trace);
        // Crash at k: ops 0..k applied, op k partial. 0..=2 share the
        // empty durable state (the name publishes only when the dir-fsync
        // *completes*, i.e. from crash point 3 on); the volatile append
        // at 3 changes nothing durable; 4 is the torn half-sync; 5 sees
        // the full sync.
        let of = |k: u64| classes.iter().position(|c| c.indices.contains(&k)).unwrap();
        assert_eq!(of(0), of(1));
        assert_eq!(of(1), of(2), "uncompleted dir-fsync leaves the empty namespace");
        assert_ne!(of(2), of(3), "completed dir-fsync publishes the synced bytes");
        assert_ne!(of(3), of(4), "torn fsync is distinct");
        assert_ne!(of(4), of(5), "completed fsync is distinct from torn");
    }

    /// Truncate-then-rewrite to the same synced length must NOT merge
    /// with the original state: the durable bytes differ even though the
    /// lengths agree.
    #[test]
    fn same_length_different_bytes_do_not_merge() {
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log);
        fs.append("f", b"ABCD").unwrap(); // 0
        fs.sync("f").unwrap(); // 1
        fs.sync_dir().unwrap(); // 2
        fs.truncate("f", 2).unwrap(); // 3
        fs.append("f", b"XY").unwrap(); // 4: same length, different source op
        fs.sync("f").unwrap(); // 5
        fs.sync_dir().unwrap(); // 6
        fs.append("f", b"!").unwrap(); // 7
        let trace = fs.log().snapshot(&fs.counter());
        let classes = crash_classes(&trace);
        let of = |k: u64| classes.iter().position(|c| c.indices.contains(&k)).unwrap();
        // Crash at 7 sees "ABXY" durable (ops 0-truncated + op 4); crash
        // at 3 sees "ABCD". Same length, different run identity.
        assert_ne!(of(3), of(7));
    }
}
