//! The segmented, append-only durable checkpoint store.
//!
//! ## On-disk layout
//!
//! A store is one flat directory holding numbered **segment** files plus
//! one **manifest**:
//!
//! ```text
//! seg-000000.ickd   header | frame | frame | ...
//! seg-000001.ickd
//! MANIFEST          the committed frontier (atomically swapped)
//! ```
//!
//! Segment header (10 bytes): magic `ICKD`, format version `u16`,
//! segment index `u32` (all big-endian). Each frame is
//! `len: u32 | crc: u32 | payload`, where `payload` is one checkpoint
//! record's ICKP stream encoded as dedup *parts* (see [`crate::dedup`]:
//! literal bytes, indexed chunks, and back-references to chunks stored
//! by earlier frames) and `crc` is the IEEE CRC-32 of the length bytes
//! followed by the stored payload.
//!
//! The manifest (magic `ICKM`, format v2) carries the record count, the
//! last sequence number, per segment its index and **committed length**
//! — the byte frontier up to which that segment's content has been
//! fsync-acknowledged — plus the lifecycle state: the **retention
//! generation** (bumped by every [`DurableStore::rewrite`]; a non-zero
//! generation relaxes recovery's sequence check from contiguous to
//! strictly increasing, because retention merges leave gaps), the
//! **tags** (label → sequence number restore points), and a count +
//! digest summary of the content-hash chunk index so recovery can verify
//! the index it rebuilds. A trailing CRC-32 covers the whole manifest.
//!
//! ## The append protocol: group commit
//!
//! The write path is a **group-commit batch pipeline**. A batch of one or
//! more records ([`DurableStore::append`] is a batch of one;
//! [`DurableStore::append_batch`] takes many) performs, in order: append
//! every frame to the tail segment (rolling to new segments as the target
//! size is crossed), fsync each touched segment once, write the new
//! manifest to `MANIFEST.tmp`, fsync it, rename it over `MANIFEST`, fsync
//! the directory. Only when the final directory sync returns is the batch
//! *acknowledged* — all of it, atomically: a crash before the manifest
//! swap loses the whole batch (the torn frames beyond the old frontier
//! are truncated by recovery), never part of it. A batch of `n` records
//! in one segment therefore costs 3 fsyncs instead of `3n`
//! ([`IoStats`] exposes the counters the `group_commit` bench reads).
//!
//! For multi-record batches, frame *encoding* (dedup part encoding +
//! CRC framing, on a scoped worker thread) overlaps the *I/O* of the
//! frames already encoded; the filesystem only ever sees the same
//! deterministic operation sequence it would single-threaded.
//!
//! ## Recovery
//!
//! [`DurableStore::open`] treats the manifest as the single source of
//! committed truth. No manifest means nothing was ever acknowledged:
//! leftovers are deleted and a fresh store is initialized. Otherwise the
//! manifest is CRC-validated, orphan files are removed, every segment is
//! truncated back to its committed length (bytes past the frontier are a
//! torn tail from a crash mid-append — expected, and discarded), and the
//! frames inside the frontier are CRC-checked and decoded. Any anomaly
//! *inside* the frontier — missing segment, short segment, bad CRC — is
//! real corruption and surfaces as [`DurableError::Corrupt`] rather than
//! being silently dropped.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::crc::crc32;
use crate::dedup::{ChunkIndex, DedupStats};
use crate::error::DurableError;
use crate::vfs::Vfs;
use ickp_core::{decode, CheckpointRecord, CheckpointStore, CoreError, RecordSink, TraversalStats};
use ickp_heap::ClassRegistry;

const SEGMENT_MAGIC: [u8; 4] = *b"ICKD";
const MANIFEST_MAGIC: [u8; 4] = *b"ICKM";

/// On-disk format version shared by segments and the manifest. Version 2
/// (dedup parts inside frames, lifecycle state in the manifest)
/// supersedes version 1; the store neither reads nor writes v1 images.
pub const FORMAT_VERSION: u16 = 2;

/// File name of the manifest.
pub const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Length of a segment header: magic + version + index.
const SEGMENT_HEADER_LEN: u64 = 10;
/// Length of a frame header: length + CRC.
const FRAME_HEADER_LEN: u64 = 8;

/// File name of segment `index`.
pub fn segment_name(index: u32) -> String {
    format!("seg-{index:06}.ickd")
}

/// Tuning knobs for the durable store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Once a segment's committed length reaches this, the next append
    /// starts a new segment. Small values force frequent rolls (useful in
    /// tests); the default keeps segments around a megabyte.
    pub segment_target_bytes: u64,
}

impl Default for DurableConfig {
    fn default() -> DurableConfig {
        DurableConfig { segment_target_bytes: 1 << 20 }
    }
}

/// Cumulative I/O accounting for one store handle.
///
/// Counts what the store asked of its [`Vfs`] since `create`/`open` —
/// recovery work included. The interesting ratio for the group-commit
/// path is [`IoStats::fsyncs`] per record appended: the single-record
/// protocol costs 3 fsyncs per record, a batch amortizes the segment
/// sync and the manifest swap across the whole batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Calls to [`Vfs::sync`] (file fsyncs).
    pub file_syncs: u64,
    /// Calls to [`Vfs::sync_dir`] (directory fsyncs).
    pub dir_syncs: u64,
    /// Calls to [`Vfs::rename`] (every one is a manifest publish).
    pub renames: u64,
    /// Record frames written to segments (appends, batches, rewrites).
    pub frames_written: u64,
    /// Atomic manifest swaps (each one acknowledges a batch, a tag
    /// operation, or a rewrite).
    pub manifest_swaps: u64,
}

impl IoStats {
    /// Total fsync-class operations (file + directory syncs).
    pub fn fsyncs(&self) -> u64 {
        self.file_syncs + self.dir_syncs
    }
}

/// One segment's entry in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentEntry {
    index: u32,
    committed_len: u64,
}

/// The committed frontier: what the store acknowledges as durable, plus
/// the lifecycle state (generation, tags, chunk-index summary).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    record_count: u64,
    last_seq: Option<u64>,
    segments: Vec<SegmentEntry>,
    /// Bumped by every [`DurableStore::rewrite`]. Zero means the store
    /// is pure append-only history (contiguous sequence numbers); after
    /// a rewrite, retention merges leave gaps and recovery only checks
    /// that sequence numbers strictly increase.
    generation: u64,
    /// Named restore points: `(label, seq)`, sorted by label.
    tags: Vec<(String, u64)>,
    /// Number of chunks in the content-hash index.
    chunk_count: u64,
    /// Wrapping sum of every indexed chunk's hash (order independent).
    chunk_digest: u64,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let tag_bytes: usize = self.tags.iter().map(|(label, _)| 2 + label.len() + 8).sum();
        let mut out = Vec::with_capacity(27 + self.segments.len() * 12 + 12 + tag_bytes + 16 + 4);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
        out.extend_from_slice(&self.record_count.to_be_bytes());
        out.push(self.last_seq.is_some() as u8);
        out.extend_from_slice(&self.last_seq.unwrap_or(0).to_be_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_be_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.index.to_be_bytes());
            out.extend_from_slice(&seg.committed_len.to_be_bytes());
        }
        out.extend_from_slice(&self.generation.to_be_bytes());
        out.extend_from_slice(&(self.tags.len() as u32).to_be_bytes());
        for (label, seq) in &self.tags {
            out.extend_from_slice(&(label.len() as u16).to_be_bytes());
            out.extend_from_slice(label.as_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
        }
        out.extend_from_slice(&self.chunk_count.to_be_bytes());
        out.extend_from_slice(&self.chunk_digest.to_be_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, DurableError> {
        let corrupt = |offset: u64, what: &str| DurableError::Corrupt {
            file: MANIFEST.to_string(),
            offset,
            what: what.to_string(),
        };
        // magic + version + count + flag + seq + nsegs + generation +
        // ntags + chunk count + chunk digest + crc
        if bytes.len() < 4 + 2 + 8 + 1 + 8 + 4 + 8 + 4 + 8 + 8 + 4 {
            return Err(corrupt(0, "manifest shorter than its fixed header"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_be_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != stored {
            return Err(corrupt(0, "manifest checksum mismatch"));
        }
        if body[0..4] != MANIFEST_MAGIC {
            return Err(corrupt(0, "bad manifest magic"));
        }
        if u16::from_be_bytes(body[4..6].try_into().expect("2 bytes")) != FORMAT_VERSION {
            return Err(corrupt(4, "unsupported manifest version"));
        }
        let record_count = u64::from_be_bytes(body[6..14].try_into().expect("8 bytes"));
        let has_seq = body[14] != 0;
        let seq = u64::from_be_bytes(body[15..23].try_into().expect("8 bytes"));
        let nsegs = u32::from_be_bytes(body[23..27].try_into().expect("4 bytes")) as usize;
        let mut at = 27;
        let take = |at: &mut usize, n: usize| -> Result<Range<usize>, DurableError> {
            if *at + n > body.len() {
                return Err(corrupt(*at as u64, "manifest table overruns the payload"));
            }
            let r = *at..*at + n;
            *at += n;
            Ok(r)
        };
        let mut segments = Vec::with_capacity(nsegs.min(1024));
        for _ in 0..nsegs {
            segments.push(SegmentEntry {
                index: u32::from_be_bytes(body[take(&mut at, 4)?].try_into().expect("4 bytes")),
                committed_len: u64::from_be_bytes(
                    body[take(&mut at, 8)?].try_into().expect("8 bytes"),
                ),
            });
        }
        let generation = u64::from_be_bytes(body[take(&mut at, 8)?].try_into().expect("8 bytes"));
        let ntags =
            u32::from_be_bytes(body[take(&mut at, 4)?].try_into().expect("4 bytes")) as usize;
        let mut tags = Vec::with_capacity(ntags.min(1024));
        for _ in 0..ntags {
            let label_len =
                u16::from_be_bytes(body[take(&mut at, 2)?].try_into().expect("2 bytes")) as usize;
            let label_at = at;
            let label = std::str::from_utf8(&body[take(&mut at, label_len)?])
                .map_err(|_| corrupt(label_at as u64, "tag label is not UTF-8"))?
                .to_string();
            let seq = u64::from_be_bytes(body[take(&mut at, 8)?].try_into().expect("8 bytes"));
            tags.push((label, seq));
        }
        let chunk_count = u64::from_be_bytes(body[take(&mut at, 8)?].try_into().expect("8 bytes"));
        let chunk_digest = u64::from_be_bytes(body[take(&mut at, 8)?].try_into().expect("8 bytes"));
        if at != body.len() {
            return Err(corrupt(at as u64, "manifest has trailing bytes"));
        }
        Ok(Manifest {
            record_count,
            last_seq: has_seq.then_some(seq),
            segments,
            generation,
            tags,
            chunk_count,
            chunk_digest,
        })
    }
}

fn segment_header(index: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
    out.extend_from_slice(&index.to_be_bytes());
    out
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() as u32).to_be_bytes();
    let mut covered = Vec::with_capacity(4 + payload.len());
    covered.extend_from_slice(&len);
    covered.extend_from_slice(payload);
    let crc = crc32(&covered);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
    frame.extend_from_slice(&len);
    frame.extend_from_slice(&crc.to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Writes one encoded frame into the (candidate) tail segment, rolling
/// to a fresh segment when the target size is crossed. No fsync happens
/// here — the batch path syncs each touched segment once, afterwards.
/// `touched` accumulates the segment indices needing that sync, in
/// order (appends only ever move forward through segments).
fn place_frame<F: Vfs>(
    fs: &mut F,
    config: &DurableConfig,
    candidate: &mut Manifest,
    next_segment_index: &mut u32,
    touched: &mut Vec<u32>,
    io: &mut IoStats,
    frame: &[u8],
) -> Result<(), DurableError> {
    let roll = match candidate.segments.last() {
        None => true,
        Some(seg) => seg.committed_len >= config.segment_target_bytes,
    };
    if roll {
        let index = *next_segment_index;
        let name = segment_name(index);
        let mut bytes = segment_header(index);
        bytes.extend_from_slice(frame);
        let committed_len = bytes.len() as u64;
        fs.write_file(&name, &bytes)?;
        candidate.segments.push(SegmentEntry { index, committed_len });
        *next_segment_index = index + 1;
        touched.push(index);
    } else {
        let seg = candidate.segments.last_mut().expect("non-roll has a tail segment");
        fs.append(&segment_name(seg.index), frame)?;
        seg.committed_len += frame.len() as u64;
        if touched.last() != Some(&seg.index) {
            touched.push(seg.index);
        }
    }
    io.frames_written += 1;
    Ok(())
}

/// A crash-safe, segmented, append-only checkpoint store over a [`Vfs`].
///
/// See the module docs for the on-disk format and the protocol. The
/// store owns its filesystem handle; pass `&mut fs` (the [`Vfs`] blanket
/// impl for `&mut F`) to keep ownership outside, as the crash harness
/// does.
#[derive(Debug)]
pub struct DurableStore<F: Vfs> {
    fs: F,
    config: DurableConfig,
    manifest: Manifest,
    /// Set when an append failed partway: the tail segment may hold bytes
    /// past the committed frontier. The next append truncates them first.
    tail_dirty: bool,
    /// The content-hash index over every committed chunk (see
    /// [`crate::dedup`]); mirrors the manifest's count + digest summary.
    chunks: ChunkIndex,
    /// Sequence numbers of the committed records, ascending. Derived
    /// state (recovered from the segments on open) used to validate tags
    /// without re-reading the log.
    seqs: Vec<u64>,
    /// Next segment index to allocate. Monotonic within a process even
    /// across failed rewrites, so a half-written segment file is never
    /// confused with a live one.
    next_segment_index: u32,
    /// I/O accounting since this handle was created/opened.
    io: IoStats,
}

impl<F: Vfs> DurableStore<F> {
    /// Initializes a fresh store in an empty (or leftover-strewn)
    /// directory.
    ///
    /// # Errors
    ///
    /// [`DurableError::AlreadyExists`] if a manifest is present, or
    /// [`DurableError::Fs`] on I/O failure.
    pub fn create(fs: F, config: DurableConfig) -> Result<DurableStore<F>, DurableError> {
        let mut store = DurableStore {
            fs,
            config,
            manifest: Manifest::default(),
            tail_dirty: false,
            chunks: ChunkIndex::new(),
            seqs: Vec::new(),
            next_segment_index: 0,
            io: IoStats::default(),
        };
        if store.fs.exists(MANIFEST) {
            return Err(DurableError::AlreadyExists);
        }
        store.clear_directory()?;
        store.swap_manifest(Manifest::default())?;
        Ok(store)
    }

    /// Opens an existing store, running crash recovery, and returns it
    /// together with the recovered in-memory [`CheckpointStore`].
    ///
    /// An absent manifest means no checkpoint was ever acknowledged: any
    /// leftover files are deleted and an empty store is initialized.
    ///
    /// # Errors
    ///
    /// * [`DurableError::Corrupt`] for damage inside the committed
    ///   frontier (never auto-repaired).
    /// * [`DurableError::SequenceGap`] if the recovered records are not
    ///   contiguous (generation 0) or not strictly increasing (after a
    ///   rewrite).
    /// * [`DurableError::Fs`] / [`DurableError::Core`] for I/O and decode
    ///   failures.
    pub fn open(
        fs: F,
        config: DurableConfig,
        registry: &ClassRegistry,
    ) -> Result<(DurableStore<F>, CheckpointStore), DurableError> {
        let mut store = DurableStore {
            fs,
            config,
            manifest: Manifest::default(),
            tail_dirty: false,
            chunks: ChunkIndex::new(),
            seqs: Vec::new(),
            next_segment_index: 0,
            io: IoStats::default(),
        };
        if !store.fs.exists(MANIFEST) {
            store.clear_directory()?;
            store.swap_manifest(Manifest::default())?;
            return Ok((store, CheckpointStore::new()));
        }

        let manifest = Manifest::decode(&store.fs.read(MANIFEST)?)?;

        // Files the manifest does not claim are un-acknowledged debris
        // from a crash (a half-written next segment, a stray tmp file).
        let expected: BTreeSet<String> = manifest
            .segments
            .iter()
            .map(|s| segment_name(s.index))
            .chain([MANIFEST.to_string()])
            .collect();
        let mut removed = false;
        for name in store.fs.list()? {
            if !expected.contains(&name) {
                store.fs.remove(&name)?;
                removed = true;
            }
        }
        if removed {
            store.fs.sync_dir()?;
            store.io.dir_syncs += 1;
        }

        let mut recovered = CheckpointStore::new();
        for seg in &manifest.segments {
            let name = segment_name(seg.index);
            let corrupt = |offset: u64, what: String| DurableError::Corrupt {
                file: name.clone(),
                offset,
                what,
            };
            if !store.fs.exists(&name) {
                return Err(corrupt(0, "segment referenced by the manifest is missing".into()));
            }
            let content = store.fs.read(&name)?;
            let actual = content.len() as u64;
            if actual < seg.committed_len {
                return Err(corrupt(
                    actual,
                    format!(
                        "segment shorter than its committed length ({actual} < {})",
                        seg.committed_len
                    ),
                ));
            }
            if actual > seg.committed_len {
                // Torn tail beyond the acknowledged frontier: expected
                // after a crash mid-append; cut it off, durably.
                store.fs.truncate(&name, seg.committed_len)?;
                store.fs.sync(&name)?;
                store.io.file_syncs += 1;
            }
            let committed = &content[..seg.committed_len as usize];
            if (committed.len() as u64) < SEGMENT_HEADER_LEN {
                return Err(corrupt(0, "committed length shorter than the segment header".into()));
            }
            if committed[0..4] != SEGMENT_MAGIC {
                return Err(corrupt(0, "bad segment magic".into()));
            }
            if u16::from_be_bytes(committed[4..6].try_into().expect("2 bytes")) != FORMAT_VERSION {
                return Err(corrupt(4, "unsupported segment version".into()));
            }
            if u32::from_be_bytes(committed[6..10].try_into().expect("4 bytes")) != seg.index {
                return Err(corrupt(6, "segment index does not match its manifest entry".into()));
            }

            let mut offset = SEGMENT_HEADER_LEN as usize;
            while offset < committed.len() {
                if offset + FRAME_HEADER_LEN as usize > committed.len() {
                    return Err(corrupt(
                        offset as u64,
                        "frame header overruns the committed length".into(),
                    ));
                }
                let len =
                    u32::from_be_bytes(committed[offset..offset + 4].try_into().expect("4 bytes"))
                        as usize;
                let stored_crc = u32::from_be_bytes(
                    committed[offset + 4..offset + 8].try_into().expect("4 bytes"),
                );
                let body_at = offset + FRAME_HEADER_LEN as usize;
                if body_at + len > committed.len() {
                    return Err(corrupt(
                        offset as u64,
                        "frame body overruns the committed length".into(),
                    ));
                }
                let stored_payload = &committed[body_at..body_at + len];
                let mut covered = Vec::with_capacity(4 + len);
                covered.extend_from_slice(&committed[offset..offset + 4]);
                covered.extend_from_slice(stored_payload);
                if crc32(&covered) != stored_crc {
                    return Err(corrupt(offset as u64, "frame checksum mismatch".into()));
                }

                // Resolve dedup parts into the logical ICKP stream,
                // growing the chunk index as indexed chunks stream past.
                let payload = store
                    .chunks
                    .decode(stored_payload)
                    .map_err(|(part_at, what)| corrupt((body_at + part_at) as u64, what))?;

                let decoded = decode(&payload, registry)?;
                if let Some(last) = recovered.latest() {
                    // Generation 0 is untouched append-only history:
                    // sequence numbers are contiguous. After a rewrite,
                    // retention merges leave gaps; order still holds.
                    if manifest.generation == 0 && decoded.seq != last.seq() + 1 {
                        return Err(DurableError::SequenceGap {
                            expected: last.seq() + 1,
                            got: decoded.seq,
                        });
                    }
                }
                let record = CheckpointRecord::from_parts(
                    decoded.seq,
                    decoded.kind,
                    decoded.roots,
                    payload,
                    TraversalStats::default(),
                );
                store.seqs.push(decoded.seq);
                if manifest.generation == 0 {
                    recovered.push(record)?;
                } else {
                    recovered.push_merged(record)?;
                }
                offset = body_at + len;
            }
        }

        if recovered.len() as u64 != manifest.record_count {
            return Err(DurableError::Corrupt {
                file: MANIFEST.to_string(),
                offset: 0,
                what: format!(
                    "manifest claims {} records but segments hold {}",
                    manifest.record_count,
                    recovered.len()
                ),
            });
        }
        if recovered.latest().map(CheckpointRecord::seq) != manifest.last_seq {
            return Err(DurableError::Corrupt {
                file: MANIFEST.to_string(),
                offset: 0,
                what: "manifest last-seq does not match the recovered records".into(),
            });
        }
        if (store.chunks.count(), store.chunks.digest())
            != (manifest.chunk_count, manifest.chunk_digest)
        {
            return Err(DurableError::Corrupt {
                file: MANIFEST.to_string(),
                offset: 0,
                what: format!(
                    "manifest chunk summary ({}, {:#x}) does not match the rebuilt index \
                     ({}, {:#x})",
                    manifest.chunk_count,
                    manifest.chunk_digest,
                    store.chunks.count(),
                    store.chunks.digest()
                ),
            });
        }
        for (label, seq) in &manifest.tags {
            if store.seqs.binary_search(seq).is_err() {
                return Err(DurableError::Corrupt {
                    file: MANIFEST.to_string(),
                    offset: 0,
                    what: format!("tag {label:?} points at seq {seq}, which holds no record"),
                });
            }
        }

        store.next_segment_index = manifest.segments.iter().map(|s| s.index + 1).max().unwrap_or(0);
        store.manifest = manifest;
        Ok((store, recovered))
    }

    /// Durably appends one checkpoint record.
    ///
    /// On `Ok`, the record and everything before it survive any crash.
    /// On `Err`, the record is *not* acknowledged; the store stays usable
    /// (if the filesystem does) and the next append self-heals any torn
    /// tail the failure left behind.
    ///
    /// # Errors
    ///
    /// [`DurableError::SequenceGap`] if `record` does not extend the
    /// sequence, or [`DurableError::Fs`] on I/O failure.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<(), DurableError> {
        self.append_deduped(record, &[]).map(|_| ())
    }

    /// Durably appends one checkpoint record, deduplicating the given
    /// chunks of its payload against the store's content-hash index.
    ///
    /// `chunk_ranges` names the dedup-candidate slices of
    /// `record.bytes()` — in practice the object records that
    /// [`ickp_core::object_slices`] reports, which re-encode
    /// byte-identically whenever the underlying objects are unchanged.
    /// Chunks whose bytes already live in the store are written as
    /// references; the rest enter the index for later appends. Passing
    /// no ranges makes this exactly [`DurableStore::append`].
    ///
    /// The returned [`DedupStats`] accounts this write; acknowledged
    /// durability is identical to `append` (same I/O sequence, same
    /// manifest commit point).
    ///
    /// # Errors
    ///
    /// As [`DurableStore::append`]. On error nothing is acknowledged and
    /// no chunk enters the index.
    ///
    /// # Panics
    ///
    /// If `chunk_ranges` is not ascending, non-overlapping and within
    /// `record.bytes()`.
    pub fn append_deduped(
        &mut self,
        record: &CheckpointRecord,
        chunk_ranges: &[Range<usize>],
    ) -> Result<DedupStats, DurableError> {
        self.append_batch_inner(std::slice::from_ref(record), &[chunk_ranges])
    }

    /// Durably appends a batch of checkpoint records under **one group
    /// commit**: every frame is appended, each touched segment is fsynced
    /// once, and a single manifest swap acknowledges the whole batch
    /// atomically. On `Ok` every record in the batch survives any crash;
    /// on `Err` *none* of them is acknowledged — a crash mid-batch can
    /// never surface part of it (recovery truncates the torn frames back
    /// to the old frontier).
    ///
    /// A batch of `n` records in one segment costs 3 fsyncs where `n`
    /// single appends cost `3n`; see [`DurableStore::io_stats`].
    ///
    /// # Errors
    ///
    /// [`DurableError::SequenceGap`] if the records do not extend the
    /// store's sequence contiguously (each must be its predecessor's
    /// sequence number plus one), or [`DurableError::Fs`] on I/O failure.
    pub fn append_batch(
        &mut self,
        records: &[CheckpointRecord],
    ) -> Result<DedupStats, DurableError> {
        let layouts: Vec<&[Range<usize>]> = vec![&[]; records.len()];
        self.append_batch_inner(records, &layouts)
    }

    /// [`DurableStore::append_batch`] with dedup: `layouts` gives each
    /// record's chunk ranges, as [`DurableStore::append_deduped`] takes
    /// for a single record. Within the batch, later records also dedup
    /// against the chunks staged by earlier records of the *same* batch —
    /// safe because the single manifest swap commits them together, so a
    /// back-reference can never cross an un-acknowledged batch boundary.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::append_batch`]. On error nothing is
    /// acknowledged and no chunk enters the index.
    ///
    /// # Panics
    ///
    /// If `layouts.len() != records.len()` or a range set is invalid
    /// (see [`DurableStore::append_deduped`]).
    pub fn append_batch_deduped(
        &mut self,
        records: &[CheckpointRecord],
        layouts: &[Vec<Range<usize>>],
    ) -> Result<DedupStats, DurableError> {
        assert_eq!(records.len(), layouts.len(), "one chunk layout per record");
        let layouts: Vec<&[Range<usize>]> = layouts.iter().map(Vec::as_slice).collect();
        self.append_batch_inner(records, &layouts)
    }

    fn append_batch_inner(
        &mut self,
        records: &[CheckpointRecord],
        layouts: &[&[Range<usize>]],
    ) -> Result<DedupStats, DurableError> {
        if records.is_empty() {
            return Ok(DedupStats::default());
        }
        let mut expected = self.manifest.last_seq.map(|last| last + 1);
        for record in records {
            if let Some(expected) = expected {
                if record.seq() != expected {
                    return Err(DurableError::SequenceGap { expected, got: record.seq() });
                }
            }
            expected = Some(record.seq() + 1);
        }
        match self.try_append_batch(records, layouts) {
            Ok(stats) => Ok(stats),
            Err(e) => {
                self.tail_dirty = true;
                Err(e)
            }
        }
    }

    fn try_append_batch(
        &mut self,
        records: &[CheckpointRecord],
        layouts: &[&[Range<usize>]],
    ) -> Result<DedupStats, DurableError> {
        if self.tail_dirty {
            // A previous append failed partway; the tail segment may hold
            // bytes past the committed frontier. Cut them before writing.
            if let Some(seg) = self.manifest.segments.last() {
                let name = segment_name(seg.index);
                if self.fs.exists(&name) {
                    self.fs.truncate(&name, seg.committed_len)?;
                }
            }
            self.tail_dirty = false;
        }

        let mut candidate = self.manifest.clone();
        let mut staged_all: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut stats = DedupStats::default();
        let mut touched: Vec<u32> = Vec::new();
        {
            let DurableStore {
                ref mut fs,
                ref config,
                ref chunks,
                ref mut next_segment_index,
                ref mut io,
                ..
            } = *self;
            if let [record] = records {
                // A batch of one encodes inline: nothing to overlap.
                let encoded = chunks.encode(record.bytes(), layouts[0]);
                let frame = encode_frame(&encoded.stored);
                place_frame(
                    fs,
                    config,
                    &mut candidate,
                    next_segment_index,
                    &mut touched,
                    io,
                    &frame,
                )?;
                staged_all = encoded.staged;
                stats = encoded.stats;
            } else {
                // Pipeline: a scoped worker encodes frame k+1 while this
                // thread writes frame k. The channel preserves record
                // order, so the VFS sees the exact operation sequence a
                // sequential encoder would produce.
                std::thread::scope(|scope| -> Result<(), DurableError> {
                    let (tx, rx) = std::sync::mpsc::channel();
                    scope.spawn(move || {
                        let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
                        for (record, ranges) in records.iter().zip(layouts) {
                            let encoded = chunks.encode_batched(record.bytes(), ranges, &pending);
                            let frame = encode_frame(&encoded.stored);
                            pending.extend(encoded.staged.iter().cloned());
                            if tx.send((frame, encoded.staged, encoded.stats)).is_err() {
                                return; // the writer bailed on an I/O error
                            }
                        }
                    });
                    for (frame, staged, frame_stats) in rx {
                        place_frame(
                            fs,
                            config,
                            &mut candidate,
                            next_segment_index,
                            &mut touched,
                            io,
                            &frame,
                        )?;
                        staged_all.extend(staged);
                        stats.absorb(frame_stats);
                    }
                    Ok(())
                })?;
            }
            // One fsync per touched segment — the group-commit saving.
            for index in &touched {
                fs.sync(&segment_name(*index))?;
                io.file_syncs += 1;
            }
        }

        candidate.record_count += records.len() as u64;
        candidate.last_seq = Some(records.last().expect("non-empty batch").seq());
        candidate.chunk_count += staged_all.len() as u64;
        candidate.chunk_digest =
            staged_all.iter().fold(candidate.chunk_digest, |d, (h, _)| d.wrapping_add(*h));
        self.swap_manifest(candidate)?;
        // The manifest swap acknowledged the batch: only now may its
        // chunks serve as dedup targets for later appends.
        self.chunks.commit(staged_all);
        self.seqs.extend(records.iter().map(CheckpointRecord::seq));
        Ok(stats)
    }

    /// Atomically publishes `candidate` as the committed frontier:
    /// write-temp, fsync, rename over `MANIFEST`, fsync the directory.
    fn swap_manifest(&mut self, candidate: Manifest) -> Result<(), DurableError> {
        self.fs.write_file(MANIFEST_TMP, &candidate.encode())?;
        self.fs.sync(MANIFEST_TMP)?;
        self.fs.rename(MANIFEST_TMP, MANIFEST)?;
        self.fs.sync_dir()?;
        self.io.file_syncs += 1;
        self.io.dir_syncs += 1;
        self.io.renames += 1;
        self.io.manifest_swaps += 1;
        self.manifest = candidate;
        Ok(())
    }

    /// Deletes every file in the directory (used before initializing a
    /// fresh store: with no manifest, nothing is acknowledged).
    fn clear_directory(&mut self) -> Result<(), DurableError> {
        let names = self.fs.list()?;
        let removed = !names.is_empty();
        for name in names {
            self.fs.remove(&name)?;
        }
        if removed {
            self.fs.sync_dir()?;
            self.io.dir_syncs += 1;
        }
        Ok(())
    }

    /// Durably tags the checkpoint with sequence number `seq` as a named
    /// restore point. An existing tag with the same label moves to the
    /// new sequence number. The tag lands with one atomic manifest swap:
    /// a crash leaves either the old or the new tag set, never a mix.
    ///
    /// # Errors
    ///
    /// [`DurableError::UnknownSeq`] if no acknowledged record carries
    /// `seq`, or [`DurableError::Fs`] on I/O failure.
    pub fn tag(&mut self, label: &str, seq: u64) -> Result<(), DurableError> {
        if self.seqs.binary_search(&seq).is_err() {
            return Err(DurableError::UnknownSeq(seq));
        }
        let mut candidate = self.manifest.clone();
        match candidate.tags.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => candidate.tags[i].1 = seq,
            Err(i) => candidate.tags.insert(i, (label.to_string(), seq)),
        }
        self.swap_manifest(candidate)
    }

    /// Durably removes a named restore point (one atomic manifest swap).
    ///
    /// # Errors
    ///
    /// [`DurableError::UnknownTag`] if no tag carries `label`, or
    /// [`DurableError::Fs`] on I/O failure.
    pub fn remove_tag(&mut self, label: &str) -> Result<(), DurableError> {
        let mut candidate = self.manifest.clone();
        match candidate.tags.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => {
                candidate.tags.remove(i);
            }
            Err(_) => return Err(DurableError::UnknownTag(label.to_string())),
        }
        self.swap_manifest(candidate)
    }

    /// The named restore points, as `(label, seq)` sorted by label.
    pub fn tags(&self) -> &[(String, u64)] {
        &self.manifest.tags
    }

    /// Replaces the entire committed content with `records` — the
    /// lifecycle layer's primitive for retention merges and `reset_to`
    /// rollbacks.
    ///
    /// `layouts` gives each record's dedup chunk ranges (one entry per
    /// record; empty ranges disable dedup for that record), and `tags`
    /// becomes the new tag set. New segments are written under fresh
    /// indices, fsynced, and then a single manifest swap makes them — and
    /// the new tags, generation, and chunk index — current all at once.
    /// The old segments are deleted only after the swap; a crash anywhere
    /// leaves either the old store or the new one (plus unreferenced
    /// files the next open removes), never a mix.
    ///
    /// Bumps the retention generation, which relaxes the recovery-time
    /// sequence check to "strictly increasing" (merged records keep the
    /// *last* sequence number of their group, leaving gaps).
    ///
    /// # Errors
    ///
    /// * [`DurableError::SequenceGap`] if `records` is not strictly
    ///   increasing in sequence number.
    /// * [`DurableError::UnknownSeq`] if a tag references a sequence
    ///   number not in `records`.
    /// * [`DurableError::Fs`] on I/O failure. Before the manifest swap
    ///   the store is unchanged; after it the rewrite is committed even
    ///   if cleanup of the old segments errors.
    ///
    /// # Panics
    ///
    /// If `layouts.len() != records.len()` or a range set is invalid
    /// (see [`DurableStore::append_deduped`]).
    pub fn rewrite(
        &mut self,
        records: &[CheckpointRecord],
        layouts: &[Vec<Range<usize>>],
        tags: &[(String, u64)],
    ) -> Result<DedupStats, DurableError> {
        assert_eq!(records.len(), layouts.len(), "one chunk layout per record");
        let mut seqs = Vec::with_capacity(records.len());
        for r in records {
            if seqs.last().is_some_and(|&last| r.seq() <= last) {
                return Err(DurableError::SequenceGap {
                    expected: seqs.last().copied().unwrap_or(0) + 1,
                    got: r.seq(),
                });
            }
            seqs.push(r.seq());
        }
        let mut new_tags = tags.to_vec();
        new_tags.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, seq) in &new_tags {
            if seqs.binary_search(seq).is_err() {
                return Err(DurableError::UnknownSeq(*seq));
            }
        }

        // Stage everything against a fresh index, then write the new
        // segments under indices no live file uses.
        let mut staged = ChunkIndex::new();
        let mut stats = DedupStats::default();
        let mut segments: Vec<(SegmentEntry, Vec<u8>)> = Vec::new();
        for (record, ranges) in records.iter().zip(layouts) {
            let encoded = staged.encode(record.bytes(), ranges);
            staged.commit(encoded.staged);
            stats.absorb(encoded.stats);
            let frame = encode_frame(&encoded.stored);
            let roll = match segments.last() {
                None => true,
                Some((entry, _)) => entry.committed_len >= self.config.segment_target_bytes,
            };
            if roll {
                let index = self.next_segment_index;
                self.next_segment_index += 1;
                segments.push((SegmentEntry { index, committed_len: 0 }, segment_header(index)));
            }
            let (entry, bytes) = segments.last_mut().expect("rolled above");
            bytes.extend_from_slice(&frame);
            entry.committed_len = bytes.len() as u64;
        }
        for (entry, bytes) in &segments {
            let name = segment_name(entry.index);
            self.fs.write_file(&name, bytes)?;
            self.fs.sync(&name)?;
            self.io.file_syncs += 1;
        }
        self.io.frames_written += records.len() as u64;

        let old_segments = self.manifest.segments.clone();
        let candidate = Manifest {
            record_count: records.len() as u64,
            last_seq: seqs.last().copied(),
            segments: segments.iter().map(|(entry, _)| *entry).collect(),
            generation: self.manifest.generation + 1,
            tags: new_tags,
            chunk_count: staged.count(),
            chunk_digest: staged.digest(),
        };
        self.swap_manifest(candidate)?;
        // Committed: adopt the new in-memory state before cleanup so an
        // error below cannot strand the store mid-transition.
        self.chunks = staged;
        self.seqs = seqs;
        self.tail_dirty = false;
        let mut removed = false;
        for seg in &old_segments {
            let name = segment_name(seg.index);
            if self.fs.exists(&name) {
                self.fs.remove(&name)?;
                removed = true;
            }
        }
        if removed {
            self.fs.sync_dir()?;
            self.io.dir_syncs += 1;
        }
        Ok(stats)
    }

    /// Number of acknowledged records.
    pub fn record_count(&self) -> u64 {
        self.manifest.record_count
    }

    /// Sequence number of the last acknowledged record.
    pub fn last_seq(&self) -> Option<u64> {
        self.manifest.last_seq
    }

    /// Number of segments in the committed frontier.
    pub fn segment_count(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Total acknowledged bytes across all segments (headers included).
    pub fn committed_bytes(&self) -> u64 {
        self.manifest.segments.iter().map(|s| s.committed_len).sum()
    }

    /// Retention generation: zero until the first
    /// [`DurableStore::rewrite`], bumped by each one.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Number of chunks in the content-hash dedup index.
    pub fn chunk_count(&self) -> u64 {
        self.chunks.count()
    }

    /// Sequence numbers of the acknowledged records, ascending.
    pub fn seqs(&self) -> &[u64] {
        &self.seqs
    }

    /// I/O accounting since this handle was created or opened — the
    /// counters behind the `group_commit` bench's records-per-fsync
    /// measurement.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Consumes the store, returning the filesystem handle.
    pub fn into_fs(self) -> F {
        self.fs
    }
}

/// Lets checkpoint producers ([`Checkpointer`](ickp_core::Checkpointer),
/// the parallel backend's `checkpoint_into`) stream records straight to
/// stable storage. Failures surface as [`CoreError::Storage`].
impl<F: Vfs> RecordSink for DurableStore<F> {
    fn append_record(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        self.append(&record).map_err(|e| CoreError::Storage { what: e.to_string() })
    }

    /// Group commit: the whole batch lands under one segment fsync per
    /// touched segment and a single manifest swap, instead of the
    /// default record-at-a-time loop.
    fn append_records(&mut self, records: Vec<CheckpointRecord>) -> Result<(), CoreError> {
        DurableStore::append_batch(self, &records)
            .map(|_| ())
            .map_err(|e| CoreError::Storage { what: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;
    use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    use ickp_heap::{FieldType, Heap, ObjectId, Value};

    fn workload(n: usize) -> (Heap, Vec<ObjectId>, Vec<CheckpointRecord>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut records = Vec::new();
        for i in 0..n {
            heap.set_field(tail, 0, Value::Int(i as i32)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap());
        }
        (heap, vec![head], records)
    }

    fn tiny() -> DurableConfig {
        // Force a segment roll on nearly every append.
        DurableConfig { segment_target_bytes: 64 }
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let (heap, _, records) = workload(5);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        assert_eq!(store.record_count(), 5);
        assert_eq!(store.last_seq(), Some(4));
        drop(store);

        let (reopened, recovered) =
            DurableStore::open(&mut fs, DurableConfig::default(), heap.registry()).unwrap();
        assert_eq!(reopened.record_count(), 5);
        assert_eq!(recovered.len(), 5);
        for (a, b) in records.iter().zip(recovered.records()) {
            assert_eq!(a.seq(), b.seq());
            assert_eq!(a.bytes(), b.bytes());
        }
    }

    #[test]
    fn small_target_rolls_segments() {
        let (heap, _, records) = workload(6);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, tiny()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        assert!(store.segment_count() > 1, "expected rolls, got one segment");
        drop(store);
        let (_, recovered) = DurableStore::open(&mut fs, tiny(), heap.registry()).unwrap();
        assert_eq!(recovered.len(), 6);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let mut fs = MemFs::new();
        DurableStore::create(&mut fs, tiny()).unwrap();
        assert!(matches!(DurableStore::create(&mut fs, tiny()), Err(DurableError::AlreadyExists)));
    }

    #[test]
    fn open_without_manifest_clears_leftovers() {
        let reg = ClassRegistry::new();
        let mut fs = MemFs::new();
        fs.write_file("seg-000000.ickd", b"debris").unwrap();
        fs.write_file("MANIFEST.tmp", b"more debris").unwrap();
        let (store, recovered) = DurableStore::open(&mut fs, tiny(), &reg).unwrap();
        assert_eq!(recovered.len(), 0);
        assert_eq!(store.record_count(), 0);
        drop(store);
        assert!(!fs.exists("seg-000000.ickd"));
        assert!(!fs.exists("MANIFEST.tmp"));
        assert!(fs.exists(MANIFEST));
    }

    #[test]
    fn sequence_gaps_are_rejected_at_append() {
        let (_, _, records) = workload(3);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, tiny()).unwrap();
        store.append(&records[0]).unwrap();
        let err = store.append(&records[2]).unwrap_err();
        assert_eq!(err, DurableError::SequenceGap { expected: 1, got: 2 });
    }

    #[test]
    fn corruption_inside_the_frontier_is_a_hard_error() {
        let (heap, _, records) = workload(3);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        drop(store);
        // Flip one byte in the middle of the (single) segment.
        let name = segment_name(0);
        let mut content = fs.read(&name).unwrap();
        let mid = content.len() / 2;
        content[mid] ^= 0xFF;
        fs.write_file(&name, &content).unwrap();
        let err = match DurableStore::open(&mut fs, DurableConfig::default(), heap.registry()) {
            Ok(_) => panic!("corruption must not open"),
            Err(e) => e,
        };
        assert!(
            matches!(err, DurableError::Corrupt { .. } | DurableError::Core(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn bytes_past_the_frontier_are_truncated_on_open() {
        let (heap, _, records) = workload(2);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        let committed = store.committed_bytes();
        drop(store);
        // Simulate a torn tail: garbage after the committed frontier.
        fs.append(&segment_name(0), &[0xDE, 0xAD, 0xBE]).unwrap();
        let (reopened, recovered) =
            DurableStore::open(&mut fs, DurableConfig::default(), heap.registry()).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(reopened.committed_bytes(), committed);
        drop(reopened);
        assert_eq!(fs.read(&segment_name(0)).unwrap().len() as u64, committed);
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let m = Manifest {
            record_count: 7,
            last_seq: Some(6),
            segments: vec![
                SegmentEntry { index: 0, committed_len: 1234 },
                SegmentEntry { index: 1, committed_len: 56 },
            ],
            generation: 3,
            tags: vec![("alpha".into(), 2), ("beta".into(), 6)],
            chunk_count: 42,
            chunk_digest: 0xDEAD_BEEF_1234_5678,
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} undetected");
        }
        assert_eq!(Manifest::decode(&Manifest::default().encode()).unwrap(), Manifest::default());
    }

    #[test]
    fn tags_survive_reopen_and_validate_their_seq() {
        let (heap, _, records) = workload(3);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        assert_eq!(store.tag("missing", 9).unwrap_err(), DurableError::UnknownSeq(9));
        store.tag("base", 0).unwrap();
        store.tag("tip", 2).unwrap();
        store.tag("tip", 1).unwrap(); // moving a tag is an upsert
        assert_eq!(store.remove_tag("nope").unwrap_err(), DurableError::UnknownTag("nope".into()));
        drop(store);

        let (mut reopened, _) =
            DurableStore::open(&mut fs, DurableConfig::default(), heap.registry()).unwrap();
        assert_eq!(reopened.tags(), &[("base".to_string(), 0), ("tip".to_string(), 1)]);
        reopened.remove_tag("base").unwrap();
        assert_eq!(reopened.tags(), &[("tip".to_string(), 1)]);
    }

    #[test]
    fn deduped_appends_shrink_the_store_and_recover_byte_identical() {
        use ickp_core::object_slices;
        // A workload whose *head* record recurs byte-identically: each
        // round touches the head with the same value (so it is recorded)
        // while the tail actually changes. The padding longs make the
        // records large enough that a 13-byte reference is a clear win.
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[
                    ("v", FieldType::Int),
                    ("next", FieldType::Ref(None)),
                    ("p0", FieldType::Long),
                    ("p1", FieldType::Long),
                    ("p2", FieldType::Long),
                    ("p3", FieldType::Long),
                    ("p4", FieldType::Long),
                    ("p5", FieldType::Long),
                ],
            )
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut records = Vec::new();
        for i in 0..4 {
            heap.set_field(head, 0, Value::Int(7)).unwrap();
            heap.set_field(tail, 0, Value::Int(i)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap());
        }
        let registry = heap.registry();

        // Reference: plain appends.
        let mut plain_fs = MemFs::new();
        let mut plain = DurableStore::create(&mut plain_fs, DurableConfig::default()).unwrap();
        for r in &records {
            plain.append(r).unwrap();
        }
        let plain_bytes = plain.committed_bytes();

        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, DurableConfig::default()).unwrap();
        let mut saved = 0;
        for r in &records {
            let layout = object_slices(r.bytes(), registry).unwrap();
            let stats = store.append_deduped(r, &layout.objects).unwrap();
            saved += stats.bytes_saved();
        }
        assert!(saved > 0, "identical head records must dedup");
        assert!(store.committed_bytes() < plain_bytes);
        assert!(store.chunk_count() > 0);
        drop(store);

        let (_, recovered) =
            DurableStore::open(&mut fs, DurableConfig::default(), registry).unwrap();
        assert_eq!(recovered.len(), records.len());
        for (a, b) in records.iter().zip(recovered.records()) {
            assert_eq!(a.bytes(), b.bytes(), "dedup must be invisible after recovery");
        }
    }

    #[test]
    fn rewrite_replaces_content_atomically_and_reopens() {
        let (heap, _, records) = workload(5);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, tiny()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        store.tag("keep", 4).unwrap();

        // Retain records 0, 3, 4 (a post-merge shape: gaps allowed).
        let kept: Vec<CheckpointRecord> =
            [0usize, 3, 4].iter().map(|&i| records[i].clone()).collect();
        let layouts = vec![Vec::new(); kept.len()];
        let err = store.rewrite(&kept, &layouts, &[("keep".into(), 2)]).unwrap_err();
        assert_eq!(err, DurableError::UnknownSeq(2));
        store.rewrite(&kept, &layouts, &[("keep".into(), 4)]).unwrap();
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.seqs(), &[0, 3, 4]);
        drop(store);

        let (reopened, recovered) = DurableStore::open(&mut fs, tiny(), heap.registry()).unwrap();
        assert_eq!(reopened.generation(), 1);
        assert_eq!(reopened.tags(), &[("keep".to_string(), 4)]);
        let seqs: Vec<u64> = recovered.records().iter().map(CheckpointRecord::seq).collect();
        assert_eq!(seqs, vec![0, 3, 4]);
        for (a, b) in kept.iter().zip(recovered.records()) {
            assert_eq!(a.bytes(), b.bytes());
        }
        // And the store still extends normally after a rewrite.
        drop(reopened);
        let mut fs2 = fs;
        let (mut again, _) = DurableStore::open(&mut fs2, tiny(), heap.registry()).unwrap();
        let err = again.append(&records[3]).unwrap_err();
        assert_eq!(err, DurableError::SequenceGap { expected: 5, got: 3 });
    }

    #[test]
    fn rewrite_rejects_unordered_records() {
        let (_, _, records) = workload(3);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, tiny()).unwrap();
        let shuffled = vec![records[1].clone(), records[0].clone()];
        let err = store.rewrite(&shuffled, &[Vec::new(), Vec::new()], &[]).unwrap_err();
        assert_eq!(err, DurableError::SequenceGap { expected: 2, got: 0 });
    }

    #[test]
    fn record_sink_streams_into_the_store() {
        let (heap, _, records) = workload(3);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, tiny()).unwrap();
        for r in records {
            RecordSink::append_record(&mut store, r).unwrap();
        }
        drop(store);
        let (_, recovered) = DurableStore::open(&mut fs, tiny(), heap.registry()).unwrap();
        assert_eq!(recovered.len(), 3);
    }
}
