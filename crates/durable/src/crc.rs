//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! The durable store frames every record and every manifest with this
//! checksum, so corruption inside the acknowledged region is *detected*
//! (a hard error) rather than silently restored, while garbage past the
//! committed frontier is *recognized* as a torn tail and truncated. The
//! workspace builds with no external dependencies, hence the local
//! implementation; the constants match every other IEEE CRC-32 in the
//! wild, so segments are checkable with standard tools.

/// One lazily-built lookup table; 256 × 4 bytes, computed on first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// The IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"incremental checkpointing".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
