//! # ickp-durable — crash-safe stable storage for checkpoints
//!
//! The paper's recovery story assumes checkpoints reach *stable
//! storage*; this crate makes that assumption hold on a real filesystem,
//! and proves it. It has three layers:
//!
//! * **[`DurableStore`]** — a segmented, append-only on-disk checkpoint
//!   store: CRC-framed records in numbered segment files, a
//!   CRC-protected manifest naming the committed frontier, atomic
//!   manifest swaps (write-temp + fsync + rename + directory fsync), and
//!   recovery that truncates torn tails while hard-erroring on real
//!   corruption. See [`store`] for the format and protocol.
//! * **[`Vfs`]** — the filesystem seam. [`StdFs`] is a real directory;
//!   [`MemFs`] is a deterministic in-memory filesystem with an explicit
//!   durable/volatile split, and [`FailFs`] wraps it with
//!   index-addressed fault injection ([`FaultPlan`]): crash or fail any
//!   single mutating I/O operation.
//! * **[`enumerate_crash_points`]** — the harness that replays a
//!   workload with a simulated crash at *every* I/O operation and checks
//!   that recovery yields exactly the acknowledged prefix,
//!   byte-identical and restorable.
//!
//! The store implements [`RecordSink`](ickp_core::RecordSink), so any
//! checkpoint producer can stream records straight to disk.
//!
//! ## Example
//!
//! ```
//! use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
//! use ickp_durable::{DurableConfig, DurableStore, MemFs};
//! use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let c = reg.define("C", None, &[("v", FieldType::Int)])?;
//! let mut heap = Heap::new(reg);
//! let o = heap.alloc(c)?;
//! let table = MethodTable::derive(heap.registry());
//! let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
//!
//! let mut fs = MemFs::new();
//! let mut store = DurableStore::create(&mut fs, DurableConfig::default())?;
//! store.append(&ckp.checkpoint(&mut heap, &table, &[o])?)?;
//! heap.set_field(o, 0, Value::Int(7))?;
//! store.append(&ckp.checkpoint(&mut heap, &table, &[o])?)?;
//! drop(store);
//!
//! // A later process recovers both checkpoints from the same directory.
//! let (reopened, recovered) =
//!     DurableStore::open(&mut fs, DurableConfig::default(), heap.registry())?;
//! assert_eq!(recovered.len(), 2);
//! assert_eq!(reopened.last_seq(), Some(1));
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod crc;
pub mod dedup;
mod error;
mod fail;
mod harness;
pub mod store;
pub mod trace;
mod vfs;

pub use crc::crc32;
pub use dedup::{content_hash, DedupStats};
pub use error::DurableError;
pub use fail::{FailFs, FaultPlan, OpCounter};
pub use harness::{
    enumerate_crash_points, enumerate_crash_points_driven, enumerate_crash_points_driven_with,
    enumerate_crash_points_with, redirty_record, CrashMatrixError, CrashMatrixReport,
    MatrixOptions,
};
pub use store::{segment_name, DurableConfig, DurableStore, IoStats, FORMAT_VERSION, MANIFEST};
pub use trace::{
    crash_classes, CrashClass, OpTrace, TraceEvent, TraceLog, TraceNode, TraceOp, TraceVfs,
};
pub use vfs::{FsError, MemFs, StdFs, Vfs};
