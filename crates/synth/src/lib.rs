//! # ickp-synth — the paper's synthetic benchmark
//!
//! Reproduces the workload of *Lawall & Muller (DSN 2000)*, §5: a set of
//! compound structures (20 000 in the paper), each holding a fixed number
//! of singly linked lists (5 in the paper), where the experiment controls
//!
//! * the **length** of the lists (1 or 5),
//! * the number of **integer fields** in each element (1 or 10 — the cost
//!   of recording a modified object),
//! * which **lists may contain modified objects** (1, 3 or 5 of them),
//! * whether modified objects can appear **only at the last position**,
//! * and the **percentage** of possibly-modified objects actually modified
//!   (100 %, 50 %, 25 %).
//!
//! [`SynthWorld::build`] materializes the structures in an `ickp-heap`;
//! [`SynthWorld::apply_modifications`] performs real barriered writes per
//! checkpoint round; and the `shape_*` methods produce the specialization
//! declarations corresponding to each of the paper's Figures 8–11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, HeapError, ObjectId, Value};
use ickp_prng::Prng;
use ickp_spec::{ListPattern, NodePattern, SpecShape};

/// Static dimensions of the synthetic structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of compound structures (paper: 20 000).
    pub structures: usize,
    /// Linked lists per structure (paper: 5).
    pub lists_per_structure: usize,
    /// Elements per list (paper: 1 or 5).
    pub list_len: usize,
    /// `int` fields per element (paper: 1 or 10).
    pub ints_per_element: usize,
    /// RNG seed for modification rounds.
    pub seed: u64,
}

impl SynthConfig {
    /// The paper's full-scale configuration: 20 000 structures × 5 lists.
    pub fn paper(list_len: usize, ints_per_element: usize) -> SynthConfig {
        SynthConfig {
            structures: 20_000,
            lists_per_structure: 5,
            list_len,
            ints_per_element,
            seed: 0x1c4b_c05e ^ ((list_len as u64) << 8) ^ ints_per_element as u64,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> SynthConfig {
        SynthConfig {
            structures: 50,
            lists_per_structure: 5,
            list_len: 5,
            ints_per_element: 1,
            seed: 7,
        }
    }
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig::paper(5, 1)
    }
}

/// Which objects a modification round may dirty, and how many it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModificationSpec {
    /// Percentage (0–100) of possibly-modified objects actually modified.
    pub pct_modified: u8,
    /// How many of each structure's lists may contain modified objects
    /// (the paper's "modified lists" axis; the first `k` lists).
    pub modified_lists: usize,
    /// Restrict modifications to the last element of each eligible list
    /// (the paper's Figure 10/11 position constraint).
    pub last_only: bool,
}

impl ModificationSpec {
    /// All lists eligible, every element a candidate.
    pub fn uniform(pct_modified: u8) -> ModificationSpec {
        ModificationSpec { pct_modified, modified_lists: usize::MAX, last_only: false }
    }
}

/// The materialized synthetic benchmark world.
#[derive(Debug)]
pub struct SynthWorld {
    heap: Heap,
    config: SynthConfig,
    holder_class: ClassId,
    elem_class: ClassId,
    next_slot: usize,
    roots: Vec<ObjectId>,
    /// `elements[s][l][p]` = element at position `p` of list `l` of
    /// structure `s`.
    elements: Vec<Vec<Vec<ObjectId>>>,
    round: i32,
}

impl SynthWorld {
    /// Builds the world: defines the `Structure`/`Elem` classes and
    /// allocates every object, leaving all modified flags **clear** (as
    /// after an initial checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `list_len` or `lists_per_structure` is zero.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn build(config: SynthConfig) -> Result<SynthWorld, HeapError> {
        assert!(config.list_len > 0, "list_len must be positive");
        assert!(config.lists_per_structure > 0, "need at least one list");
        let mut registry = ClassRegistry::new();

        let int_names: Vec<String> =
            (0..config.ints_per_element).map(|i| format!("v{i}")).collect();
        let mut elem_fields: Vec<(&str, FieldType)> =
            int_names.iter().map(|n| (n.as_str(), FieldType::Int)).collect();
        elem_fields.push(("next", FieldType::Ref(None)));
        let elem_class = registry.define("Elem", None, &elem_fields)?;
        let next_slot = config.ints_per_element;

        let list_names: Vec<String> =
            (0..config.lists_per_structure).map(|i| format!("l{i}")).collect();
        let holder_fields: Vec<(&str, FieldType)> =
            list_names.iter().map(|n| (n.as_str(), FieldType::Ref(Some(elem_class)))).collect();
        let holder_class = registry.define("Structure", None, &holder_fields)?;

        let mut heap = Heap::new(registry);
        let mut roots = Vec::with_capacity(config.structures);
        let mut elements = Vec::with_capacity(config.structures);
        for _ in 0..config.structures {
            let mut lists = Vec::with_capacity(config.lists_per_structure);
            let holder = heap.alloc(holder_class)?;
            for l in 0..config.lists_per_structure {
                let mut ids = Vec::with_capacity(config.list_len);
                let mut next: Option<ObjectId> = None;
                for _ in 0..config.list_len {
                    let e = heap.alloc(elem_class)?;
                    heap.set_field(e, next_slot, Value::Ref(next))?;
                    next = Some(e);
                    ids.push(e);
                }
                ids.reverse(); // position 0 = head
                heap.set_field(holder, l, Value::Ref(Some(ids[0])))?;
                lists.push(ids);
            }
            roots.push(holder);
            elements.push(lists);
        }
        heap.reset_all_modified();
        Ok(SynthWorld {
            heap,
            config,
            holder_class,
            elem_class,
            next_slot,
            roots,
            elements,
            round: 0,
        })
    }

    /// The heap holding the structures.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the heap (checkpointers need `&mut`).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The build configuration.
    pub fn config(&self) -> SynthConfig {
        self.config
    }

    /// The structure roots, one per compound structure.
    pub fn roots(&self) -> &[ObjectId] {
        &self.roots
    }

    /// The class of the compound structures.
    pub fn holder_class(&self) -> ClassId {
        self.holder_class
    }

    /// The class of the list elements.
    pub fn elem_class(&self) -> ClassId {
        self.elem_class
    }

    /// The slot of the `next` reference in an element.
    pub fn next_slot(&self) -> usize {
        self.next_slot
    }

    /// The element at `(structure, list, position)`.
    pub fn element(&self, structure: usize, list: usize, position: usize) -> ObjectId {
        self.elements[structure][list][position]
    }

    /// Total live objects (structures + elements).
    pub fn object_count(&self) -> usize {
        self.config.structures * (1 + self.config.lists_per_structure * self.config.list_len)
    }

    /// Clears every modified flag (simulating a completed checkpoint).
    pub fn reset_modified(&mut self) {
        self.heap.reset_all_modified();
    }

    /// Performs one modification round: real barriered writes to the first
    /// int field of randomly chosen eligible elements.
    ///
    /// Eligibility follows `spec`: elements of the first
    /// `spec.modified_lists` lists, restricted to the last position when
    /// `spec.last_only`; each eligible element is dirtied with probability
    /// `spec.pct_modified`/100. Returns the number of objects modified.
    ///
    /// A fresh deterministic RNG is derived from the config seed and the
    /// round number, so runs are reproducible.
    pub fn apply_modifications(&mut self, spec: &ModificationSpec) -> usize {
        self.round += 1;
        let mut rng = Prng::seed_from_u64(
            self.config.seed ^ (self.round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let k = spec.modified_lists.min(self.config.lists_per_structure);
        let first_pos = if spec.last_only { self.config.list_len - 1 } else { 0 };
        let mut modified = 0usize;
        for s in 0..self.config.structures {
            for l in 0..k {
                for p in first_pos..self.config.list_len {
                    if spec.pct_modified >= 100 || rng.ratio(spec.pct_modified as u32, 100) {
                        let e = self.elements[s][l][p];
                        self.heap
                            .set_field(e, 0, Value::Int(self.round))
                            .expect("element field write");
                        modified += 1;
                    }
                }
            }
        }
        modified
    }

    fn list_shape(&self, pattern: ListPattern) -> SpecShape {
        SpecShape::list(self.elem_class, self.next_slot, self.config.list_len, pattern)
    }

    /// Declaration for **structure-only** specialization (Figure 8): the
    /// shape is static, every element may be modified.
    pub fn shape_structure_only(&self) -> SpecShape {
        self.shape_with_patterns(|_| ListPattern::MayModify)
    }

    /// Declaration for Figure 9: only the first `modified_lists` lists may
    /// contain modified elements; the rest are statically unmodified.
    pub fn shape_modified_lists(&self, modified_lists: usize) -> SpecShape {
        self.shape_with_patterns(|l| {
            if l < modified_lists {
                ListPattern::MayModify
            } else {
                ListPattern::Unmodified
            }
        })
    }

    /// Declaration for Figures 10/11: the first `modified_lists` lists may
    /// be modified, and only at their last element.
    pub fn shape_last_only(&self, modified_lists: usize) -> SpecShape {
        self.shape_with_patterns(|l| {
            if l < modified_lists {
                ListPattern::LastOnly
            } else {
                ListPattern::Unmodified
            }
        })
    }

    /// Declaration with an arbitrary per-list pattern.
    pub fn shape_with_patterns(
        &self,
        mut pattern_for_list: impl FnMut(usize) -> ListPattern,
    ) -> SpecShape {
        let children = (0..self.config.lists_per_structure)
            .map(|l| (l, self.list_shape(pattern_for_list(l))))
            .collect();
        // The structure object itself holds only the list heads, which
        // never change after construction.
        SpecShape::object(self.holder_class, NodePattern::FrozenHere, children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{
        decode, restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer,
        MethodTable, RestorePolicy,
    };
    use ickp_spec::{GuardMode, SpecializedCheckpointer, Specializer};

    #[test]
    fn build_produces_the_declared_object_population() {
        let w = SynthWorld::build(SynthConfig::small()).unwrap();
        assert_eq!(w.heap().len(), w.object_count());
        assert_eq!(w.roots().len(), 50);
        assert_eq!(w.object_count(), 50 * (1 + 5 * 5));
    }

    #[test]
    fn lists_are_properly_linked_and_nil_terminated() {
        let w = SynthWorld::build(SynthConfig::small()).unwrap();
        let heap = w.heap();
        for s in 0..3 {
            for l in 0..w.config().lists_per_structure {
                for p in 0..w.config().list_len {
                    let e = w.element(s, l, p);
                    let next = heap.field(e, w.next_slot()).unwrap();
                    if p + 1 < w.config().list_len {
                        assert_eq!(next, Value::Ref(Some(w.element(s, l, p + 1))));
                    } else {
                        assert_eq!(next, Value::Ref(None));
                    }
                }
            }
        }
    }

    #[test]
    fn build_leaves_every_flag_clear() {
        let w = SynthWorld::build(SynthConfig::small()).unwrap();
        for id in w.heap().iter_live() {
            assert!(!w.heap().is_modified(id).unwrap());
        }
    }

    #[test]
    fn modification_round_respects_list_and_position_constraints() {
        let mut w = SynthWorld::build(SynthConfig::small()).unwrap();
        let spec = ModificationSpec { pct_modified: 100, modified_lists: 2, last_only: true };
        let n = w.apply_modifications(&spec);
        // 100% of last elements of 2 lists per structure:
        assert_eq!(n, 50 * 2);
        let heap = w.heap();
        for s in 0..50 {
            for l in 0..5 {
                for p in 0..5 {
                    let dirty = heap.is_modified(w.element(s, l, p)).unwrap();
                    assert_eq!(dirty, l < 2 && p == 4, "s={s} l={l} p={p}");
                }
            }
        }
    }

    #[test]
    fn percentage_controls_the_expected_fraction() {
        let mut cfg = SynthConfig::small();
        cfg.structures = 400;
        let mut w = SynthWorld::build(cfg).unwrap();
        let spec = ModificationSpec { pct_modified: 25, modified_lists: 5, last_only: false };
        let n = w.apply_modifications(&spec);
        let candidates = 400 * 5 * 5;
        let frac = n as f64 / candidates as f64;
        assert!((0.2..0.3).contains(&frac), "got {frac}");
    }

    #[test]
    fn modification_rounds_are_deterministic_per_seed() {
        let run = || {
            let mut w = SynthWorld::build(SynthConfig::small()).unwrap();
            let spec = ModificationSpec::uniform(50);
            (w.apply_modifications(&spec), w.apply_modifications(&spec))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn generic_and_specialized_checkpoints_record_the_same_objects() {
        let mut w = SynthWorld::build(SynthConfig::small()).unwrap();
        let spec = ModificationSpec { pct_modified: 50, modified_lists: 3, last_only: false };
        w.apply_modifications(&spec);

        // Specialized with structure-only shape:
        let shape = w.shape_structure_only();
        let plan = Specializer::new(w.heap().registry()).compile(&shape).unwrap();
        let roots = w.roots().to_vec();

        // Clone the heap so both drivers see identical dirty state.
        let mut heap_generic = w.heap().clone();
        let table = MethodTable::derive(heap_generic.registry());
        let mut gc = Checkpointer::new(CheckpointConfig::incremental());
        let g = gc.checkpoint(&mut heap_generic, &table, &roots).unwrap();

        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let s = sc.checkpoint(w.heap_mut(), &plan, &roots, None).unwrap();

        let dg = decode(g.bytes(), heap_generic.registry()).unwrap();
        let ds = decode(s.bytes(), w.heap().registry()).unwrap();
        assert_eq!(dg.objects, ds.objects);
    }

    #[test]
    fn narrowed_shapes_capture_exactly_the_eligible_modifications() {
        let mut w = SynthWorld::build(SynthConfig::small()).unwrap();
        let spec = ModificationSpec { pct_modified: 100, modified_lists: 2, last_only: true };
        let n = w.apply_modifications(&spec);

        let shape = w.shape_last_only(2);
        let plan = Specializer::new(w.heap().registry()).compile(&shape).unwrap();
        let roots = w.roots().to_vec();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let rec = sc.checkpoint(w.heap_mut(), &plan, &roots, None).unwrap();
        assert_eq!(rec.stats().objects_recorded as usize, n);
        // Only the eligible tails were even tested:
        assert_eq!(rec.stats().flag_tests as usize, 50 * 2);
    }

    #[test]
    fn synthetic_checkpoints_restore_exactly() {
        let mut w = SynthWorld::build(SynthConfig::small()).unwrap();
        let roots = w.roots().to_vec();
        let table = MethodTable::derive(w.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();

        w.heap_mut().mark_all_modified(); // base checkpoint covers all
        store.push(ckp.checkpoint(w.heap_mut(), &table, &roots).unwrap()).unwrap();
        for pct in [50, 25] {
            w.apply_modifications(&ModificationSpec::uniform(pct));
            store.push(ckp.checkpoint(w.heap_mut(), &table, &roots).unwrap()).unwrap();
        }
        let rebuilt = restore(&store, w.heap().registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(w.heap(), &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = SynthConfig::paper(5, 10);
        assert_eq!(cfg.structures, 20_000);
        assert_eq!(cfg.lists_per_structure, 5);
        assert_eq!(cfg.list_len, 5);
        assert_eq!(cfg.ints_per_element, 10);
    }

    #[test]
    fn element_class_has_declared_int_fields() {
        let w = SynthWorld::build(SynthConfig { ints_per_element: 10, ..SynthConfig::small() })
            .unwrap();
        let def = w.heap().registry().class(w.elem_class()).unwrap();
        assert_eq!(def.num_slots(), 11);
        assert_eq!(w.next_slot(), 10);
    }
}
