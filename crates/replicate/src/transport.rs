//! The wire seam between primary and follower, with deterministic
//! fault injection.
//!
//! [`Transport`] abstracts a bidirectional, unreliable datagram link:
//! the primary sends replication frames toward the follower and receives
//! acknowledgements back; either direction may lose, duplicate, reorder
//! or black-hole frames, and a send may reveal that the *sending node*
//! has died. [`ChannelTransport`] is the deterministic in-process
//! implementation: two `VecDeque`s plus a [`TransportPlan`] that injects
//! exactly one fault at a chosen operation index, mirroring how
//! [`FailFs`](ickp_durable::FailFs) injects filesystem faults.
//!
//! Every **send** claims an index from an [`OpCounter`] — the same
//! shareable counter `FailFs` uses — so a composed harness can number
//! the primary's I/O, the follower's I/O and the wire traffic in one
//! interleaved fault space and enumerate a single schedule over all
//! three layers (see [`harness`](crate::harness)). Receives are local
//! (polling a queue) and are not counted, again mirroring how `FailFs`
//! counts only mutating operations.

use std::collections::VecDeque;

use ickp_durable::{OpCounter, TraceLog, TraceNode, TraceOp};

/// Which node of the pair an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The node accepting client appends.
    Primary,
    /// The hot standby applying shipped batches.
    Follower,
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Primary => write!(f, "primary"),
            Node::Follower => write!(f, "follower"),
        }
    }
}

/// Transport-level failures surfaced to the caller.
///
/// Note what is *not* here: loss, duplication, reordering and
/// partitions are silent — a real network gives the sender no error for
/// them, so the protocol must mask them with retransmission and
/// idempotent application. Only a dead node is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The named node is dead; no further traffic is possible.
    Crashed {
        /// Which node died.
        node: Node,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Crashed { node } => write!(f, "{node} crashed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// What to do to the frame sent at a given operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Silently drop the frame (the sender believes it was sent).
    Loss,
    /// Deliver the frame twice.
    Duplicate,
    /// Deliver the frame ahead of everything already queued.
    Reorder,
    /// From this operation on, silently drop *all* frames in *both*
    /// directions — a network partition. Never heals within a run.
    Partition,
    /// The sending node dies mid-send: a fault at a
    /// primary→follower send kills the primary, one at a
    /// follower→primary send kills the follower.
    Crash,
}

/// A schedule of index-addressed transport faults.
///
/// Indices refer to the transport's [`OpCounter`] space, which a
/// composed harness may share with one or more [`FailFs`] instances —
/// in that case a plan entry only fires if the *transport* happens to
/// claim that index, exactly like a `FaultPlan` aimed at a shared
/// counter.
///
/// [`FailFs`]: ickp_durable::FailFs
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportPlan {
    faults: Vec<(u64, TransportFault)>,
}

impl TransportPlan {
    /// No faults: every frame is delivered exactly once, in order.
    pub fn none() -> TransportPlan {
        TransportPlan::default()
    }

    /// A single fault at send-operation index `k`.
    pub fn fault_at(k: u64, fault: TransportFault) -> TransportPlan {
        TransportPlan::default().with(k, fault)
    }

    /// Adds a fault at index `k` (builder style, for randomized suites).
    pub fn with(mut self, k: u64, fault: TransportFault) -> TransportPlan {
        self.faults.push((k, fault));
        self
    }

    fn lookup(&self, k: u64) -> Option<TransportFault> {
        self.faults.iter().find(|(i, _)| *i == k).map(|(_, f)| *f)
    }
}

/// A bidirectional, unreliable frame link between primary and follower.
///
/// Implementations must be deterministic for a given fault schedule so
/// failover matrices are exactly reproducible.
pub trait Transport {
    /// Ships a frame toward the follower. `Ok` means the frame left the
    /// sender — not that it will arrive.
    ///
    /// # Errors
    ///
    /// [`TransportError::Crashed`] if a node is dead (including the
    /// sender dying during this very send).
    fn send_to_follower(&mut self, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Polls the next frame pending at the follower, if any.
    fn recv_at_follower(&mut self) -> Option<Vec<u8>>;

    /// Ships a frame toward the primary (acknowledgements).
    ///
    /// # Errors
    ///
    /// As [`Transport::send_to_follower`].
    fn send_to_primary(&mut self, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Polls the next frame pending at the primary, if any.
    fn recv_at_primary(&mut self) -> Option<Vec<u8>>;
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn send_to_follower(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        (**self).send_to_follower(frame)
    }

    fn recv_at_follower(&mut self) -> Option<Vec<u8>> {
        (**self).recv_at_follower()
    }

    fn send_to_primary(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        (**self).send_to_primary(frame)
    }

    fn recv_at_primary(&mut self) -> Option<Vec<u8>> {
        (**self).recv_at_primary()
    }
}

/// Deterministic in-process [`Transport`]: two queues and a fault plan.
#[derive(Debug)]
pub struct ChannelTransport {
    plan: TransportPlan,
    counter: OpCounter,
    to_follower: VecDeque<Vec<u8>>,
    to_primary: VecDeque<Vec<u8>>,
    partitioned: bool,
    crashed: Option<Node>,
    op_log: Vec<u64>,
    trace: Option<TraceLog>,
    faulted: Option<(u64, String)>,
}

impl ChannelTransport {
    /// A fresh link under `plan`, numbering sends on a private counter.
    pub fn new(plan: TransportPlan) -> ChannelTransport {
        ChannelTransport::with_counter(plan, OpCounter::new())
    }

    /// A fresh link under `plan`, numbering sends on the given (possibly
    /// shared) counter — the composed-harness mode.
    pub fn with_counter(plan: TransportPlan, counter: OpCounter) -> ChannelTransport {
        ChannelTransport {
            plan,
            counter,
            to_follower: VecDeque::new(),
            to_primary: VecDeque::new(),
            partitioned: false,
            crashed: None,
            op_log: Vec::new(),
            trace: None,
            faulted: None,
        }
    }

    /// Attaches a [`TraceLog`]: every send is recorded as a typed wire
    /// op ([`TraceOp::WireSend`] from the primary,
    /// [`TraceOp::WireAck`] from the follower) at the index it claims,
    /// so one log captures the interleaved stream of both nodes'
    /// filesystems plus the wire.
    pub fn set_trace(&mut self, log: TraceLog) {
        self.trace = Some(log);
    }

    /// The send the plan faulted, if any: its counter index and a
    /// human-readable description — what the failover harness reports
    /// instead of a bare index.
    pub fn faulted_op(&self) -> Option<(u64, String)> {
        self.faulted.clone()
    }

    /// The operation indices this transport claimed, in send order. A
    /// fault-free baseline run uses this to aim per-class fault sweeps
    /// at exactly the indices where wire traffic happens.
    pub fn op_log(&self) -> &[u64] {
        &self.op_log
    }

    /// The node killed by a [`TransportFault::Crash`], if any.
    pub fn crashed_node(&self) -> Option<Node> {
        self.crashed
    }

    /// Whether a [`TransportFault::Partition`] has fired.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// A handle to this transport's operation counter.
    pub fn counter(&self) -> OpCounter {
        self.counter.clone()
    }

    fn dispatch(&mut self, sender: Node, frame: Vec<u8>) -> Result<(), TransportError> {
        if let Some(node) = self.crashed {
            return Err(TransportError::Crashed { node });
        }
        let index = self.counter.next();
        self.op_log.push(index);
        let (trace_node, trace_op) = match sender {
            Node::Primary => (TraceNode::Primary, TraceOp::WireSend),
            Node::Follower => (TraceNode::Follower, TraceOp::WireAck),
        };
        if let Some(log) = &self.trace {
            log.record(index, trace_node, trace_op.clone());
        }
        let fault = self.plan.lookup(index);
        if fault.is_some() {
            self.faulted = Some((index, trace_op.to_string()));
        }
        if fault == Some(TransportFault::Crash) {
            self.crashed = Some(sender);
            return Err(TransportError::Crashed { node: sender });
        }
        if fault == Some(TransportFault::Partition) {
            self.partitioned = true;
        }
        if self.partitioned {
            // Black hole: the sender cannot tell the frame went nowhere.
            return Ok(());
        }
        let queue = match sender {
            Node::Primary => &mut self.to_follower,
            Node::Follower => &mut self.to_primary,
        };
        match fault {
            Some(TransportFault::Loss) => {}
            Some(TransportFault::Duplicate) => {
                queue.push_back(frame.clone());
                queue.push_back(frame);
            }
            Some(TransportFault::Reorder) => queue.push_front(frame),
            _ => queue.push_back(frame),
        }
        Ok(())
    }
}

impl Transport for ChannelTransport {
    fn send_to_follower(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.dispatch(Node::Primary, frame)
    }

    fn recv_at_follower(&mut self) -> Option<Vec<u8>> {
        self.to_follower.pop_front()
    }

    fn send_to_primary(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.dispatch(Node::Follower, frame)
    }

    fn recv_at_primary(&mut self) -> Option<Vec<u8>> {
        self.to_primary.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_link_delivers_in_order() {
        let mut t = ChannelTransport::new(TransportPlan::none());
        t.send_to_follower(b"a".to_vec()).unwrap();
        t.send_to_follower(b"b".to_vec()).unwrap();
        assert_eq!(t.recv_at_follower(), Some(b"a".to_vec()));
        assert_eq!(t.recv_at_follower(), Some(b"b".to_vec()));
        assert_eq!(t.recv_at_follower(), None);
        assert_eq!(t.op_log(), &[0, 1]);
    }

    #[test]
    fn loss_drops_exactly_the_indexed_frame() {
        let mut t = ChannelTransport::new(TransportPlan::fault_at(1, TransportFault::Loss));
        t.send_to_follower(b"a".to_vec()).unwrap(); // op 0
        t.send_to_follower(b"lost".to_vec()).unwrap(); // op 1: gone
        t.send_to_follower(b"c".to_vec()).unwrap(); // op 2
        assert_eq!(t.recv_at_follower(), Some(b"a".to_vec()));
        assert_eq!(t.recv_at_follower(), Some(b"c".to_vec()));
        assert_eq!(t.recv_at_follower(), None);
    }

    #[test]
    fn duplicate_delivers_twice_and_reorder_jumps_the_queue() {
        let mut t = ChannelTransport::new(
            TransportPlan::fault_at(0, TransportFault::Duplicate).with(2, TransportFault::Reorder),
        );
        t.send_to_follower(b"a".to_vec()).unwrap(); // doubled
        t.send_to_follower(b"b".to_vec()).unwrap();
        t.send_to_follower(b"c".to_vec()).unwrap(); // jumps ahead
        let got: Vec<Vec<u8>> = std::iter::from_fn(|| t.recv_at_follower()).collect();
        assert_eq!(got, vec![b"c".to_vec(), b"a".to_vec(), b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn partition_black_holes_both_directions() {
        let mut t = ChannelTransport::new(TransportPlan::fault_at(1, TransportFault::Partition));
        t.send_to_follower(b"a".to_vec()).unwrap(); // op 0: delivered
        t.send_to_follower(b"b".to_vec()).unwrap(); // op 1: partition fires
        t.send_to_primary(b"ack".to_vec()).unwrap(); // swallowed too
        assert!(t.partitioned());
        assert_eq!(t.recv_at_follower(), Some(b"a".to_vec()));
        assert_eq!(t.recv_at_follower(), None);
        assert_eq!(t.recv_at_primary(), None);
    }

    #[test]
    fn crash_kills_the_sending_node() {
        let mut t = ChannelTransport::new(TransportPlan::fault_at(1, TransportFault::Crash));
        t.send_to_follower(b"a".to_vec()).unwrap();
        // Op 1 is a follower→primary send: the *follower* dies.
        assert_eq!(
            t.send_to_primary(b"ack".to_vec()),
            Err(TransportError::Crashed { node: Node::Follower })
        );
        assert_eq!(t.crashed_node(), Some(Node::Follower));
        // Everything after is dead air.
        assert_eq!(
            t.send_to_follower(b"b".to_vec()),
            Err(TransportError::Crashed { node: Node::Follower })
        );
    }

    #[test]
    fn shared_counter_interleaves_with_failfs_ops() {
        use ickp_durable::{FailFs, FaultPlan, MemFs, Vfs};
        let counter = OpCounter::new();
        let mut fs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
        let mut t = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
        fs.write_file("seg", b"x").unwrap(); // op 0
        t.send_to_follower(b"frame".to_vec()).unwrap(); // op 1
        fs.sync("seg").unwrap(); // op 2
        assert_eq!(t.op_log(), &[1], "transport claimed only the interleaved index 1");
        assert_eq!(counter.count(), 3);
    }
}
