//! The replication wire format.
//!
//! Every frame is self-delimiting and CRC-protected, so a follower can
//! reject truncated or bit-flipped frames without trusting the
//! transport:
//!
//! ```text
//! +-------+---------+------+--------+------------------+-------+
//! | magic | version | kind | op_seq | body (kind-dep.) | crc32 |
//! | ICKW  | u16 LE  | u8   | u64 LE |                  | u32 LE|
//! +-------+---------+------+--------+------------------+-------+
//! ```
//!
//! `op_seq` is the primary's monotone replication-operation number; the
//! follower applies op `n+1` only after op `n`, re-acknowledging (and
//! discarding) anything older — which makes duplicated and retransmitted
//! frames idempotent. Checkpoint payloads travel as their *exact*
//! `StreamWriter` bytes, so a shipped record is byte-identical on both
//! nodes and the follower re-derives `seq`/`kind`/roots by decoding the
//! payload it was handed.

use ickp_durable::crc32;

/// Leading magic of every replication frame.
pub const WIRE_MAGIC: [u8; 4] = *b"ICKW";

/// Wire format version.
pub const WIRE_VERSION: u16 = 1;

const KIND_BATCH: u8 = 0x01;
const KIND_TAG: u8 = 0x02;
const KIND_REMOVE_TAG: u8 = 0x03;
const KIND_REWRITE: u8 = 0x04;
const KIND_ACK: u8 = 0x05;

/// One replication frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// A committed group-commit batch: the payload bytes of each record,
    /// in sequence order.
    Batch {
        /// Replication operation number.
        op_seq: u64,
        /// Exact `StreamWriter` bytes of each record in the batch.
        payloads: Vec<Vec<u8>>,
    },
    /// Pin `label` to checkpoint `seq`.
    Tag {
        /// Replication operation number.
        op_seq: u64,
        /// Tag label.
        label: String,
        /// Checkpoint sequence number the tag pins.
        seq: u64,
    },
    /// Remove the tag `label`.
    RemoveTag {
        /// Replication operation number.
        op_seq: u64,
        /// Tag label.
        label: String,
    },
    /// Atomically replace the whole store contents (retention merge or
    /// reset): the new record payloads plus the surviving tags.
    Rewrite {
        /// Replication operation number.
        op_seq: u64,
        /// Exact payload bytes of the replacement records.
        payloads: Vec<Vec<u8>>,
        /// Tags surviving the rewrite.
        tags: Vec<(String, u64)>,
    },
    /// Follower → primary: every op up to and including `op_seq` is
    /// durably applied.
    Ack {
        /// Highest durably applied replication operation.
        op_seq: u64,
    },
}

impl WireMessage {
    /// The replication operation number this frame carries.
    pub fn op_seq(&self) -> u64 {
        match self {
            WireMessage::Batch { op_seq, .. }
            | WireMessage::Tag { op_seq, .. }
            | WireMessage::RemoveTag { op_seq, .. }
            | WireMessage::Rewrite { op_seq, .. }
            | WireMessage::Ack { op_seq } => *op_seq,
        }
    }

    /// Encodes the frame: header, body, trailing CRC over everything
    /// before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        let kind = match self {
            WireMessage::Batch { .. } => KIND_BATCH,
            WireMessage::Tag { .. } => KIND_TAG,
            WireMessage::RemoveTag { .. } => KIND_REMOVE_TAG,
            WireMessage::Rewrite { .. } => KIND_REWRITE,
            WireMessage::Ack { .. } => KIND_ACK,
        };
        out.push(kind);
        out.extend_from_slice(&self.op_seq().to_le_bytes());
        match self {
            WireMessage::Batch { payloads, .. } => put_payloads(&mut out, payloads),
            WireMessage::Tag { label, seq, .. } => {
                put_label(&mut out, label);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            WireMessage::RemoveTag { label, .. } => put_label(&mut out, label),
            WireMessage::Rewrite { payloads, tags, .. } => {
                put_payloads(&mut out, payloads);
                out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
                for (label, seq) in tags {
                    put_label(&mut out, label);
                    out.extend_from_slice(&seq.to_le_bytes());
                }
            }
            WireMessage::Ack { .. } => {}
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and integrity-checks one frame.
    ///
    /// # Errors
    ///
    /// A description of the first malformation found: bad magic or
    /// version, unknown kind, truncation, trailing garbage, or CRC
    /// mismatch.
    pub fn decode(bytes: &[u8]) -> Result<WireMessage, String> {
        if bytes.len() < 4 + 2 + 1 + 8 + 4 {
            return Err(format!("frame too short: {} bytes", bytes.len()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let got = crc32(body);
        if want != got {
            return Err(format!("frame crc mismatch: stored {want:#010x}, computed {got:#010x}"));
        }
        let mut c = Cursor { bytes: body, pos: 0 };
        if c.take(4)? != WIRE_MAGIC {
            return Err("bad wire magic".into());
        }
        let version = c.u16()?;
        if version != WIRE_VERSION {
            return Err(format!("wire version {version}, expected {WIRE_VERSION}"));
        }
        let kind = c.u8()?;
        let op_seq = c.u64()?;
        let msg = match kind {
            KIND_BATCH => WireMessage::Batch { op_seq, payloads: c.payloads()? },
            KIND_TAG => {
                let label = c.label()?;
                let seq = c.u64()?;
                WireMessage::Tag { op_seq, label, seq }
            }
            KIND_REMOVE_TAG => WireMessage::RemoveTag { op_seq, label: c.label()? },
            KIND_REWRITE => {
                let payloads = c.payloads()?;
                let ntags = c.u32()? as usize;
                let mut tags = Vec::with_capacity(ntags);
                for _ in 0..ntags {
                    let label = c.label()?;
                    let seq = c.u64()?;
                    tags.push((label, seq));
                }
                WireMessage::Rewrite { op_seq, payloads, tags }
            }
            KIND_ACK => WireMessage::Ack { op_seq },
            other => return Err(format!("unknown wire kind {other:#04x}")),
        };
        if c.pos != body.len() {
            return Err(format!("{} trailing bytes after frame body", body.len() - c.pos));
        }
        Ok(msg)
    }
}

fn put_payloads(out: &mut Vec<u8>, payloads: &[Vec<u8>]) {
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
}

fn put_label(out: &mut Vec<u8>, label: &str) {
    out.extend_from_slice(&(label.len() as u16).to_le_bytes());
    out.extend_from_slice(label.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!("frame truncated at offset {}", self.pos));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn label(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "label is not utf-8".to_string())
    }

    fn payloads(&mut self) -> Result<Vec<Vec<u8>>, String> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = self.u32()? as usize;
            out.push(self.take(len)?.to_vec());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMessage) {
        let bytes = msg.encode();
        assert_eq!(WireMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(WireMessage::Batch { op_seq: 7, payloads: vec![vec![1, 2, 3], vec![], vec![9]] });
        roundtrip(WireMessage::Tag { op_seq: 8, label: "alpha".into(), seq: 3 });
        roundtrip(WireMessage::RemoveTag { op_seq: 9, label: "alpha".into() });
        roundtrip(WireMessage::Rewrite {
            op_seq: 10,
            payloads: vec![vec![0xFF; 40]],
            tags: vec![("keep".into(), 12), ("base".into(), 4)],
        });
        roundtrip(WireMessage::Ack { op_seq: 11 });
    }

    #[test]
    fn corruption_is_rejected() {
        let mut bytes = WireMessage::Tag { op_seq: 1, label: "t".into(), seq: 0 }.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert!(err.contains("crc"), "{err}");
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = WireMessage::Ack { op_seq: 3 }.encode();
        assert!(WireMessage::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(WireMessage::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // Valid body + extra byte + recomputed CRC: structurally sound
        // but longer than the kind says — must be rejected, not ignored.
        let mut bytes = WireMessage::Ack { op_seq: 3 }.encode();
        bytes.truncate(bytes.len() - 4);
        bytes.push(0xAB);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
