//! # ickp-replicate — hot-standby replication of the durable store
//!
//! Checkpointing tolerates a crash of the *process*; surviving the loss
//! of a whole *node* needs the checkpoint log on a second machine. This
//! crate pairs two [`DurableStore`](ickp_durable::DurableStore)s into a
//! [`ReplicaPair`]: the primary group-commits batches of records
//! locally, ships every committed batch (and every tag or retention
//! rewrite) over a [`Transport`], and counts a record
//! *client-acknowledged* only once the follower has durably applied it.
//! Records travel as their exact encoded bytes, so the standby's log is
//! byte-identical to the primary's, and [`promote`] turns its directory
//! into a standalone store with ordinary single-node recovery.
//!
//! The protocol is deliberately simple — monotone operation numbers,
//! idempotent application, bounded retransmission — and its failure
//! story is proven rather than argued: [`enumerate_failover_points`]
//! numbers every mutating I/O operation on both nodes *and* every wire
//! send in one interleaved fault space (sharing
//! [`OpCounter`](ickp_durable::OpCounter) between two
//! [`FailFs`](ickp_durable::FailFs) instances and the
//! [`ChannelTransport`]), then proves that killing either node at any
//! operation, or losing, duplicating, reordering or partitioning any
//! frame, never loses an acknowledged record and always leaves a
//! promotable survivor.
//!
//! ## Example
//!
//! ```
//! use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
//! use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
//! use ickp_durable::MemFs;
//! use ickp_replicate::{
//!     promote, ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let c = reg.define("C", None, &[("v", FieldType::Int)])?;
//! let mut heap = Heap::new(reg);
//! let o = heap.alloc(c)?;
//! let table = MethodTable::derive(heap.registry());
//! let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
//!
//! let config = ReplicateConfig { batch_records: 2, ..ReplicateConfig::default() };
//! let mut pair = ReplicaPair::create(
//!     MemFs::new(),
//!     MemFs::new(),
//!     ChannelTransport::new(TransportPlan::none()),
//!     config,
//!     heap.registry(),
//! )?;
//! for v in 0..4 {
//!     heap.set_field(o, 0, Value::Int(v))?;
//!     pair.append(ckp.checkpoint(&mut heap, &table, &[o])?)?;
//! }
//! assert_eq!(pair.acked_records(), 4); // two group commits, both replicated
//!
//! // The primary is gone: promote the standby's directory.
//! let registry = heap.registry().clone();
//! let (_, follower_fs, _) = pair.into_parts();
//! let (promoted, recovered) = promote(follower_fs, config.durable, &registry)?;
//! assert_eq!(recovered.len(), 4);
//! assert_eq!(promoted.last_seq(), Some(3));
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;
mod pair;
mod transport;
pub mod wire;

pub use harness::{
    enumerate_failover_points, enumerate_failover_points_driven, FailoverError, FailoverReport,
    MatrixPair,
};
pub use pair::{promote, ReplicaPair, ReplicateConfig, ReplicateError, ReplicationStats};
pub use transport::{
    ChannelTransport, Node, Transport, TransportError, TransportFault, TransportPlan,
};
pub use wire::{WireMessage, WIRE_MAGIC, WIRE_VERSION};
