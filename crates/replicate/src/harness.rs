//! Two-node failover enumeration: prove the pair safe at *every* fault
//! point of the composed system.
//!
//! The harness runs the replicated workload once fault-free on a
//! **shared** [`OpCounter`] threaded through the primary's [`FailFs`],
//! the follower's [`FailFs`] and the [`ChannelTransport`], so every
//! mutating I/O operation on either node and every wire send is numbered
//! in one interleaved fault space of size N. It then sweeps:
//!
//! * **Kill matrix** — for every k < N, arm *all three layers* with a
//!   crash at k; exactly one (whichever owns operation k) fires. Both
//!   nodes are then rebooted from their surviving disks and must each
//!   hold a byte-identical prefix of the workload. The survivor must
//!   hold **at least the acknowledged prefix** (an acknowledged record
//!   is never lost), restore cleanly, and complete the remaining
//!   workload as the promoted primary.
//! * **Masked-fault sweeps** — for every wire operation, injecting
//!   loss, duplication or reordering must be *invisible*: the run
//!   completes and both nodes finish byte-identical to the workload.
//! * **Partition sweep** — a partition at any wire operation must
//!   surface as [`ReplicateError::NotReplicated`] with neither node
//!   dead, and the follower must still promote and complete.
//!
//! The survivor may legitimately hold *more* than the acknowledged
//! prefix: a batch can be durable on both nodes while the final
//! acknowledgement was still in flight when the fault hit (the
//! two-generals window). The harness asserts the prefix property and
//! counts these in [`FailoverReport::promoted_extra`] — what can never
//! happen is the reverse, an acknowledged record missing from the
//! survivor.
//!
//! Workloads driven through this harness must be append/tag-shaped
//! (retention generation 0): after promotion the harness finishes the
//! *record* workload on the survivor. Rewrite-heavy lifecycle workloads
//! get their own bespoke sweeps (see the crate's integration tests).
//!
//! [`ReplicateError::NotReplicated`]: crate::pair::ReplicateError::NotReplicated

use ickp_core::{restore, CheckpointRecord, RestorePolicy, RestoredHeap};
use ickp_durable::{DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, OpCounter};
use ickp_heap::ClassRegistry;

use crate::pair::{ReplicaPair, ReplicateConfig};
use crate::transport::{ChannelTransport, Node, TransportFault, TransportPlan};

/// The fault-injectable pair type the failover harness drives.
pub type MatrixPair<'a> = ReplicaPair<&'a mut FailFs, &'a mut FailFs, &'a mut ChannelTransport>;

/// A failed failover-matrix sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverError {
    /// The fault-free baseline run itself failed.
    Baseline(String),
    /// An invariant broke under one injected fault.
    Invariant {
        /// Which fault was injected (kind and operation index).
        scenario: String,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for FailoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailoverError::Baseline(what) => write!(f, "baseline run failed: {what}"),
            FailoverError::Invariant { scenario, what } => write!(f, "{scenario}: {what}"),
        }
    }
}

impl std::error::Error for FailoverError {}

/// What a full failover sweep established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// Interleaved mutating operations (fs + wire) in the fault-free
    /// run — also the number of kill points exercised.
    pub total_ops: u64,
    /// How many of those were wire sends (each swept with loss,
    /// duplication, reordering and partition on top of the kill).
    pub transport_ops: usize,
    /// Checkpoint records in the workload.
    pub records: usize,
    /// Kill scenarios exercised (one per interleaved operation).
    pub kill_points: usize,
    /// For each kill point k, the client-acknowledged record count when
    /// the fault hit.
    pub acked: Vec<u64>,
    /// Loss/duplicate/reorder injections proven invisible.
    pub masked_faults: usize,
    /// Partition injections proven to fail cleanly and promote.
    pub partition_points: usize,
    /// Scenarios where the survivor held replicated-but-unacknowledged
    /// records beyond the acknowledged prefix (the two-generals window).
    pub promoted_extra: usize,
}

/// Everything observable after one faulted run of the workload.
struct RunOutcome {
    result: Result<(), String>,
    acked: u64,
    primary_disk: MemFs,
    follower_disk: MemFs,
    primary_dead: bool,
    follower_dead: bool,
    transport_ops: Vec<u64>,
    total_ops: u64,
    /// Kind and path of the faulted operation (e.g. `primary fsync
    /// "seg-000001.ickd"`), for failure output that names the op rather
    /// than a bare index.
    faulted: Option<String>,
}

/// Sweeps the full two-node fault matrix for a workload that appends
/// `expected` through a [`ReplicaPair`] and commits.
///
/// `verify_state(n, restored)` is called with the survivor's recovered
/// record count `n > 0`; compare against your snapshot of the program
/// state at checkpoint `n - 1` and return a mismatch description, or
/// `None`.
///
/// # Errors
///
/// [`FailoverError::Baseline`] if the fault-free run fails;
/// [`FailoverError::Invariant`] naming the fault scenario otherwise.
pub fn enumerate_failover_points<V>(
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
    config: ReplicateConfig,
    verify_state: V,
) -> Result<FailoverReport, FailoverError>
where
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    enumerate_failover_points_driven(
        registry,
        expected,
        config,
        |pair| {
            for record in expected {
                pair.append(record.clone()).map_err(|e| e.to_string())?;
            }
            pair.commit().map_err(|e| e.to_string())
        },
        verify_state,
    )
}

/// [`enumerate_failover_points`] for workloads that produce records
/// while replicating (an engine streaming into the pair as a
/// [`RecordSink`](ickp_core::RecordSink)) rather than appending a
/// pre-built list.
///
/// `drive` must rebuild the identical deterministic workload on every
/// call. `expected` is the record sequence of a fault-free run; every
/// surviving disk is held to a byte-identical prefix of it.
///
/// # Errors
///
/// As [`enumerate_failover_points`].
pub fn enumerate_failover_points_driven<D, V>(
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
    config: ReplicateConfig,
    mut drive: D,
    mut verify_state: V,
) -> Result<FailoverReport, FailoverError>
where
    D: for<'a> FnMut(&mut MatrixPair<'a>) -> Result<(), String>,
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    // Fault-free baseline: size the interleaved op space, locate the
    // wire sends within it, and prove both nodes end byte-identical.
    let mut baseline = run(
        registry,
        config,
        &mut drive,
        FaultPlan::none(),
        FaultPlan::none(),
        TransportPlan::none(),
    );
    baseline.result.clone().map_err(FailoverError::Baseline)?;
    if baseline.acked != expected.len() as u64 {
        return Err(FailoverError::Baseline(format!(
            "baseline acknowledged {} records, expected {}",
            baseline.acked,
            expected.len()
        )));
    }
    for (node, disk) in
        [("primary", &mut baseline.primary_disk), ("follower", &mut baseline.follower_disk)]
    {
        let (len, _) = recovered_prefix(disk, config.durable, registry, expected)
            .map_err(FailoverError::Baseline)?;
        if len != expected.len() {
            return Err(FailoverError::Baseline(format!(
                "baseline {node} holds {len} of {} records",
                expected.len()
            )));
        }
    }
    let total_ops = baseline.total_ops;
    let wire_ops = baseline.transport_ops.clone();

    let mut acked_per_kill = Vec::with_capacity(total_ops as usize);
    let mut promoted_extra = 0usize;

    // Kill matrix: all three layers armed; whichever owns op k fires.
    for k in 0..total_ops {
        let out = run(
            registry,
            config,
            &mut drive,
            FaultPlan::crash_at(k),
            FaultPlan::crash_at(k),
            TransportPlan::fault_at(k, TransportFault::Crash),
        );
        let scenario = match &out.faulted {
            Some(op) => format!("kill at interleaved op {k} ({op})"),
            None => format!("kill at interleaved op {k}"),
        };
        let fail = |what: String| FailoverError::Invariant { scenario: scenario.clone(), what };
        if out.result.is_ok() {
            return Err(fail("kill point was never reached".into()));
        }
        if out.primary_dead == out.follower_dead {
            return Err(fail(format!(
                "expected exactly one dead node, primary_dead={} follower_dead={}: {}",
                out.primary_dead,
                out.follower_dead,
                out.result.unwrap_err()
            )));
        }
        let acked = out.acked;
        promoted_extra += settle(out, registry, config, expected, &mut verify_state, &fail, None)?;
        acked_per_kill.push(acked);
    }

    // Masked faults: loss, duplication, reordering at every wire send
    // must be invisible end to end.
    let mut masked_faults = 0usize;
    for &t in &wire_ops {
        for (name, fault) in [
            ("loss", TransportFault::Loss),
            ("duplicate", TransportFault::Duplicate),
            ("reorder", TransportFault::Reorder),
        ] {
            let scenario = format!("{name} at wire op {t}");
            let fail = |what: String| FailoverError::Invariant { scenario: scenario.clone(), what };
            let mut out = run(
                registry,
                config,
                &mut drive,
                FaultPlan::none(),
                FaultPlan::none(),
                TransportPlan::fault_at(t, fault),
            );
            if let Err(e) = &out.result {
                return Err(fail(format!("fault was not masked: {e}")));
            }
            if out.acked != expected.len() as u64 {
                return Err(fail(format!(
                    "run completed but acknowledged {} of {} records",
                    out.acked,
                    expected.len()
                )));
            }
            for (node, disk) in
                [("primary", &mut out.primary_disk), ("follower", &mut out.follower_disk)]
            {
                let (len, _) =
                    recovered_prefix(disk, config.durable, registry, expected).map_err(&fail)?;
                if len != expected.len() {
                    return Err(fail(format!(
                        "{node} holds {len} of {} records after a masked fault",
                        expected.len()
                    )));
                }
            }
            masked_faults += 1;
        }
    }

    // Partitions: the primary must give up cleanly (nobody dies, the
    // batch stays unacknowledged) and the follower must promote.
    let mut partition_points = 0usize;
    for &t in &wire_ops {
        let scenario = format!("partition at wire op {t}");
        let fail = |what: String| FailoverError::Invariant { scenario: scenario.clone(), what };
        let out = run(
            registry,
            config,
            &mut drive,
            FaultPlan::none(),
            FaultPlan::none(),
            TransportPlan::fault_at(t, TransportFault::Partition),
        );
        if out.result.is_ok() {
            return Err(fail("partition was silently masked".into()));
        }
        if out.primary_dead || out.follower_dead {
            return Err(fail("a partition must not kill a node".into()));
        }
        promoted_extra += settle(
            out,
            registry,
            config,
            expected,
            &mut verify_state,
            &fail,
            Some("unacknowledged"),
        )?;
        partition_points += 1;
    }

    Ok(FailoverReport {
        total_ops,
        transport_ops: wire_ops.len(),
        records: expected.len(),
        kill_points: total_ops as usize,
        acked: acked_per_kill,
        masked_faults,
        partition_points,
        promoted_extra,
    })
}

/// One faulted (or fault-free) run of the workload over fresh disks,
/// with all three layers numbered on one shared counter.
fn run<D>(
    registry: &ClassRegistry,
    config: ReplicateConfig,
    drive: &mut D,
    primary_plan: FaultPlan,
    follower_plan: FaultPlan,
    transport_plan: TransportPlan,
) -> RunOutcome
where
    D: for<'a> FnMut(&mut MatrixPair<'a>) -> Result<(), String>,
{
    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), primary_plan, counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), follower_plan, counter.clone());
    let mut link = ChannelTransport::with_counter(transport_plan, counter.clone());
    let mut acked = 0u64;
    let result = match ReplicaPair::create(&mut pfs, &mut ffs, &mut link, config, registry) {
        Err(e) => Err(e.to_string()),
        Ok(mut pair) => {
            let r = drive(&mut pair);
            acked = pair.acked_records();
            r
        }
    };
    let killed_by_wire = link.crashed_node();
    let primary_dead = pfs.crashed() || killed_by_wire == Some(Node::Primary);
    let follower_dead = ffs.crashed() || killed_by_wire == Some(Node::Follower);
    // The wire op description already names its direction; disk ops get
    // their node prepended.
    let faulted = pfs
        .faulted_op()
        .map(|(_, op)| format!("primary {op}"))
        .or_else(|| ffs.faulted_op().map(|(_, op)| format!("follower {op}")))
        .or_else(|| link.faulted_op().map(|(_, op)| op));
    let transport_ops = link.op_log().to_vec();
    let total_ops = counter.count();
    let mut primary_disk = pfs.into_recovered();
    let mut follower_disk = ffs.into_recovered();
    // A node killed at the wire (not by its own disk) still loses its
    // volatile filesystem state — the process died, not the link.
    if killed_by_wire == Some(Node::Primary) {
        primary_disk.crash();
    }
    if killed_by_wire == Some(Node::Follower) {
        follower_disk.crash();
    }
    RunOutcome {
        result,
        acked,
        primary_disk,
        follower_disk,
        primary_dead,
        follower_dead,
        transport_ops,
        total_ops,
        faulted,
    }
}

/// Post-fault settlement: reboot both disks, hold each to a
/// byte-identical prefix, hold the survivor to at least the
/// acknowledged prefix, restore-verify it, then promote it and finish
/// the workload. Returns 1 if the survivor held unacknowledged extra
/// records (for [`FailoverReport::promoted_extra`]).
#[allow(clippy::too_many_arguments)]
fn settle<V>(
    mut out: RunOutcome,
    registry: &ClassRegistry,
    config: ReplicateConfig,
    expected: &[CheckpointRecord],
    verify_state: &mut V,
    fail: &dyn Fn(String) -> FailoverError,
    expect_error_containing: Option<&str>,
) -> Result<usize, FailoverError>
where
    V: FnMut(usize, &RestoredHeap) -> Option<String>,
{
    if let (Some(needle), Err(e)) = (expect_error_containing, &out.result) {
        if !e.contains(needle) {
            return Err(fail(format!("expected a `{needle}` failure, got: {e}")));
        }
    }
    let (plen, _) = recovered_prefix(&mut out.primary_disk, config.durable, registry, expected)
        .map_err(|e| fail(format!("primary reboot: {e}")))?;
    let (flen, frecovered) =
        recovered_prefix(&mut out.follower_disk, config.durable, registry, expected)
            .map_err(|e| fail(format!("follower reboot: {e}")))?;

    // The survivor: the live node after a kill; after a partition (both
    // alive) the follower, which is what a real cluster would promote —
    // the isolated primary is the one that lost its quorum.
    let (survivor_disk, survivor_len, srecovered) = if out.primary_dead || !out.follower_dead {
        (&mut out.follower_disk, flen, frecovered)
    } else {
        let (_, precovered) = DurableStore::open(&mut out.primary_disk, config.durable, registry)
            .map_err(|e| fail(format!("primary re-open: {e}")))?;
        (&mut out.primary_disk, plen, precovered)
    };

    if (survivor_len as u64) < out.acked {
        return Err(fail(format!(
            "survivor holds {survivor_len} records but {} were acknowledged to the client",
            out.acked
        )));
    }
    if survivor_len > 0 {
        let rebuilt = restore(&srecovered, registry, RestorePolicy::Lenient)
            .map_err(|e| fail(format!("restore of survivor failed: {e}")))?;
        if let Some(mismatch) = verify_state(survivor_len, &rebuilt) {
            return Err(fail(format!("survivor state diverges: {mismatch}")));
        }
    }

    // Promote: the survivor must finish the workload as a standalone
    // store and end byte-identical to the full expected sequence.
    let (mut store, _) = DurableStore::open(&mut *survivor_disk, config.durable, registry)
        .map_err(|e| fail(format!("promotion failed: {e}")))?;
    for batch in expected[survivor_len..].chunks(config.batch_records.max(1)) {
        store
            .append_batch(batch)
            .map_err(|e| fail(format!("post-promotion append failed: {e}")))?;
    }
    drop(store);
    let (full_len, _) = recovered_prefix(&mut *survivor_disk, config.durable, registry, expected)
        .map_err(|e| fail(format!("post-promotion reboot: {e}")))?;
    if full_len != expected.len() {
        return Err(fail(format!(
            "promoted store finished with {full_len} of {} records",
            expected.len()
        )));
    }

    Ok(usize::from(survivor_len as u64 > out.acked))
}

/// Reboots a disk and checks it holds a byte-identical prefix of
/// `expected`, returning the prefix length and the recovered store.
fn recovered_prefix(
    disk: &mut MemFs,
    config: DurableConfig,
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
) -> Result<(usize, ickp_core::CheckpointStore), String> {
    let (_, recovered) = DurableStore::open(&mut *disk, config, registry)
        .map_err(|e| format!("recovery failed: {e}"))?;
    if recovered.len() > expected.len() {
        return Err(format!(
            "recovered {} records, the workload has only {}",
            recovered.len(),
            expected.len()
        ));
    }
    for (want, got) in expected.iter().zip(recovered.records()) {
        if want.seq() != got.seq() {
            return Err(format!("recovered seq {} where {} was written", got.seq(), want.seq()));
        }
        if want.bytes() != got.bytes() {
            return Err(format!("record seq {} is not byte-identical", got.seq()));
        }
    }
    Ok((recovered.len(), recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{verify_restore, CheckpointConfig, Checkpointer, MethodTable};
    use ickp_heap::{FieldType, Heap, ObjectId, Value};

    type HeapSnapshot = (Heap, Vec<ObjectId>);

    fn workload(n: usize) -> (ClassRegistry, Vec<HeapSnapshot>, Vec<CheckpointRecord>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let registry = heap.registry().clone();
        let mut states = Vec::new();
        let mut records = Vec::new();
        for i in 0..n {
            heap.set_field(tail, 0, Value::Int(i as i32)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap());
            states.push((heap.clone(), vec![head]));
        }
        (registry, states, records)
    }

    #[test]
    fn failover_matrix_passes_for_a_small_workload() {
        let (registry, states, records) = workload(4);
        let config = ReplicateConfig {
            durable: DurableConfig { segment_target_bytes: 64 },
            batch_records: 2,
            ..ReplicateConfig::default()
        };
        let report = enumerate_failover_points(&registry, &records, config, |n, restored| {
            let (heap, roots) = &states[n - 1];
            verify_restore(heap, roots, restored).expect("verify runs")
        })
        .unwrap();
        assert_eq!(report.records, 4);
        assert!(report.transport_ops >= 4, "2 batches = at least 2 sends + 2 acks");
        assert_eq!(report.kill_points as u64, report.total_ops);
        assert_eq!(report.masked_faults, report.transport_ops * 3);
        assert_eq!(report.partition_points, report.transport_ops);
        assert!(
            report.promoted_extra > 0,
            "some kill window must catch a replicated-but-unacked batch"
        );
    }

    #[test]
    fn a_divergent_state_check_names_the_scenario() {
        let (registry, _, records) = workload(2);
        let err =
            enumerate_failover_points(&registry, &records, ReplicateConfig::default(), |_, _| {
                Some("deliberate mismatch".into())
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                FailoverError::Invariant { ref what, .. } if what.contains("deliberate")
            ),
            "unexpected error: {err}"
        );
    }
}
