//! The primary/follower pair: group-commit replication with
//! acknowledged-prefix semantics.
//!
//! ## Protocol
//!
//! The primary is the single writer. Appended records stage in memory
//! until [`ReplicaPair::commit`] (or the configured batch size) turns
//! them into **one group commit**: the primary's durable store
//! acknowledges the whole batch with a single manifest swap, then the
//! batch ships to the follower as one [`WireMessage::Batch`] and the
//! primary waits for the follower's acknowledgement before counting the
//! records client-acknowledged. Control operations (tags, retention
//! rewrites) replicate the same way, each as one wire operation.
//!
//! Every wire operation carries a monotone `op_seq`. The follower
//! applies op `n+1` only after op `n`, durably, then acknowledges its
//! applied high-water mark; anything at or below that mark is discarded
//! and re-acknowledged. The primary retransmits an unacknowledged
//! operation a bounded number of times and then reports
//! [`ReplicateError::NotReplicated`]. Together these mask frame loss,
//! duplication and reordering; a partition exhausts the retransmit
//! budget and surfaces as an error with both stores intact.
//!
//! ## The acknowledgement invariant
//!
//! A record counts acknowledged-to-client only once it is durable **on
//! both nodes**. The primary always commits locally first, so at every
//! instant `follower ⊆ primary` (as a record prefix) and the
//! client-acknowledged prefix is exactly the follower's durable state
//! with at most one in-flight batch of slack. Killing either node at
//! any operation and promoting the survivor therefore never loses an
//! acknowledged record — the property [`enumerate_failover_points`]
//! proves by exhaustion.
//!
//! [`enumerate_failover_points`]: crate::harness::enumerate_failover_points

use std::ops::Range;

use ickp_core::{
    decode, object_slices, CheckpointRecord, CheckpointStore, CoreError, RecordSink, TraversalStats,
};
use ickp_durable::{DedupStats, DurableConfig, DurableError, DurableStore, Vfs};
use ickp_heap::ClassRegistry;

use crate::transport::{Transport, TransportError};
use crate::wire::WireMessage;

/// Tuning for a replicated pair.
#[derive(Debug, Clone, Copy)]
pub struct ReplicateConfig {
    /// Configuration of both nodes' durable stores.
    pub durable: DurableConfig,
    /// Appends auto-commit when this many records are staged. `1`
    /// degenerates to per-record commits (the pre-group-commit
    /// behaviour); [`ReplicaPair::commit`] flushes early.
    pub batch_records: usize,
    /// How many times an unacknowledged wire operation is retransmitted
    /// before the primary gives up.
    pub max_retries: u32,
    /// Ship and store records with content-hash chunk deduplication.
    pub dedup: bool,
}

impl Default for ReplicateConfig {
    fn default() -> ReplicateConfig {
        ReplicateConfig {
            durable: DurableConfig::default(),
            batch_records: 4,
            max_retries: 3,
            dedup: false,
        }
    }
}

/// Replication failures.
#[derive(Debug)]
pub enum ReplicateError {
    /// The primary's durable store failed.
    Primary(DurableError),
    /// The follower's durable store failed while applying.
    Follower(DurableError),
    /// The transport reported a dead node.
    Transport(TransportError),
    /// The follower never acknowledged `op_seq` within the retransmit
    /// budget — the link is partitioned or the follower is unreachable.
    /// The operation *is* durable on the primary.
    NotReplicated {
        /// The unacknowledged wire operation.
        op_seq: u64,
        /// Sends attempted (1 original + retransmits).
        attempts: u32,
    },
    /// A frame failed integrity checks or could not be decoded.
    Wire(String),
    /// Re-decoding a shipped payload failed on the follower.
    Core(CoreError),
}

impl std::fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicateError::Primary(e) => write!(f, "primary store: {e}"),
            ReplicateError::Follower(e) => write!(f, "follower store: {e}"),
            ReplicateError::Transport(e) => write!(f, "transport: {e}"),
            ReplicateError::NotReplicated { op_seq, attempts } => {
                write!(f, "wire op {op_seq} unacknowledged after {attempts} attempts")
            }
            ReplicateError::Wire(what) => write!(f, "wire frame: {what}"),
            ReplicateError::Core(e) => write!(f, "payload decode: {e}"),
        }
    }
}

impl std::error::Error for ReplicateError {}

/// Replication traffic accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Group-commit batches shipped and acknowledged.
    pub batches_shipped: u64,
    /// Checkpoint records replicated inside those batches.
    pub records_replicated: u64,
    /// Control operations (tags, tag removals, rewrites) replicated.
    pub control_ops_shipped: u64,
    /// Retransmissions of unacknowledged frames.
    pub retransmits: u64,
    /// Bytes handed to the transport (both directions).
    pub wire_bytes: u64,
    /// Stale or duplicate frames the follower discarded (and
    /// re-acknowledged).
    pub duplicates_dropped: u64,
}

/// The hot standby: a durable store plus the replication high-water
/// mark.
#[derive(Debug)]
struct FollowerNode<F: Vfs> {
    store: DurableStore<F>,
    /// Highest wire `op_seq` durably applied. Ops arrive starting at 1,
    /// so 0 means "nothing yet".
    applied_ops: u64,
}

impl<F: Vfs> FollowerNode<F> {
    /// Applies one data frame if it is exactly the next operation;
    /// discards (counting it) if stale. Returns the new high-water mark
    /// to acknowledge. A gap (op from the future) is also discarded:
    /// re-acking the current mark makes the primary retransmit.
    fn apply(
        &mut self,
        msg: WireMessage,
        registry: &ClassRegistry,
        dedup: bool,
        stats: &mut ReplicationStats,
    ) -> Result<u64, ReplicateError> {
        let op_seq = msg.op_seq();
        if op_seq != self.applied_ops + 1 {
            stats.duplicates_dropped += 1;
            return Ok(self.applied_ops);
        }
        match msg {
            WireMessage::Batch { payloads, .. } => {
                let records = records_from_payloads(payloads, registry)?;
                let layouts = layouts_for(&records, registry, dedup)?;
                self.store
                    .append_batch_deduped(&records, &layouts)
                    .map_err(ReplicateError::Follower)?;
            }
            WireMessage::Tag { label, seq, .. } => {
                self.store.tag(&label, seq).map_err(ReplicateError::Follower)?;
            }
            WireMessage::RemoveTag { label, .. } => {
                self.store.remove_tag(&label).map_err(ReplicateError::Follower)?;
            }
            WireMessage::Rewrite { payloads, tags, .. } => {
                let records = records_from_payloads(payloads, registry)?;
                let layouts = layouts_for(&records, registry, dedup)?;
                self.store.rewrite(&records, &layouts, &tags).map_err(ReplicateError::Follower)?;
            }
            WireMessage::Ack { .. } => {
                return Err(ReplicateError::Wire("ack frame arrived at follower".into()))
            }
        }
        self.applied_ops = op_seq;
        Ok(self.applied_ops)
    }
}

/// Rebuilds owned records from shipped payload bytes. The payload *is*
/// the record's exact byte stream, so the rebuilt record is
/// byte-identical to the primary's; `seq`, `kind` and the root set are
/// re-derived by decoding.
fn records_from_payloads(
    payloads: Vec<Vec<u8>>,
    registry: &ClassRegistry,
) -> Result<Vec<CheckpointRecord>, ReplicateError> {
    payloads
        .into_iter()
        .map(|payload| {
            let d = decode(&payload, registry).map_err(ReplicateError::Core)?;
            Ok(CheckpointRecord::from_parts(
                d.seq,
                d.kind,
                d.roots,
                payload,
                TraversalStats::default(),
            ))
        })
        .collect()
}

/// Chunk layouts for dedup-aware storage: object-record boundaries when
/// dedup is on, empty (store literally) when off.
fn layouts_for(
    records: &[CheckpointRecord],
    registry: &ClassRegistry,
    dedup: bool,
) -> Result<Vec<Vec<Range<usize>>>, ReplicateError> {
    if !dedup {
        return Ok(vec![Vec::new(); records.len()]);
    }
    records
        .iter()
        .map(|r| {
            object_slices(r.bytes(), registry)
                .map(|layout| layout.objects)
                .map_err(ReplicateError::Core)
        })
        .collect()
}

/// A primary and its hot standby, joined by a [`Transport`].
///
/// Generic over both nodes' filesystems and the transport so tests can
/// plug fault-injectable implementations of all three (see
/// [`harness`](crate::harness)); production pairs use real directories
/// and a real link.
#[derive(Debug)]
pub struct ReplicaPair<P: Vfs, F: Vfs, T: Transport> {
    primary: DurableStore<P>,
    follower: FollowerNode<F>,
    transport: T,
    registry: ClassRegistry,
    config: ReplicateConfig,
    staged: Vec<CheckpointRecord>,
    /// Next wire `op_seq` to assign (starts at 1).
    next_op: u64,
    /// Highest wire op the follower has acknowledged.
    acked_ops: u64,
    /// Records acknowledged to the client: durable on both nodes.
    acked_records: u64,
    stats: ReplicationStats,
}

impl<P: Vfs, F: Vfs, T: Transport> ReplicaPair<P, F, T> {
    /// Creates fresh stores on both nodes and joins them.
    ///
    /// # Errors
    ///
    /// [`ReplicateError::Primary`] / [`ReplicateError::Follower`] if
    /// either store cannot be initialized (e.g.
    /// [`DurableError::AlreadyExists`]).
    pub fn create(
        primary_fs: P,
        follower_fs: F,
        transport: T,
        config: ReplicateConfig,
        registry: &ClassRegistry,
    ) -> Result<ReplicaPair<P, F, T>, ReplicateError> {
        let primary =
            DurableStore::create(primary_fs, config.durable).map_err(ReplicateError::Primary)?;
        let follower =
            DurableStore::create(follower_fs, config.durable).map_err(ReplicateError::Follower)?;
        Ok(ReplicaPair {
            primary,
            follower: FollowerNode { store: follower, applied_ops: 0 },
            transport,
            registry: registry.clone(),
            config,
            staged: Vec::new(),
            next_op: 1,
            acked_ops: 0,
            acked_records: 0,
            stats: ReplicationStats::default(),
        })
    }

    /// Stages a record; commits automatically once
    /// [`ReplicateConfig::batch_records`] are staged.
    ///
    /// # Errors
    ///
    /// As [`ReplicaPair::commit`], if this append triggers one.
    pub fn append(&mut self, record: CheckpointRecord) -> Result<(), ReplicateError> {
        self.staged.push(record);
        if self.staged.len() >= self.config.batch_records.max(1) {
            self.commit()?;
        }
        Ok(())
    }

    /// Group-commits everything staged: one durable batch on the
    /// primary, one wire batch to the follower, acknowledged as a unit.
    /// No-op when nothing is staged.
    ///
    /// # Errors
    ///
    /// * [`ReplicateError::Primary`] — local commit failed; nothing was
    ///   acknowledged and nothing shipped.
    /// * [`ReplicateError::NotReplicated`] / transport errors — the
    ///   batch is durable on the primary but unconfirmed on the
    ///   follower, and stays un-acknowledged to the client.
    pub fn commit(&mut self) -> Result<(), ReplicateError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let records = std::mem::take(&mut self.staged);
        let layouts = layouts_for(&records, &self.registry, self.config.dedup)?;
        self.primary.append_batch_deduped(&records, &layouts).map_err(ReplicateError::Primary)?;
        let msg = WireMessage::Batch {
            op_seq: self.next_op,
            payloads: records.iter().map(|r| r.bytes().to_vec()).collect(),
        };
        self.ship(msg)?;
        self.stats.batches_shipped += 1;
        self.stats.records_replicated += records.len() as u64;
        self.acked_records += records.len() as u64;
        Ok(())
    }

    /// Pins `label` to checkpoint `seq` on both nodes. Flushes staged
    /// records first so the tag's target is replicated before the tag.
    ///
    /// # Errors
    ///
    /// As [`ReplicaPair::commit`]; [`DurableError::UnknownSeq`] if no
    /// acknowledged record has sequence `seq`.
    pub fn tag(&mut self, label: &str, seq: u64) -> Result<(), ReplicateError> {
        self.commit()?;
        self.primary.tag(label, seq).map_err(ReplicateError::Primary)?;
        let msg = WireMessage::Tag { op_seq: self.next_op, label: label.to_string(), seq };
        self.ship(msg)?;
        self.stats.control_ops_shipped += 1;
        Ok(())
    }

    /// Removes the tag `label` on both nodes.
    ///
    /// # Errors
    ///
    /// As [`ReplicaPair::tag`]; [`DurableError::UnknownTag`] if absent.
    pub fn remove_tag(&mut self, label: &str) -> Result<(), ReplicateError> {
        self.commit()?;
        self.primary.remove_tag(label).map_err(ReplicateError::Primary)?;
        let msg = WireMessage::RemoveTag { op_seq: self.next_op, label: label.to_string() };
        self.ship(msg)?;
        self.stats.control_ops_shipped += 1;
        Ok(())
    }

    /// Atomically replaces both stores' contents — the replicated form
    /// of [`DurableStore::rewrite`], for retention merges and resets.
    /// Flushes staged records first (they may be merge inputs).
    ///
    /// # Errors
    ///
    /// As [`ReplicaPair::commit`] plus [`DurableStore::rewrite`]'s
    /// errors on either node.
    pub fn rewrite(
        &mut self,
        records: &[CheckpointRecord],
        tags: &[(String, u64)],
    ) -> Result<DedupStats, ReplicateError> {
        self.commit()?;
        let layouts = layouts_for(records, &self.registry, self.config.dedup)?;
        let stats =
            self.primary.rewrite(records, &layouts, tags).map_err(ReplicateError::Primary)?;
        let msg = WireMessage::Rewrite {
            op_seq: self.next_op,
            payloads: records.iter().map(|r| r.bytes().to_vec()).collect(),
            tags: tags.to_vec(),
        };
        self.ship(msg)?;
        self.stats.control_ops_shipped += 1;
        Ok(stats)
    }

    /// Ships one wire operation and blocks until the follower
    /// acknowledges it, retransmitting up to the configured budget.
    fn ship(&mut self, msg: WireMessage) -> Result<(), ReplicateError> {
        let op_seq = msg.op_seq();
        debug_assert_eq!(op_seq, self.next_op, "wire ops are assigned in order");
        self.next_op += 1;
        let frame = msg.encode();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.stats.wire_bytes += frame.len() as u64;
            self.transport.send_to_follower(frame.clone()).map_err(ReplicateError::Transport)?;
            self.pump()?;
            if self.acked_ops >= op_seq {
                return Ok(());
            }
            if attempts > self.config.max_retries {
                return Err(ReplicateError::NotReplicated { op_seq, attempts });
            }
            self.stats.retransmits += 1;
        }
    }

    /// Drains the link both ways: the follower applies (or discards)
    /// pending data frames and acknowledges; the primary absorbs
    /// acknowledgements.
    fn pump(&mut self) -> Result<(), ReplicateError> {
        while let Some(bytes) = self.transport.recv_at_follower() {
            let msg = WireMessage::decode(&bytes).map_err(ReplicateError::Wire)?;
            let mark =
                self.follower.apply(msg, &self.registry, self.config.dedup, &mut self.stats)?;
            let ack = WireMessage::Ack { op_seq: mark }.encode();
            self.stats.wire_bytes += ack.len() as u64;
            self.transport.send_to_primary(ack).map_err(ReplicateError::Transport)?;
        }
        while let Some(bytes) = self.transport.recv_at_primary() {
            match WireMessage::decode(&bytes).map_err(ReplicateError::Wire)? {
                WireMessage::Ack { op_seq } => self.acked_ops = self.acked_ops.max(op_seq),
                other => {
                    return Err(ReplicateError::Wire(format!(
                        "unexpected frame at primary: op {}",
                        other.op_seq()
                    )))
                }
            }
        }
        Ok(())
    }

    /// Records acknowledged to the client — durable on **both** nodes.
    pub fn acked_records(&self) -> u64 {
        self.acked_records
    }

    /// Records staged on the primary awaiting the next group commit.
    pub fn staged_records(&self) -> usize {
        self.staged.len()
    }

    /// The follower's replication high-water mark: the sequence number
    /// of the last checkpoint durably applied on the standby.
    pub fn replicated_watermark(&self) -> Option<u64> {
        self.follower.store.last_seq()
    }

    /// Wire operations durably applied by the follower.
    pub fn follower_applied_ops(&self) -> u64 {
        self.follower.applied_ops
    }

    /// Traffic accounting so far.
    pub fn stats(&self) -> ReplicationStats {
        self.stats
    }

    /// The primary's store, for inspection.
    pub fn primary_store(&self) -> &DurableStore<P> {
        &self.primary
    }

    /// The follower's store, for inspection.
    pub fn follower_store(&self) -> &DurableStore<F> {
        &self.follower.store
    }

    /// Tears the pair down, returning both filesystems and the
    /// transport. Staged (uncommitted) records are dropped — exactly
    /// what a crash would do to them.
    pub fn into_parts(self) -> (P, F, T) {
        (self.primary.into_fs(), self.follower.store.into_fs(), self.transport)
    }
}

impl<P: Vfs, F: Vfs, T: Transport> RecordSink for ReplicaPair<P, F, T> {
    fn append_record(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        self.append(record).map_err(storage)
    }

    fn append_records(&mut self, records: Vec<CheckpointRecord>) -> Result<(), CoreError> {
        self.staged.extend(records);
        self.commit().map_err(storage)
    }
}

fn storage(e: ReplicateError) -> CoreError {
    CoreError::Storage { what: e.to_string() }
}

/// Promotes a node's on-disk state to a standalone store: opens the
/// directory, recovering the durable record prefix exactly as a
/// restarted single-node store would. The recovered
/// [`CheckpointStore`] is what a restore after failover feeds on.
///
/// # Errors
///
/// As [`DurableStore::open`] — corruption beyond a torn tail is a hard
/// error, never silently dropped.
pub fn promote<F: Vfs>(
    fs: F,
    config: DurableConfig,
    registry: &ClassRegistry,
) -> Result<(DurableStore<F>, CheckpointStore), DurableError> {
    DurableStore::open(fs, config, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelTransport, TransportFault, TransportPlan};
    use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    use ickp_durable::MemFs;
    use ickp_heap::{FieldType, Heap, Value};

    fn three_records() -> (ClassRegistry, Vec<CheckpointRecord>) {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let o = heap.alloc(c).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut records = Vec::new();
        for v in 0..3 {
            heap.set_field(o, 0, Value::Int(v)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[o]).unwrap());
        }
        (heap.registry().clone(), records)
    }

    #[test]
    fn batch_replicates_and_acks_as_a_unit() {
        let (registry, records) = three_records();
        let config = ReplicateConfig { batch_records: 3, ..ReplicateConfig::default() };
        let mut pair = ReplicaPair::create(
            MemFs::new(),
            MemFs::new(),
            ChannelTransport::new(TransportPlan::none()),
            config,
            &registry,
        )
        .unwrap();
        for r in &records[..2] {
            pair.append(r.clone()).unwrap();
            assert_eq!(pair.acked_records(), 0, "below batch size: nothing acked");
        }
        pair.append(records[2].clone()).unwrap(); // third append fills the batch
        assert_eq!(pair.acked_records(), 3);
        assert_eq!(pair.replicated_watermark(), Some(2));
        assert_eq!(pair.stats().batches_shipped, 1);
        assert_eq!(pair.primary_store().record_count(), 3);
        assert_eq!(pair.follower_store().record_count(), 3);
    }

    #[test]
    fn promoted_follower_is_byte_identical() {
        let (registry, records) = three_records();
        let mut pair = ReplicaPair::create(
            MemFs::new(),
            MemFs::new(),
            ChannelTransport::new(TransportPlan::none()),
            ReplicateConfig { batch_records: 2, ..ReplicateConfig::default() },
            &registry,
        )
        .unwrap();
        for r in &records {
            pair.append(r.clone()).unwrap();
        }
        pair.commit().unwrap();
        pair.tag("head", 2).unwrap();
        let (_, follower_fs, _) = pair.into_parts();
        let (store, recovered) = promote(follower_fs, DurableConfig::default(), &registry).unwrap();
        assert_eq!(recovered.len(), records.len());
        for (want, got) in records.iter().zip(recovered.records()) {
            assert_eq!(want.seq(), got.seq());
            assert_eq!(want.bytes(), got.bytes(), "replication must be byte-exact");
        }
        assert_eq!(store.tags(), &[("head".to_string(), 2)]);
    }

    #[test]
    fn lost_frame_is_masked_by_retransmission() {
        let (registry, records) = three_records();
        // Fault index 4 lands on wire traffic (store creation claims no
        // transport ops here: private counters), so drop whatever the
        // 5th send is and let retransmission recover.
        let mut pair = ReplicaPair::create(
            MemFs::new(),
            MemFs::new(),
            ChannelTransport::new(TransportPlan::fault_at(0, TransportFault::Loss)),
            ReplicateConfig { batch_records: 1, ..ReplicateConfig::default() },
            &registry,
        )
        .unwrap();
        for r in &records {
            pair.append(r.clone()).unwrap();
        }
        assert_eq!(pair.acked_records(), 3);
        assert_eq!(pair.stats().retransmits, 1);
        assert_eq!(pair.follower_store().record_count(), 3);
    }

    #[test]
    fn partition_reports_not_replicated_but_primary_is_durable() {
        let (registry, records) = three_records();
        let mut pair = ReplicaPair::create(
            MemFs::new(),
            MemFs::new(),
            ChannelTransport::new(TransportPlan::fault_at(2, TransportFault::Partition)),
            ReplicateConfig { batch_records: 1, max_retries: 2, ..ReplicateConfig::default() },
            &registry,
        )
        .unwrap();
        pair.append(records[0].clone()).unwrap(); // ops 0 (data) + 1 (ack)
        let err = pair.append(records[1].clone()).unwrap_err(); // op 2 partitions
        assert!(matches!(err, ReplicateError::NotReplicated { op_seq: 2, attempts: 3 }), "{err}");
        assert_eq!(pair.acked_records(), 1, "second record never acked");
        assert_eq!(pair.primary_store().record_count(), 2, "but primary committed it");
        assert_eq!(pair.follower_store().record_count(), 1);
    }

    #[test]
    fn duplicate_frame_is_applied_once() {
        let (registry, records) = three_records();
        let mut pair = ReplicaPair::create(
            MemFs::new(),
            MemFs::new(),
            ChannelTransport::new(TransportPlan::fault_at(0, TransportFault::Duplicate)),
            ReplicateConfig { batch_records: 1, ..ReplicateConfig::default() },
            &registry,
        )
        .unwrap();
        for r in &records {
            pair.append(r.clone()).unwrap();
        }
        assert_eq!(pair.follower_store().record_count(), 3, "no double apply");
        assert_eq!(pair.stats().duplicates_dropped, 1);
    }
}
