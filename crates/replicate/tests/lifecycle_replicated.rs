//! The PR 6 sixteen-step lifecycle workload, replicated: appends, tags,
//! a policy-driven retention merge and a tag reset all flow through a
//! [`ReplicaPair`], and a kill is injected at **every** interleaved
//! fs/wire operation of the two-node system.
//!
//! The invariants extend the single-node lifecycle matrix to the
//! standby:
//!
//! * Each node recovers to the image of an *acknowledged* step (the one
//!   before or the one in flight) — never a torn hybrid.
//! * The follower never observes a dangling tag: every recovered tag on
//!   either node names a recovered checkpoint.
//! * The follower never observes a half-applied rewrite: a retention
//!   merge or reset is entirely present or entirely absent.
//! * Whatever survives still restores.

use ickp_core::{
    restore, CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable, RestorePolicy,
};
use ickp_durable::{DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, OpCounter};
use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
use ickp_lifecycle::{merge_records, RetentionPolicy};
use ickp_replicate::{ChannelTransport, Node, ReplicaPair, ReplicateConfig, TransportPlan};

fn config() -> ReplicateConfig {
    ReplicateConfig {
        durable: DurableConfig { segment_target_bytes: 256 },
        batch_records: 2,
        max_retries: 3,
        dedup: true,
    }
}

/// The logical content of a store: what must survive a kill exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Image {
    records: Vec<(u64, Vec<u8>)>,
    tags: Vec<(String, u64)>,
}

impl Image {
    fn of_disk(disk: &mut MemFs, registry: &ClassRegistry) -> Option<Image> {
        let (store, recovered) = DurableStore::open(&mut *disk, config().durable, registry).ok()?;
        Some(Image {
            records: recovered.records().iter().map(|r| (r.seq(), r.bytes().to_vec())).collect(),
            tags: store.tags().to_vec(),
        })
    }
}

/// Nine checkpoints over a five-node list, plus the seq-3 record the
/// script appends after resetting to the "alpha" tag (same shape as the
/// single-node lifecycle matrix).
fn workload() -> (ClassRegistry, Vec<CheckpointRecord>, CheckpointRecord) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[
                ("v", FieldType::Int),
                ("next", FieldType::Ref(None)),
                ("p0", FieldType::Long),
                ("p1", FieldType::Long),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let nodes: Vec<_> = (0..5).map(|_| heap.alloc(node).unwrap()).collect();
    for w in nodes.windows(2) {
        heap.set_field(w[0], 1, Value::Ref(Some(w[1]))).unwrap();
    }
    let registry = heap.registry().clone();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut records = Vec::new();
    for i in 0..9usize {
        heap.set_field(nodes[i % 5], 0, Value::Int(100 + i as i32)).unwrap();
        if i % 3 == 2 {
            heap.set_field(nodes[(i + 2) % 5], 0, Value::Int(i as i32)).unwrap();
        }
        records.push(ckp.checkpoint(&mut heap, &table, &[nodes[0]]).unwrap());
    }
    ckp.rollback(3);
    heap.set_field(nodes[0], 0, Value::Int(999)).unwrap();
    let post_reset = ckp.checkpoint(&mut heap, &table, &[nodes[0]]).unwrap();
    assert_eq!(post_reset.seq(), 3);
    (registry, records, post_reset)
}

const STEPS: usize = 16;

type MatrixPair<'a> = ReplicaPair<&'a mut FailFs, &'a mut FailFs, &'a mut ChannelTransport>;

/// A driver-side mirror of the replicated chain, used to compute the
/// retention merge and the reset exactly as the lifecycle manager does.
struct Mirror {
    chain: Vec<CheckpointRecord>,
    tags: Vec<(String, u64)>,
}

impl Mirror {
    fn image(&self) -> Image {
        Image {
            records: self.chain.iter().map(|r| (r.seq(), r.bytes().to_vec())).collect(),
            tags: self.tags.clone(),
        }
    }

    fn add_tag(&mut self, label: &str, seq: u64) {
        self.tags.push((label.to_string(), seq));
        self.tags.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// Applies lifecycle step `step` (1-based; step 0 is pair creation)
/// through the pair, keeping the mirror in lock-step.
fn apply_step(
    pair: &mut MatrixPair<'_>,
    mirror: &mut Mirror,
    step: usize,
    registry: &ClassRegistry,
    records: &[CheckpointRecord],
    post_reset: &CheckpointRecord,
) -> Result<(), String> {
    let err = |e: ickp_replicate::ReplicateError| e.to_string();
    match step {
        1..=3 => {
            let r = &records[step - 1]; // seqs 0,1,2
            pair.append(r.clone()).and_then(|()| pair.commit()).map_err(err)?;
            mirror.chain.push(r.clone());
        }
        4 => {
            pair.tag("alpha", 2).map_err(err)?; // alpha -> 2
            mirror.add_tag("alpha", 2);
        }
        5..=7 => {
            let r = &records[step - 2]; // seqs 3,4,5
            pair.append(r.clone()).and_then(|()| pair.commit()).map_err(err)?;
            mirror.chain.push(r.clone());
        }
        8 => {
            pair.tag("beta", 5).map_err(err)?; // beta -> 5
            mirror.add_tag("beta", 5);
        }
        9 | 10 => {
            let r = &records[step - 3]; // seqs 6,7
            pair.append(r.clone()).and_then(|()| pair.commit()).map_err(err)?;
            mirror.chain.push(r.clone());
        }
        11 => {
            // Retention maintenance: fold to budget 4, pinning the tags.
            let seqs: Vec<u64> = mirror.chain.iter().map(|r| r.seq()).collect();
            let pinned: Vec<u64> = mirror.tags.iter().map(|(_, s)| *s).collect();
            let plan = RetentionPolicy { budget: 4 }.plan(&seqs, &pinned);
            let mut merged = Vec::new();
            for group in &plan.groups {
                if group.len() == 1 {
                    merged.push(mirror.chain[group.start].clone());
                } else {
                    merged.push(
                        merge_records(&mirror.chain[group.clone()], registry)
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
            pair.rewrite(&merged, &mirror.tags).map_err(err)?;
            mirror.chain = merged;
        }
        12 => {
            pair.append(records[8].clone()).and_then(|()| pair.commit()).map_err(err)?; // seq 8
            mirror.chain.push(records[8].clone());
        }
        13 => {
            // reset_to("alpha"): cut the chain back to the tagged seq,
            // dropping tags that point past it.
            let cut: Vec<CheckpointRecord> =
                mirror.chain.iter().filter(|r| r.seq() <= 2).cloned().collect();
            let tags: Vec<(String, u64)> =
                mirror.tags.iter().filter(|(_, s)| *s <= 2).cloned().collect();
            pair.rewrite(&cut, &tags).map_err(err)?;
            mirror.chain = cut;
            mirror.tags = tags;
        }
        14 => {
            pair.append(post_reset.clone()).and_then(|()| pair.commit()).map_err(err)?; // seq 3
            mirror.chain.push(post_reset.clone());
        }
        15 => {
            pair.tag("final", 3).map_err(err)?;
            mirror.add_tag("final", 3);
        }
        _ => unreachable!("no step {step}"),
    }
    Ok(())
}

/// One run of the full script over fault-injectable nodes and link.
/// Returns per-acknowledged-step images and op-count boundaries, plus
/// what was left on both disks.
struct ScriptRun {
    images: Vec<Image>,
    bounds: Vec<u64>,
    primary_disk: MemFs,
    follower_disk: MemFs,
    crashed: bool,
}

fn run_script(
    registry: &ClassRegistry,
    records: &[CheckpointRecord],
    post_reset: &CheckpointRecord,
    primary_plan: FaultPlan,
    follower_plan: FaultPlan,
    transport_plan: TransportPlan,
) -> ScriptRun {
    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), primary_plan, counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), follower_plan, counter.clone());
    let mut link = ChannelTransport::with_counter(transport_plan, counter.clone());
    let mut images = Vec::new();
    let mut bounds = Vec::new();
    {
        let pair = ReplicaPair::create(&mut pfs, &mut ffs, &mut link, config(), registry);
        if let Ok(mut pair) = pair {
            let mut mirror = Mirror { chain: Vec::new(), tags: Vec::new() };
            images.push(mirror.image());
            bounds.push(counter.count());
            for step in 1..STEPS {
                match apply_step(&mut pair, &mut mirror, step, registry, records, post_reset) {
                    Ok(()) => {
                        images.push(mirror.image());
                        bounds.push(counter.count());
                    }
                    Err(_) => break,
                }
            }
        }
    }
    let killed_by_wire = link.crashed_node();
    let crashed = pfs.crashed() || ffs.crashed() || killed_by_wire.is_some();
    let mut primary_disk = pfs.into_recovered();
    let mut follower_disk = ffs.into_recovered();
    if killed_by_wire == Some(Node::Primary) {
        primary_disk.crash();
    }
    if killed_by_wire == Some(Node::Follower) {
        follower_disk.crash();
    }
    ScriptRun { images, bounds, primary_disk, follower_disk, crashed }
}

#[test]
fn replicated_lifecycle_script_survives_every_kill_point() {
    let (registry, records, post_reset) = workload();

    // Fault-free baseline: every step acknowledges on both nodes and the
    // script has the shape the single-node matrix pinned.
    let mut baseline = run_script(
        &registry,
        &records,
        &post_reset,
        FaultPlan::none(),
        FaultPlan::none(),
        TransportPlan::none(),
    );
    assert!(!baseline.crashed);
    assert_eq!(baseline.images.len(), STEPS, "baseline must acknowledge every step");
    let total_ops = *baseline.bounds.last().unwrap();
    assert!(total_ops >= 100, "two-node script too small to be interesting: {total_ops} ops");
    assert!(
        baseline.images[11].records.len() < baseline.images[10].records.len(),
        "maintain must fold records"
    );
    assert_eq!(
        baseline.images[13].records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![2],
        "reset must cut the chain back to the tagged seq"
    );
    assert_eq!(baseline.images[13].tags, vec![("alpha".to_string(), 2)]);
    assert_eq!(baseline.images[15].tags, vec![("alpha".to_string(), 2), ("final".to_string(), 3)]);
    // Both baseline disks hold the final image.
    for disk in [&mut baseline.primary_disk, &mut baseline.follower_disk] {
        let image = Image::of_disk(disk, &registry).expect("baseline reopen");
        assert_eq!(&image, baseline.images.last().unwrap());
    }
    let images = baseline.images;
    let bounds = baseline.bounds;

    // The kill matrix: every interleaved fs/wire op of the composed
    // system, all three layers armed; whichever owns op k dies.
    for k in 0..total_ops {
        let out = run_script(
            &registry,
            &records,
            &post_reset,
            FaultPlan::crash_at(k),
            FaultPlan::crash_at(k),
            TransportPlan::fault_at(k, ickp_replicate::TransportFault::Crash),
        );
        assert!(out.crashed, "op {k} must kill a node");
        // Which lifecycle step was in flight.
        let step = bounds.iter().position(|&b| b > k).expect("k < total_ops");
        for (node, mut disk) in [("primary", out.primary_disk), ("follower", out.follower_disk)] {
            let Some(image) = Image::of_disk(&mut disk, &registry) else {
                // Only a kill before the first commit may leave no store.
                assert_eq!(step, 0, "kill at op {k} ({node}): store unopenable at step {step}");
                continue;
            };
            let pre = step > 0 && image == images[step - 1];
            let post = image == images[step];
            assert!(
                pre || post,
                "kill at op {k} ({node}, step {step}): torn store — \
                 {} records, tags {:?}",
                image.records.len(),
                image.tags
            );
            // No dangling tag on either node, ever.
            for (label, seq) in &image.tags {
                assert!(
                    image.records.iter().any(|(s, _)| s == seq),
                    "kill at op {k} ({node}): tag {label:?} -> {seq} has no record"
                );
            }
            // Whatever survived still restores.
            if !image.records.is_empty() {
                let (_, recovered) =
                    DurableStore::open(&mut disk, config().durable, &registry).unwrap();
                restore(&recovered, &registry, RestorePolicy::Lenient)
                    .unwrap_or_else(|e| panic!("kill at op {k} ({node}): restore failed: {e}"));
            }
        }
    }
}

/// The rewrite steps specifically: a kill anywhere inside the retention
/// merge or the reset must leave the follower at the pre- or
/// post-rewrite image in full — no half-applied rewrite.
#[test]
fn follower_never_observes_a_half_applied_rewrite() {
    let (registry, records, post_reset) = workload();
    let baseline = run_script(
        &registry,
        &records,
        &post_reset,
        FaultPlan::none(),
        FaultPlan::none(),
        TransportPlan::none(),
    );
    let images = baseline.images;
    let bounds = baseline.bounds;
    // Ops belonging to step 11 (maintain) and step 13 (reset).
    for step in [11usize, 13] {
        let lo = bounds[step - 1];
        let hi = bounds[step];
        assert!(hi > lo, "step {step} performs I/O");
        for k in lo..hi {
            let out = run_script(
                &registry,
                &records,
                &post_reset,
                FaultPlan::crash_at(k),
                FaultPlan::crash_at(k),
                TransportPlan::fault_at(k, ickp_replicate::TransportFault::Crash),
            );
            assert!(out.crashed, "op {k} must kill a node");
            let mut disk = out.follower_disk;
            let image = Image::of_disk(&mut disk, &registry)
                .unwrap_or_else(|| panic!("follower unopenable after kill at op {k}"));
            assert!(
                image == images[step - 1] || image == images[step],
                "kill at op {k} (step {step}): follower holds a hybrid rewrite — \
                 {} records, tags {:?}",
                image.records.len(),
                image.tags
            );
        }
    }
}
