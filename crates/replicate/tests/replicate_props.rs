//! Randomized two-node replication properties: across random DAG
//! heaps, dirty fractions, batch sizes, checkpoint engines and injected
//! transport faults, the promoted follower's bytes are always the
//! primary's acknowledged prefix.
//!
//! Each case is fully determined by its seed (named in every assertion
//! for replay) and lands in one of three modes:
//!
//! * **masked** — random loss/duplication/reordering: the run must
//!   complete as if the link were perfect, both nodes byte-identical.
//! * **kill** — a crash armed at one random interleaved op across all
//!   three layers: whatever survives must be a byte-identical prefix,
//!   the survivor at least the acknowledged prefix, and promotable to
//!   completion.
//! * **partition** — a black-holed link must surface as an error with
//!   both nodes alive and the follower promotable.

use ickp_backend::{Engine, GenericBackend, ParallelBackend};
use ickp_core::{
    restore, verify_restore, CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp_durable::{DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, OpCounter};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;
use ickp_replicate::{
    ChannelTransport, Node, ReplicaPair, ReplicateConfig, TransportFault, TransportPlan,
};

/// A random DAG: node `i` only points at nodes with larger indices, so
/// the graph is acyclic but shares substructure freely.
fn random_dag(rng: &mut Prng) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let n = 4 + rng.index(12);
    let nodes: Vec<ObjectId> = (0..n).map(|_| heap.alloc(node).unwrap()).collect();
    for i in 0..n - 1 {
        let j = i + 1 + rng.index(n - i - 1);
        heap.set_field(nodes[i], 1, Value::Ref(Some(nodes[j]))).unwrap();
        if rng.next_bool() {
            let k = i + 1 + rng.index(n - i - 1);
            heap.set_field(nodes[i], 2, Value::Ref(Some(nodes[k]))).unwrap();
        }
    }
    let mut roots = vec![nodes[0]];
    if n > 6 && rng.next_bool() {
        roots.push(nodes[1]); // overlapping root sets share the DAG
    }
    (heap, roots)
}

/// Produces the case's records with one of the three checkpoint
/// engines, mutating a random dirty fraction of the live nodes between
/// rounds. Returns the records and the final heap for state verify.
fn produce(
    rng: &mut Prng,
    case: u64,
) -> (ClassRegistry, Heap, Vec<ObjectId>, Vec<CheckpointRecord>) {
    let (mut heap, roots) = random_dag(rng);
    let registry = heap.registry().clone();
    let rounds = 3 + rng.index(5);
    let dirty_pct = 10 + rng.index(90);
    let live: Vec<ObjectId> = heap.iter_live().collect();
    let mutate = |heap: &mut Heap, rng: &mut Prng, round: usize| {
        let mut touched = false;
        for &id in &live {
            if rng.index(100) < dirty_pct {
                heap.set_field(id, 0, Value::Int((round * 1000 + case as usize) as i32)).unwrap();
                touched = true;
            }
        }
        if !touched {
            heap.set_field(live[0], 0, Value::Int(round as i32)).unwrap();
        }
    };
    let mut records = Vec::new();
    match case % 3 {
        0 => {
            let table = MethodTable::derive(heap.registry());
            let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
            for round in 0..rounds {
                mutate(&mut heap, rng, round);
                records.push(ckp.checkpoint(&mut heap, &table, &roots).unwrap());
            }
        }
        1 => {
            let engine = Engine::ALL[rng.index(3)];
            let mut backend = GenericBackend::new(engine, &registry);
            for round in 0..rounds {
                mutate(&mut heap, rng, round);
                records.push(backend.checkpoint(&mut heap, &roots).unwrap());
            }
        }
        _ => {
            let mut backend = ParallelBackend::new(2 + rng.index(3), &registry);
            for round in 0..rounds {
                mutate(&mut heap, rng, round);
                records.push(backend.checkpoint(&mut heap, &roots).unwrap());
            }
        }
    }
    (registry, heap, roots, records)
}

/// Reboots a disk and asserts it holds a byte-identical prefix of
/// `expected`, returning the prefix length.
fn assert_prefix(
    disk: &mut MemFs,
    cfg: ReplicateConfig,
    registry: &ClassRegistry,
    expected: &[CheckpointRecord],
    who: &str,
    case: u64,
) -> usize {
    let (_, recovered) = DurableStore::open(&mut *disk, cfg.durable, registry)
        .unwrap_or_else(|e| panic!("case {case}: {who} recovery failed: {e}"));
    assert!(recovered.len() <= expected.len(), "case {case}: {who} has phantom records");
    for (want, got) in expected.iter().zip(recovered.records()) {
        assert_eq!(want.seq(), got.seq(), "case {case}: {who} seq mismatch");
        assert_eq!(want.bytes(), got.bytes(), "case {case}: {who} not byte-identical");
    }
    recovered.len()
}

#[test]
fn promoted_follower_bytes_equal_acknowledged_prefix() {
    for case in 0..36u64 {
        let mut rng = Prng::seed_from_u64(0x5e11_ca5e + case);
        let (registry, heap, roots, records) = produce(&mut rng, case);
        let cfg = ReplicateConfig {
            durable: DurableConfig { segment_target_bytes: [96, 256, 1024][rng.index(3)] as u64 },
            batch_records: 1 + rng.index(4),
            max_retries: 3,
            dedup: rng.next_bool(),
        };

        // Fault placement: random indices over a generous window; an
        // index owned by a filesystem simply never fires its transport
        // fault, which is itself a property worth sweeping.
        let mode = rng.below(3);
        let (pplan, fplan, tplan) = match mode {
            0 => {
                let mut plan = TransportPlan::none();
                for _ in 0..1 + rng.index(3) {
                    let fault =
                        [TransportFault::Loss, TransportFault::Duplicate, TransportFault::Reorder]
                            [rng.index(3)];
                    plan = plan.with(rng.index(120) as u64, fault);
                }
                (FaultPlan::none(), FaultPlan::none(), plan)
            }
            1 => {
                let k = rng.index(150) as u64;
                (
                    FaultPlan::crash_at(k),
                    FaultPlan::crash_at(k),
                    TransportPlan::fault_at(k, TransportFault::Crash),
                )
            }
            _ => {
                let t = rng.index(120) as u64;
                (
                    FaultPlan::none(),
                    FaultPlan::none(),
                    TransportPlan::fault_at(t, TransportFault::Partition),
                )
            }
        };

        let counter = OpCounter::new();
        let mut pfs = FailFs::with_counter(MemFs::new(), pplan, counter.clone());
        let mut ffs = FailFs::with_counter(MemFs::new(), fplan, counter.clone());
        let mut link = ChannelTransport::with_counter(tplan, counter.clone());
        let mut acked = 0u64;
        let result = match ReplicaPair::create(&mut pfs, &mut ffs, &mut link, cfg, &registry) {
            Err(e) => Err(e.to_string()),
            Ok(mut pair) => {
                let r = (|| {
                    for record in &records {
                        pair.append(record.clone()).map_err(|e| e.to_string())?;
                    }
                    pair.commit().map_err(|e| e.to_string())
                })();
                acked = pair.acked_records();
                r
            }
        };
        let killed_by_wire = link.crashed_node();
        let primary_dead = pfs.crashed() || killed_by_wire == Some(Node::Primary);
        let follower_dead = ffs.crashed() || killed_by_wire == Some(Node::Follower);
        let mut pdisk = pfs.into_recovered();
        let mut fdisk = ffs.into_recovered();
        if killed_by_wire == Some(Node::Primary) {
            pdisk.crash();
        }
        if killed_by_wire == Some(Node::Follower) {
            fdisk.crash();
        }

        match (&result, mode) {
            (Ok(()), _) => {
                // Completed (masked faults, or a fault index that was
                // never reached): both nodes must hold everything.
                assert_eq!(acked, records.len() as u64, "case {case}: incomplete ack");
                let plen = assert_prefix(&mut pdisk, cfg, &registry, &records, "primary", case);
                let flen = assert_prefix(&mut fdisk, cfg, &registry, &records, "follower", case);
                assert_eq!(plen, records.len(), "case {case}");
                assert_eq!(flen, records.len(), "case {case}");
                let (_, recovered) = DurableStore::open(&mut fdisk, cfg.durable, &registry)
                    .unwrap_or_else(|e| panic!("case {case}: follower reopen: {e}"));
                let restored = restore(&recovered, &registry, RestorePolicy::Lenient)
                    .unwrap_or_else(|e| panic!("case {case}: restore: {e}"));
                assert_eq!(
                    verify_restore(&heap, &roots, &restored).unwrap(),
                    None,
                    "case {case}: follower state diverges from the live heap"
                );
            }
            (Err(e), 2) => {
                // Partition: clean failure, both alive, follower is the
                // promotable side and holds at least the acked prefix.
                assert!(e.contains("unacknowledged"), "case {case}: {e}");
                assert!(!primary_dead && !follower_dead, "case {case}: partition killed a node");
                let flen = assert_prefix(&mut fdisk, cfg, &registry, &records, "follower", case);
                assert!(flen as u64 >= acked, "case {case}: follower lost acked records");
                assert_prefix(&mut pdisk, cfg, &registry, &records, "primary", case);
            }
            (Err(_), 1) => {
                // Kill: exactly one node died; the survivor holds at
                // least the acked prefix and promotes to completion.
                assert!(
                    primary_dead != follower_dead,
                    "case {case}: expected exactly one dead node"
                );
                let plen = assert_prefix(&mut pdisk, cfg, &registry, &records, "primary", case);
                let flen = assert_prefix(&mut fdisk, cfg, &registry, &records, "follower", case);
                let (survivor_disk, survivor_len) =
                    if primary_dead { (&mut fdisk, flen) } else { (&mut pdisk, plen) };
                assert!(
                    survivor_len as u64 >= acked,
                    "case {case}: survivor holds {survivor_len}, {acked} were acked"
                );
                let (mut store, _) =
                    DurableStore::open(&mut *survivor_disk, cfg.durable, &registry)
                        .unwrap_or_else(|e| panic!("case {case}: promotion failed: {e}"));
                for batch in records[survivor_len..].chunks(cfg.batch_records.max(1)) {
                    store
                        .append_batch(batch)
                        .unwrap_or_else(|e| panic!("case {case}: promoted append: {e}"));
                }
                drop(store);
                let full =
                    assert_prefix(&mut *survivor_disk, cfg, &registry, &records, "promoted", case);
                assert_eq!(full, records.len(), "case {case}: promoted store incomplete");
            }
            (Err(e), _) => panic!("case {case}: masked-fault run failed: {e}"),
        }
    }
}
