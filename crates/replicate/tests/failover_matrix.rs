//! The two-node failover crash matrix, plus one pinned test per fault
//! class (loss, reorder, duplicate, partition, primary kill mid-batch)
//! and an engine-to-wire end-to-end check.
//!
//! The matrix composes the existing single-store crash harness idea
//! with transport faults: one shared [`OpCounter`] numbers the
//! primary's I/O, the follower's I/O and every wire send, and
//! `enumerate_failover_points` sweeps a fault at every index. The
//! pinned tests freeze one representative scenario per fault class so a
//! regression names the class directly instead of an opaque index.

use ickp_backend::ParallelBackend;
use ickp_core::{verify_restore, CheckpointConfig, Checkpointer, MethodTable, RecordSink};
use ickp_durable::{DurableConfig, FailFs, FaultPlan, MemFs, OpCounter};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_replicate::{
    enumerate_failover_points, promote, ChannelTransport, ReplicaPair, ReplicateConfig,
    ReplicateError, TransportFault, TransportPlan,
};

type Snapshot = (Heap, Vec<ObjectId>);

/// A linked-list workload with a per-checkpoint heap snapshot, sized so
/// batches span segment rolls.
fn workload(n: usize) -> (ClassRegistry, Vec<Snapshot>, Vec<ickp_core::CheckpointRecord>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[("v", FieldType::Int), ("next", FieldType::Ref(None)), ("pad", FieldType::Long)],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let nodes: Vec<_> = (0..4).map(|_| heap.alloc(node).unwrap()).collect();
    for w in nodes.windows(2) {
        heap.set_field(w[0], 1, Value::Ref(Some(w[1]))).unwrap();
    }
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let registry = heap.registry().clone();
    let mut states = Vec::new();
    let mut records = Vec::new();
    for i in 0..n {
        heap.set_field(nodes[i % 4], 0, Value::Int(i as i32)).unwrap();
        heap.set_field(nodes[i % 4], 2, Value::Long(i as i64 * 7)).unwrap();
        records.push(ckp.checkpoint(&mut heap, &table, &[nodes[0]]).unwrap());
        states.push((heap.clone(), vec![nodes[0]]));
    }
    (registry, states, records)
}

fn config() -> ReplicateConfig {
    ReplicateConfig {
        durable: DurableConfig { segment_target_bytes: 128 },
        batch_records: 3,
        max_retries: 3,
        dedup: true,
    }
}

/// The acceptance gate: every interleaved fs/transport fault index
/// passes, for a batched, deduplicating pair crossing segment rolls.
#[test]
fn every_failover_point_recovers_the_acknowledged_prefix() {
    let (registry, states, records) = workload(7); // 7 % 3 != 0: a partial final batch
    let report = enumerate_failover_points(&registry, &records, config(), |n, restored| {
        let (heap, roots) = &states[n - 1];
        verify_restore(heap, roots, restored).expect("verify runs")
    })
    .unwrap();
    assert_eq!(report.records, 7);
    assert_eq!(report.kill_points as u64, report.total_ops);
    // 3 batches + acks at minimum; retransmit-free baseline.
    assert!(report.transport_ops >= 6, "got {} wire ops", report.transport_ops);
    assert_eq!(report.masked_faults, report.transport_ops * 3);
    assert_eq!(report.partition_points, report.transport_ops);
    // Acked counts are monotone in the kill index and start at zero.
    assert_eq!(report.acked.first(), Some(&0));
    assert!(report.acked.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*report.acked.last().unwrap(), records.len() as u64 - 1);
    assert!(report.promoted_extra > 0, "the ack-in-flight window must be exercised");
}

/// Builds a pair over caller-owned filesystems so the test can inspect
/// the disks afterwards.
fn pair_over<'a>(
    pfs: &'a mut FailFs,
    ffs: &'a mut FailFs,
    link: &'a mut ChannelTransport,
    cfg: ReplicateConfig,
    registry: &ClassRegistry,
) -> ReplicaPair<&'a mut FailFs, &'a mut FailFs, &'a mut ChannelTransport> {
    ReplicaPair::create(pfs, ffs, link, cfg, registry).expect("create must not fault here")
}

/// Pinned: a lost data frame is masked by retransmission, end to end.
#[test]
fn pinned_loss_is_masked_by_retransmission() {
    let (registry, states, records) = workload(3);
    let cfg = ReplicateConfig { batch_records: 3, ..config() };
    // Locate the first wire send with a fault-free baseline.
    let first_send = {
        let counter = OpCounter::new();
        let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
        let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
        let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
        let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
        for r in &records {
            pair.append(r.clone()).unwrap();
        }
        drop(pair);
        link.op_log()[0]
    };

    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut link = ChannelTransport::with_counter(
        TransportPlan::fault_at(first_send, TransportFault::Loss),
        counter.clone(),
    );
    let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
    for r in &records {
        pair.append(r.clone()).unwrap();
    }
    assert_eq!(pair.acked_records(), 3, "loss must be invisible to the client");
    assert!(pair.stats().retransmits >= 1, "the loss must actually have been masked");
    assert_eq!(pair.replicated_watermark(), Some(2));
    drop(pair);

    let mut disk = ffs.into_recovered();
    let (_, recovered) = promote(&mut disk, cfg.durable, &registry).unwrap();
    assert_eq!(recovered.len(), 3);
    let restored =
        ickp_core::restore(&recovered, &registry, ickp_core::RestorePolicy::Lenient).unwrap();
    let (heap, roots) = &states[2];
    assert_eq!(verify_restore(heap, roots, &restored).unwrap(), None);
}

/// Pinned: a duplicated data frame is applied exactly once.
#[test]
fn pinned_duplicate_applies_once() {
    let (registry, _, records) = workload(3);
    let cfg = ReplicateConfig { batch_records: 1, ..config() };
    let mut link = ChannelTransport::new(TransportPlan::fault_at(0, TransportFault::Duplicate));
    let mut pair =
        ReplicaPair::create(MemFs::new(), MemFs::new(), &mut link, cfg, &registry).unwrap();
    for r in &records {
        pair.append(r.clone()).unwrap();
    }
    assert_eq!(pair.acked_records(), 3);
    assert_eq!(pair.stats().duplicates_dropped, 1, "second copy discarded, not applied");
    assert_eq!(pair.follower_store().record_count(), 3);
    assert_eq!(pair.primary_store().record_count(), 3);
}

/// Pinned: a reordered frame cannot be applied out of order — the
/// follower's op-sequence discipline holds it to sequential application
/// (with the synchronous pump, reordering degenerates to a front-push
/// on an empty queue, and a future op would be dropped and re-acked).
#[test]
fn pinned_reorder_preserves_application_order() {
    let (registry, _, records) = workload(4);
    let cfg = ReplicateConfig { batch_records: 1, ..config() };
    // Reorder every wire send the run makes.
    let mut plan = TransportPlan::none();
    for t in 0..64 {
        plan = plan.with(t, TransportFault::Reorder);
    }
    let mut link = ChannelTransport::new(plan);
    let mut pair =
        ReplicaPair::create(MemFs::new(), MemFs::new(), &mut link, cfg, &registry).unwrap();
    for r in &records {
        pair.append(r.clone()).unwrap();
    }
    assert_eq!(pair.acked_records(), 4);
    let follower_seqs: Vec<u64> = pair.follower_store().seqs().to_vec();
    assert_eq!(follower_seqs, vec![0, 1, 2, 3], "application stayed sequential");
}

/// Pinned: a partition surfaces as `NotReplicated` after the retransmit
/// budget, kills nobody, and the follower (the promotable quorum side)
/// still holds every client-acknowledged record.
#[test]
fn pinned_partition_fails_cleanly_and_follower_promotes() {
    let (registry, states, records) = workload(6);
    let cfg = ReplicateConfig { batch_records: 3, max_retries: 2, ..config() };
    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    // Find the second data send (the second batch's frame) and partition there.
    let second_send = {
        let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
        let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
        for r in &records {
            pair.append(r.clone()).unwrap();
        }
        drop(pair);
        link.op_log()[2] // sends: batch1, ack1, batch2, ...
    };

    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut link = ChannelTransport::with_counter(
        TransportPlan::fault_at(second_send, TransportFault::Partition),
        counter.clone(),
    );
    let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
    let mut acked_before_failure = 0;
    let mut failure = None;
    for r in &records {
        match pair.append(r.clone()) {
            Ok(()) => acked_before_failure = pair.acked_records(),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    let err = failure.expect("the partition must surface");
    assert!(
        matches!(err, ReplicateError::NotReplicated { attempts: 3, .. }),
        "unexpected error: {err}"
    );
    assert_eq!(acked_before_failure, 3, "first batch was acknowledged before the partition");
    drop(pair);
    assert!(!pfs.crashed() && !ffs.crashed(), "a partition kills nobody");

    // Promote the follower: it must hold at least the acknowledged
    // prefix, byte-for-byte, and restore cleanly.
    let mut disk = ffs.into_recovered();
    let (store, recovered) = promote(&mut disk, cfg.durable, &registry).unwrap();
    assert!(recovered.len() as u64 >= acked_before_failure);
    for (want, got) in records.iter().zip(recovered.records()) {
        assert_eq!(want.bytes(), got.bytes(), "seq {}", got.seq());
    }
    assert_eq!(store.last_seq(), Some(recovered.len() as u64 - 1));
    let restored =
        ickp_core::restore(&recovered, &registry, ickp_core::RestorePolicy::Lenient).unwrap();
    let (heap, roots) = &states[recovered.len() - 1];
    assert_eq!(verify_restore(heap, roots, &restored).unwrap(), None);
}

/// Pinned: killing the primary mid-batch (between the first and second
/// frame write of a group commit) leaves the un-acknowledged batch
/// entirely absent after recovery — never a torn prefix of it — and the
/// follower promotes at the acknowledged prefix.
#[test]
fn pinned_primary_kill_mid_batch_loses_the_whole_batch() {
    let (registry, states, records) = workload(6);
    let cfg = ReplicateConfig { batch_records: 3, ..config() };
    // Baseline: ops consumed by creating both stores and committing the
    // first batch (appends + syncs + manifest swap + wire round trip).
    let (after_create, after_first_batch) = {
        let counter = OpCounter::new();
        let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
        let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
        let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
        let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
        let after_create = counter.count();
        for r in &records[..3] {
            pair.append(r.clone()).unwrap();
        }
        (after_create, counter.count())
    };
    // The second batch's second frame write: one op past the first
    // append of the batch starting at `after_first_batch`.
    let kill_at = after_first_batch + 1;
    assert!(kill_at > after_create);

    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::crash_at(kill_at), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
    let mut pair = pair_over(&mut pfs, &mut ffs, &mut link, cfg, &registry);
    let mut failure = None;
    for r in &records {
        if let Err(e) = pair.append(r.clone()) {
            failure = Some(e);
            break;
        }
    }
    let err = failure.expect("the kill must surface");
    assert!(matches!(err, ReplicateError::Primary(_)), "unexpected error: {err}");
    let acked = pair.acked_records();
    assert_eq!(acked, 3, "only the first batch was acknowledged");
    drop(pair);
    assert!(pfs.crashed(), "the kill hit the primary's filesystem");
    assert!(!ffs.crashed());

    // The primary's disk recovers to exactly the acknowledged prefix:
    // the torn batch vanishes as a unit.
    let mut pdisk = pfs.into_recovered();
    let (_, precovered) = promote(&mut pdisk, cfg.durable, &registry).unwrap();
    assert_eq!(precovered.len(), 3, "no frame of the torn batch may survive");
    for (want, got) in records.iter().zip(precovered.records()) {
        assert_eq!(want.bytes(), got.bytes());
    }

    // Promote the follower and finish the workload there.
    let mut fdisk = ffs.into_recovered();
    let (mut promoted, frecovered) = promote(&mut fdisk, cfg.durable, &registry).unwrap();
    assert_eq!(frecovered.len(), 3);
    promoted.append_batch(&records[3..]).unwrap();
    drop(promoted);
    let (_, full) = promote(&mut fdisk, cfg.durable, &registry).unwrap();
    assert_eq!(full.len(), 6);
    let restored = ickp_core::restore(&full, &registry, ickp_core::RestorePolicy::Lenient).unwrap();
    let (heap, roots) = &states[5];
    assert_eq!(verify_restore(heap, roots, &restored).unwrap(), None);
}

/// End to end: the parallel checkpoint engine streams through the
/// replicated sink, and the follower ends byte-identical to the
/// primary with the live heap restorable from either.
#[test]
fn parallel_engine_streams_through_the_replicated_sink() {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for i in 0..8 {
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        roots.push(head);
    }
    let registry = heap.registry().clone();
    let mut backend = ParallelBackend::new(3, &registry);

    let cfg = ReplicateConfig { batch_records: 2, dedup: true, ..ReplicateConfig::default() };
    let mut pair = ReplicaPair::create(
        MemFs::new(),
        MemFs::new(),
        ChannelTransport::new(TransportPlan::none()),
        cfg,
        &registry,
    )
    .unwrap();
    for round in 0..6 {
        heap.set_field(roots[round % 8], 0, Value::Int(1000 + round as i32)).unwrap();
        backend.checkpoint_into(&mut heap, &roots, &mut pair).unwrap();
    }
    pair.commit().unwrap();
    assert_eq!(pair.acked_records(), 6);
    assert_eq!(pair.stats().batches_shipped, 3);

    let (mut pfs, mut ffs, _) = pair.into_parts();
    let (_, primary) = promote(&mut pfs, cfg.durable, &registry).unwrap();
    let (_, follower) = promote(&mut ffs, cfg.durable, &registry).unwrap();
    assert_eq!(primary.len(), 6);
    assert_eq!(follower.len(), 6);
    for (p, f) in primary.records().iter().zip(follower.records()) {
        assert_eq!(p.seq(), f.seq());
        assert_eq!(p.bytes(), f.bytes(), "replicated log must be byte-identical");
    }
    let restored =
        ickp_core::restore(&follower, &registry, ickp_core::RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&heap, &roots, &restored).unwrap(), None);
}

/// The batched sink also honors `RecordSink::append_records`: one call,
/// one group commit, one wire batch.
#[test]
fn append_records_is_one_wire_batch() {
    let (registry, _, records) = workload(5);
    let cfg = ReplicateConfig { batch_records: 2, ..ReplicateConfig::default() };
    let mut pair = ReplicaPair::create(
        MemFs::new(),
        MemFs::new(),
        ChannelTransport::new(TransportPlan::none()),
        cfg,
        &registry,
    )
    .unwrap();
    let sink: &mut dyn RecordSink = &mut pair;
    sink.append_records(records.clone()).unwrap();
    assert_eq!(pair.acked_records(), 5);
    assert_eq!(pair.stats().batches_shipped, 1, "bulk append is a single group commit");
    assert_eq!(pair.follower_store().record_count(), 5);
}
