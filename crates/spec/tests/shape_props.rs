//! Randomized tests over *random specialization declarations*: any valid
//! shape compiles, and its plan behaves correctly on a heap built to
//! conform to it.
//!
//! Previously written with `proptest`; rewritten over the in-repo seeded
//! PRNG so the suite builds with no network access. Each case is fully
//! determined by its seed, named in the assertion message for replay.

use ickp_core::{CheckpointKind, StreamWriter, TraversalStats};
use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;
use ickp_spec::{GuardMode, ListPattern, NodePattern, Op, SpecShape, Specializer};

/// Four classes, each with 2 int slots and 3 unconstrained ref slots
/// (slot 2 doubles as a list `next` link).
fn registry() -> (ClassRegistry, Vec<ClassId>) {
    let mut reg = ClassRegistry::new();
    let classes = (0..4)
        .map(|i| {
            reg.define(
                &format!("C{i}"),
                None,
                &[
                    ("a", FieldType::Int),
                    ("b", FieldType::Int),
                    ("r0", FieldType::Ref(None)),
                    ("r1", FieldType::Ref(None)),
                    ("r2", FieldType::Ref(None)),
                ],
            )
            .unwrap()
        })
        .collect();
    (reg, classes)
}

fn random_node_pattern(rng: &mut Prng) -> NodePattern {
    match rng.below(3) {
        0 => NodePattern::MayModify,
        1 => NodePattern::FrozenHere,
        _ => NodePattern::Unmodified,
    }
}

fn random_list_pattern(rng: &mut Prng, len: usize) -> ListPattern {
    match rng.below(4) {
        0 => ListPattern::MayModify,
        1 => ListPattern::Unmodified,
        2 => ListPattern::LastOnly,
        _ => {
            let n = rng.index(len + 1);
            ListPattern::Positions((0..n).map(|_| rng.index(len)).collect())
        }
    }
}

fn random_list(rng: &mut Prng) -> SpecShape {
    let class = ClassId::from_index(rng.index(4));
    let len = 1 + rng.index(4);
    let pattern = random_list_pattern(rng, len);
    SpecShape::list(class, 2, len, pattern)
}

/// Random shape over the class family; children occupy ref slots 3/4
/// (slot 2 is reserved for list links). Never `Dynamic` at the root.
fn random_shape(rng: &mut Prng, depth: usize) -> SpecShape {
    if depth == 0 || rng.ratio(1, 3) {
        // Leaf: a bare object or a list.
        if rng.next_bool() {
            SpecShape::object(ClassId::from_index(rng.index(4)), random_node_pattern(rng), vec![])
        } else {
            random_list(rng)
        }
    } else {
        let nkids = rng.index(3);
        let children =
            (0..nkids).map(|i| (3 + i, random_shape(rng, depth - 1))).collect::<Vec<_>>();
        SpecShape::object(ClassId::from_index(rng.index(4)), random_node_pattern(rng), children)
    }
}

/// Materializes a heap subgraph conforming to `shape`; returns its root.
fn materialize(heap: &mut Heap, shape: &SpecShape) -> ObjectId {
    match shape {
        SpecShape::Object { class, children, .. } => {
            let obj = heap.alloc(*class).unwrap();
            for (slot, child) in children {
                let c = materialize(heap, child);
                heap.set_field(obj, *slot, Value::Ref(Some(c))).unwrap();
            }
            obj
        }
        SpecShape::List { elem_class, next_slot, len, .. } => {
            let mut next: Option<ObjectId> = None;
            for _ in 0..*len {
                let e = heap.alloc(*elem_class).unwrap();
                heap.set_field(e, *next_slot, Value::Ref(next)).unwrap();
                next = Some(e);
            }
            next.expect("len >= 1")
        }
        SpecShape::Dynamic => {
            // Conforming choice for a dynamic edge: a bare leaf.
            heap.alloc(ClassId::from_index(0)).unwrap()
        }
    }
}

fn count_ops(shape: &SpecShape, reg: &ClassRegistry) -> (usize, usize) {
    let plan = Specializer::new(reg).compile(shape).unwrap();
    let tests = plan.ops().iter().filter(|o| matches!(o, Op::TestModified { .. })).count();
    let records = plan.ops().iter().filter(|o| matches!(o, Op::Record { .. })).count();
    (tests, records)
}

/// Every generated shape validates and compiles, with exactly one record
/// site per test site.
#[test]
fn every_shape_compiles() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0x5a9e_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let (reg, _) = registry();
        shape.validate(&reg).unwrap();
        let (tests, records) = count_ops(&shape, &reg);
        assert_eq!(tests, records, "case {case}: tests and records are paired");
    }
}

/// On a clean conforming heap the plan records nothing; with every object
/// marked modified it records exactly its record-site count.
#[test]
fn plan_execution_matches_static_counts() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0x3a71_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let (reg, _) = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);

        // Clean heap: nothing recorded.
        heap.reset_all_modified();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        assert_eq!(stats.objects_recorded, 0, "case {case}");

        // Everything dirty: every record site fires exactly once.
        heap.mark_all_modified();
        let (tests, records) = {
            let t = plan.ops().iter().filter(|o| matches!(o, Op::TestModified { .. })).count();
            let r = plan.ops().iter().filter(|o| matches!(o, Op::Record { .. })).count();
            (t, r)
        };
        let mut writer = StreamWriter::new(1, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        assert_eq!(stats.objects_recorded as usize, records, "case {case}");
        assert_eq!(stats.flag_tests as usize, tests, "case {case}");

        // And the stream decodes.
        let bytes = writer.finish();
        let decoded = ickp_core::decode(&bytes, heap.registry()).unwrap();
        assert_eq!(decoded.objects.len(), records, "case {case}");
    }
}

/// Register compaction preserves semantics on arbitrary shapes: the
/// optimized plan emits the identical stream with no more registers.
#[test]
fn register_compaction_is_semantics_preserving() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0x4e9c_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let (reg, _) = registry();
        let spec = Specializer::new(&reg);
        let plan = spec.compile(&shape).unwrap();
        let optimized = spec.compile_optimized(&shape).unwrap();
        assert!(optimized.num_regs() <= plan.num_regs(), "case {case}");
        assert_eq!(optimized.ops().len(), plan.ops().len(), "case {case}");

        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);
        heap.mark_all_modified();
        let mut heap2 = heap.clone();

        let run = |plan: &ickp_spec::Plan, heap: &mut Heap| {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            let table = ickp_core::MethodTable::derive(heap.registry());
            plan.executor()
                .run(heap, root, &mut writer, GuardMode::Checked, Some(&table), &mut stats)
                .unwrap();
            writer.finish()
        };
        assert_eq!(run(&plan, &mut heap), run(&optimized, &mut heap2), "case {case}");
    }
}

/// Plan execution is deterministic: two runs over the same dirty state
/// produce identical streams.
#[test]
fn plan_execution_is_deterministic() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0xd7e2_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let (reg, _) = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);
        heap.mark_all_modified();

        let run = |heap: &mut Heap| {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            plan.executor()
                .run(heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
                .unwrap();
            writer.finish()
        };
        let mut clone = heap.clone();
        let a = run(&mut heap);
        let b = run(&mut clone);
        assert_eq!(a, b, "case {case}");
    }
}
