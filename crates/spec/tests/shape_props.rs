//! Property tests over *random specialization declarations*: any valid
//! shape compiles, and its plan behaves correctly on a heap built to
//! conform to it.

use ickp_core::{CheckpointKind, StreamWriter, TraversalStats};
use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_spec::{GuardMode, ListPattern, NodePattern, Op, SpecShape, Specializer};
use proptest::prelude::*;

/// Four classes, each with 2 int slots and 3 unconstrained ref slots
/// (slot 2 doubles as a list `next` link).
fn registry() -> (ClassRegistry, Vec<ClassId>) {
    let mut reg = ClassRegistry::new();
    let classes = (0..4)
        .map(|i| {
            reg.define(
                &format!("C{i}"),
                None,
                &[
                    ("a", FieldType::Int),
                    ("b", FieldType::Int),
                    ("r0", FieldType::Ref(None)),
                    ("r1", FieldType::Ref(None)),
                    ("r2", FieldType::Ref(None)),
                ],
            )
            .unwrap()
        })
        .collect();
    (reg, classes)
}

fn arb_node_pattern() -> impl Strategy<Value = NodePattern> {
    prop_oneof![
        Just(NodePattern::MayModify),
        Just(NodePattern::FrozenHere),
        Just(NodePattern::Unmodified),
    ]
}

fn arb_list_pattern(len: usize) -> impl Strategy<Value = ListPattern> {
    prop_oneof![
        Just(ListPattern::MayModify),
        Just(ListPattern::Unmodified),
        Just(ListPattern::LastOnly),
        proptest::collection::vec(0..len, 0..=len).prop_map(ListPattern::Positions),
    ]
}

/// Random shape over the class family; children occupy ref slots 3/4
/// (slot 2 is reserved for list links).
fn arb_shape() -> impl Strategy<Value = SpecShape> {
    let leaf = (0usize..4, arb_node_pattern())
        .prop_map(|(c, p)| SpecShape::object(ClassId::from_index(c), p, vec![]));
    let list = (0usize..4, 1usize..5).prop_flat_map(|(c, len)| {
        arb_list_pattern(len)
            .prop_map(move |p| SpecShape::list(ClassId::from_index(c), 2, len, p))
    });
    prop_oneof![leaf, list.clone()].prop_recursive(3, 24, 2, move |inner| {
        (
            0usize..4,
            arb_node_pattern(),
            proptest::collection::vec(inner, 0..=2),
        )
            .prop_map(|(c, p, kids)| {
                let children =
                    kids.into_iter().enumerate().map(|(i, k)| (3 + i, k)).collect::<Vec<_>>();
                SpecShape::object(ClassId::from_index(c), p, children)
            })
    })
}

/// Materializes a heap subgraph conforming to `shape`; returns its root.
fn materialize(heap: &mut Heap, shape: &SpecShape) -> ObjectId {
    match shape {
        SpecShape::Object { class, children, .. } => {
            let obj = heap.alloc(*class).unwrap();
            for (slot, child) in children {
                let c = materialize(heap, child);
                heap.set_field(obj, *slot, Value::Ref(Some(c))).unwrap();
            }
            obj
        }
        SpecShape::List { elem_class, next_slot, len, .. } => {
            let mut next: Option<ObjectId> = None;
            for _ in 0..*len {
                let e = heap.alloc(*elem_class).unwrap();
                heap.set_field(e, *next_slot, Value::Ref(next)).unwrap();
                next = Some(e);
            }
            next.expect("len >= 1")
        }
        SpecShape::Dynamic => {
            // Conforming choice for a dynamic edge: a bare leaf.
            heap.alloc(ClassId::from_index(0)).unwrap()
        }
    }
}

fn count_ops(shape: &SpecShape, reg: &ClassRegistry) -> (usize, usize) {
    let plan = Specializer::new(reg).compile(shape).unwrap();
    let tests =
        plan.ops().iter().filter(|o| matches!(o, Op::TestModified { .. })).count();
    let records = plan.ops().iter().filter(|o| matches!(o, Op::Record { .. })).count();
    (tests, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated shape validates and compiles, with exactly one
    /// record site per test site.
    #[test]
    fn every_shape_compiles(shape in arb_shape()) {
        let (reg, _) = registry();
        shape.validate(&reg).unwrap();
        let (tests, records) = count_ops(&shape, &reg);
        prop_assert_eq!(tests, records, "tests and records are paired");
    }

    /// On a clean conforming heap the plan records nothing; with every
    /// object marked modified it records exactly its record-site count.
    #[test]
    fn plan_execution_matches_static_counts(shape in arb_shape()) {
        // Roots must be objects or lists (the compiler rejects Dynamic
        // roots); arb_shape never produces Dynamic at the root.
        let (reg, _) = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);

        // Clean heap: nothing recorded.
        heap.reset_all_modified();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        prop_assert_eq!(stats.objects_recorded, 0);

        // Everything dirty: every record site fires exactly once.
        heap.mark_all_modified();
        let (tests, records) = {
            let t = plan.ops().iter().filter(|o| matches!(o, Op::TestModified { .. })).count();
            let r = plan.ops().iter().filter(|o| matches!(o, Op::Record { .. })).count();
            (t, r)
        };
        let mut writer = StreamWriter::new(1, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        prop_assert_eq!(stats.objects_recorded as usize, records);
        prop_assert_eq!(stats.flag_tests as usize, tests);

        // And the stream decodes.
        let bytes = writer.finish();
        let decoded = ickp_core::decode(&bytes, heap.registry()).unwrap();
        prop_assert_eq!(decoded.objects.len(), records);
    }

    /// Register compaction preserves semantics on arbitrary shapes: the
    /// optimized plan emits the identical stream with no more registers.
    #[test]
    fn register_compaction_is_semantics_preserving(shape in arb_shape()) {
        let (reg, _) = registry();
        let spec = Specializer::new(&reg);
        let plan = spec.compile(&shape).unwrap();
        let optimized = spec.compile_optimized(&shape).unwrap();
        prop_assert!(optimized.num_regs() <= plan.num_regs());
        prop_assert_eq!(optimized.ops().len(), plan.ops().len());

        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);
        heap.mark_all_modified();
        let mut heap2 = heap.clone();

        let mut run = |plan: &ickp_spec::Plan, heap: &mut Heap| {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            let table = ickp_core::MethodTable::derive(heap.registry());
            plan.executor()
                .run(heap, root, &mut writer, GuardMode::Checked, Some(&table), &mut stats)
                .unwrap();
            writer.finish()
        };
        prop_assert_eq!(run(&plan, &mut heap), run(&optimized, &mut heap2));
    }

    /// Plan execution is deterministic: two runs over the same dirty
    /// state produce identical streams.
    #[test]
    fn plan_execution_is_deterministic(shape in arb_shape()) {
        let (reg, _) = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);
        heap.mark_all_modified();

        let run = |heap: &mut Heap| {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            plan.executor()
                .run(heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
                .unwrap();
            writer.finish()
        };
        let mut clone = heap.clone();
        let a = run(&mut heap);
        let b = run(&mut clone);
        prop_assert_eq!(a, b);
    }
}
