//! # ickp-spec — the checkpoint specializer
//!
//! Rust reproduction of JSpec/Tempo as used in *Lawall & Muller (DSN
//! 2000)*: automatic program specialization of the generic checkpointing
//! code of `ickp-core` with respect to
//!
//! 1. the **structure** of compound objects ([`SpecShape`]) — replaces
//!    virtual `record`/`fold` calls by inlined, slot-indexed loads; and
//! 2. the **modification pattern** of a program phase ([`NodePattern`],
//!    [`ListPattern`]) — deletes modified-flag tests and whole subtree
//!    traversals that the pattern proves dead.
//!
//! The pipeline mirrors the paper's Figure 3:
//!
//! ```text
//! SpecShape (specialization classes)
//!    │  validate               (JSCC's checking)
//!    ▼
//! bta::divide  → Division      (Tempo's binding-time analysis)
//!    │
//!    ▼
//! Specializer::compile → Plan  (Tempo specialization + inlining)
//!    │                     │
//!    │                     └─ residual::render → Java-like source (Figs. 5/6)
//!    ▼
//! PlanExecutor / SpecializedCheckpointer   (the optimized checkpointer)
//! ```
//!
//! ## Example
//!
//! ```
//! use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
//! use ickp_spec::{
//!     GuardMode, ListPattern, NodePattern, SpecShape, SpecializedCheckpointer, Specializer,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let elem = reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
//! let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))])?;
//! let mut heap = Heap::new(reg);
//!
//! // Build: holder -> e0 -> e1
//! let e1 = heap.alloc(elem)?;
//! let e0 = heap.alloc(elem)?;
//! heap.set_field(e0, 1, Value::Ref(Some(e1)))?;
//! let h = heap.alloc(holder)?;
//! heap.set_field(h, 0, Value::Ref(Some(e0)))?;
//!
//! // Declare the shape: this phase modifies only the last element.
//! let shape = SpecShape::object(
//!     holder,
//!     NodePattern::FrozenHere,
//!     vec![(0, SpecShape::list(elem, 1, 2, ListPattern::LastOnly))],
//! );
//! let plan = Specializer::new(heap.registry()).compile(&shape)?;
//!
//! heap.reset_all_modified();
//! heap.set_field(e1, 0, Value::Int(7))?; // dirty the tail
//!
//! let mut ckp = SpecializedCheckpointer::new(GuardMode::Checked);
//! let rec = ckp.checkpoint(&mut heap, &plan, &[h], None)?;
//! assert_eq!(rec.stats().objects_recorded, 1);
//! assert_eq!(rec.stats().flag_tests, 1);     // only the tail is tested
//! assert_eq!(rec.stats().virtual_calls, 0);  // no dispatch at all
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bta;
mod compile;
mod driver;
mod error;
mod infer;
mod opt;
mod phase;
mod plan;
mod residual;
mod shape;

pub use bta::{divide, BindingTime, Division, DivisionEntry};
pub use compile::Specializer;
pub use driver::{FallbackOutcome, SpecializedCheckpointer};
pub use error::SpecError;
pub use infer::ProfileRecorder;
pub use opt::compact_registers;
pub use phase::PhasePlans;
pub use plan::{
    generic_incremental_into, record_with_template, GuardMode, Op, Plan, PlanExecutor,
    RecordTemplate, Reg,
};
pub use residual::render;
pub use shape::{ListPattern, NodePattern, SpecShape};
