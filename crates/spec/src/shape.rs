//! The declaration language: specialization classes.
//!
//! A [`SpecShape`] is the Rust rendering of the paper's *specialization
//! classes* (§3.2): a programmer-supplied, machine-checked description of
//!
//! 1. the **static structure** of a compound object — which reference
//!    fields always hold instances of which classes, and how long each
//!    linked list is — enabling virtual calls to be replaced by inlined
//!    direct field accesses; and
//! 2. the **modification pattern** of a program phase — which parts of the
//!    structure can possibly have been modified since the previous
//!    checkpoint — enabling flag tests and whole subtree traversals to be
//!    deleted.
//!
//! Shapes are *validated* against the class registry
//! ([`SpecShape::validate`]) before compilation, so a declaration that
//! mis-describes the program is rejected at specialization time.

use crate::error::SpecError;
use ickp_heap::{ClassId, ClassRegistry, FieldType};

/// Modification pattern for a single object node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodePattern {
    /// The object may be modified: test its flag at run time (generic
    /// behaviour, structure benefits only).
    MayModify,
    /// The object is known unmodified in this phase, but its children must
    /// still be considered: no test, no record, just descend.
    ///
    /// This is the Figure 6 treatment of the `Attributes` object itself.
    FrozenHere,
    /// The object *and everything below it* is known unmodified: the whole
    /// subtree disappears from the specialized checkpointer.
    ///
    /// This is the Figure 6 treatment of the `se`/`et` subtrees during
    /// binding-time analysis.
    Unmodified,
}

/// Modification pattern for a linked list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListPattern {
    /// Every element may be modified: unrolled test-record per element.
    MayModify,
    /// The whole list is known unmodified: not even traversed.
    Unmodified,
    /// Only the last element may be modified: the specialized code chains
    /// `next` loads to the tail and tests/records only there (paper
    /// Fig. 10's scenario).
    LastOnly,
    /// Only the listed element positions (0-based) may be modified.
    Positions(Vec<usize>),
}

/// A declared static shape with its per-phase modification pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecShape {
    /// An object whose exact class is statically known.
    Object {
        /// The object's exact class.
        class: ClassId,
        /// This node's modification pattern.
        pattern: NodePattern,
        /// Statically-shaped children: `(slot, child shape)`. Reference
        /// slots not listed are assumed `null` in this structure (and are
        /// guarded accordingly in checked execution).
        children: Vec<(usize, SpecShape)>,
    },
    /// A nil-terminated singly linked list of statically known length.
    ///
    /// Elements have exact class `elem_class` and are linked through
    /// `next_slot`; the element reached from the parent is position 0.
    /// Element reference slots other than `next_slot` are assumed `null`.
    List {
        /// Exact class of every element.
        elem_class: ClassId,
        /// The slot holding the `next` reference.
        next_slot: usize,
        /// Static number of elements (≥ 1).
        len: usize,
        /// The list's modification pattern.
        pattern: ListPattern,
    },
    /// A subtree whose shape is not static: the specialized code falls
    /// back to the generic (virtual-dispatch) checkpointer here.
    Dynamic,
}

impl SpecShape {
    /// An object node that may be modified, with no static children.
    pub fn leaf(class: ClassId) -> SpecShape {
        SpecShape::Object { class, pattern: NodePattern::MayModify, children: Vec::new() }
    }

    /// An object node with the given pattern and children.
    pub fn object(
        class: ClassId,
        pattern: NodePattern,
        children: Vec<(usize, SpecShape)>,
    ) -> SpecShape {
        SpecShape::Object { class, pattern, children }
    }

    /// A list node.
    pub fn list(
        elem_class: ClassId,
        next_slot: usize,
        len: usize,
        pattern: ListPattern,
    ) -> SpecShape {
        SpecShape::List { elem_class, next_slot, len, pattern }
    }

    /// Validates the declaration against a class registry.
    ///
    /// Checks that every declared class exists, that every declared child
    /// slot is a reference field whose static constraint (if any) admits
    /// the declared child class, that lists are non-empty with a valid
    /// `next` slot, and that position constraints fall inside the list.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self, registry: &ClassRegistry) -> Result<(), SpecError> {
        match self {
            SpecShape::Dynamic => Ok(()),
            SpecShape::Object { class, children, .. } => {
                let def = registry.class(*class)?;
                let mut seen = std::collections::HashSet::new();
                for (slot, child) in children {
                    if !seen.insert(*slot) {
                        return Err(SpecError::DuplicateChildSlot { class: *class, slot: *slot });
                    }
                    let ty = def.slot_type(*slot)?;
                    let constraint = match ty {
                        FieldType::Ref(c) => c,
                        _ => return Err(SpecError::NotARefSlot { class: *class, slot: *slot }),
                    };
                    if let Some(required) = constraint {
                        if let Some(declared) = child.root_class() {
                            if !registry.is_subclass(declared, required) {
                                return Err(SpecError::IncompatibleChildClass {
                                    class: *class,
                                    slot: *slot,
                                    declared,
                                });
                            }
                        }
                    }
                    child.validate(registry)?;
                }
                Ok(())
            }
            SpecShape::List { elem_class, next_slot, len, pattern } => {
                let def = registry.class(*elem_class)?;
                if *len == 0 {
                    return Err(SpecError::EmptyList { elem: *elem_class });
                }
                match def.slot_type(*next_slot)? {
                    FieldType::Ref(_) => {}
                    _ => {
                        return Err(SpecError::NotARefSlot { class: *elem_class, slot: *next_slot })
                    }
                }
                if let ListPattern::Positions(ps) = pattern {
                    for &p in ps {
                        if p >= *len {
                            return Err(SpecError::PositionOutOfRange { position: p, len: *len });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// The class at the root of this shape, when statically known.
    pub fn root_class(&self) -> Option<ClassId> {
        match self {
            SpecShape::Object { class, .. } => Some(*class),
            SpecShape::List { elem_class, .. } => Some(*elem_class),
            SpecShape::Dynamic => None,
        }
    }

    /// `true` if this entire subtree is declared unmodified (and therefore
    /// vanishes from the specialized checkpointer).
    pub fn is_fully_unmodified(&self) -> bool {
        match self {
            SpecShape::Object { pattern, children, .. } => match pattern {
                NodePattern::Unmodified => true,
                NodePattern::MayModify => false,
                NodePattern::FrozenHere => children.iter().all(|(_, c)| c.is_fully_unmodified()),
            },
            SpecShape::List { pattern, .. } => match pattern {
                ListPattern::Unmodified => true,
                // No position may be modified: degenerate but equivalent.
                ListPattern::Positions(ps) => ps.is_empty(),
                _ => false,
            },
            SpecShape::Dynamic => false,
        }
    }

    /// Counts the objects this shape statically covers (lists count their
    /// length; `Dynamic` counts as one unknown node).
    pub fn static_object_count(&self) -> usize {
        match self {
            SpecShape::Object { children, .. } => {
                1 + children.iter().map(|(_, c)| c.static_object_count()).sum::<usize>()
            }
            SpecShape::List { len, .. } => *len,
            SpecShape::Dynamic => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::ClassRegistry;

    fn registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg
            .define("Holder", None, &[("head", FieldType::Ref(Some(elem))), ("n", FieldType::Int)])
            .unwrap();
        (reg, elem, holder)
    }

    #[test]
    fn valid_structure_passes_validation() {
        let (reg, elem, holder) = registry();
        let shape = SpecShape::object(
            holder,
            NodePattern::MayModify,
            vec![(0, SpecShape::list(elem, 1, 5, ListPattern::MayModify))],
        );
        shape.validate(&reg).unwrap();
        assert_eq!(shape.static_object_count(), 6);
        assert_eq!(shape.root_class(), Some(holder));
    }

    #[test]
    fn non_ref_child_slot_is_rejected() {
        let (reg, _, holder) = registry();
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(1, SpecShape::leaf(holder))]);
        assert!(matches!(shape.validate(&reg), Err(SpecError::NotARefSlot { slot: 1, .. })));
    }

    #[test]
    fn incompatible_child_class_is_rejected() {
        let (reg, _, holder) = registry();
        // Slot 0 of Holder requires Elem; declare a Holder child instead.
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(0, SpecShape::leaf(holder))]);
        assert!(matches!(shape.validate(&reg), Err(SpecError::IncompatibleChildClass { .. })));
    }

    #[test]
    fn duplicate_child_slot_is_rejected() {
        let (reg, elem, holder) = registry();
        // Slot 0 declared twice: the plan would double-emit the subtree.
        let shape = SpecShape::object(
            holder,
            NodePattern::MayModify,
            vec![
                (0, SpecShape::list(elem, 1, 2, ListPattern::MayModify)),
                (0, SpecShape::list(elem, 1, 2, ListPattern::Unmodified)),
            ],
        );
        assert_eq!(
            shape.validate(&reg),
            Err(SpecError::DuplicateChildSlot { class: holder, slot: 0 })
        );
    }

    #[test]
    fn empty_list_is_rejected() {
        let (reg, elem, _) = registry();
        let shape = SpecShape::list(elem, 1, 0, ListPattern::MayModify);
        assert!(matches!(shape.validate(&reg), Err(SpecError::EmptyList { .. })));
    }

    #[test]
    fn list_next_slot_must_be_a_ref() {
        let (reg, elem, _) = registry();
        let shape = SpecShape::list(elem, 0, 3, ListPattern::MayModify);
        assert!(matches!(shape.validate(&reg), Err(SpecError::NotARefSlot { .. })));
    }

    #[test]
    fn out_of_range_position_is_rejected() {
        let (reg, elem, _) = registry();
        let shape = SpecShape::list(elem, 1, 3, ListPattern::Positions(vec![0, 3]));
        assert_eq!(
            shape.validate(&reg),
            Err(SpecError::PositionOutOfRange { position: 3, len: 3 })
        );
    }

    #[test]
    fn unknown_class_is_rejected() {
        let (reg, _, _) = registry();
        let shape = SpecShape::leaf(ClassId::from_index(99));
        assert!(matches!(shape.validate(&reg), Err(SpecError::Heap(_))));
    }

    #[test]
    fn fully_unmodified_detection() {
        let (_, elem, holder) = registry();
        assert!(SpecShape::object(holder, NodePattern::Unmodified, vec![]).is_fully_unmodified());
        assert!(SpecShape::list(elem, 1, 3, ListPattern::Unmodified).is_fully_unmodified());
        assert!(!SpecShape::leaf(holder).is_fully_unmodified());
        // FrozenHere is fully unmodified only if all children are.
        let frozen_all = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 2, ListPattern::Unmodified))],
        );
        assert!(frozen_all.is_fully_unmodified());
        let frozen_some = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 2, ListPattern::LastOnly))],
        );
        assert!(!frozen_some.is_fully_unmodified());
    }

    #[test]
    fn dynamic_subtree_is_always_valid() {
        let (reg, _, holder) = registry();
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(0, SpecShape::Dynamic)]);
        shape.validate(&reg).unwrap();
        assert_eq!(SpecShape::Dynamic.root_class(), None);
        assert!(!SpecShape::Dynamic.is_fully_unmodified());
    }
}
