//! Residual-code printer: renders a declaration's specialized checkpointer
//! as Java-like source, in the style of the paper's Figures 5 and 6.
//!
//! The printer exists for inspection and documentation: what the compiler
//! turns into a [`crate::Plan`], this module turns into the equivalent
//! human-readable residual program, so the golden tests can check that our
//! specializations have the same *shape* as the paper's published output —
//! direct field loads instead of virtual calls, tests only where the
//! modification pattern keeps them, and elided subtrees leaving no trace
//! but a comment.

use crate::shape::{ListPattern, NodePattern, SpecShape};
use ickp_heap::{ClassId, ClassRegistry};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the residual Java-like source of the specialized checkpoint
/// method for `shape`.
///
/// `method_name` names the generated method (the paper uses names like
/// `checkpoint_attr_btmodif`).
pub fn render(registry: &ClassRegistry, shape: &SpecShape, method_name: &str) -> String {
    let mut p = Printer { registry, out: String::new(), indent: 1, taken: HashMap::new() };
    let root_class = shape.root_class();
    let root_name = match root_class {
        Some(c) => p.class_name(c),
        None => "Checkpointable".to_string(),
    };
    let mut out = format!("public void {method_name}(Checkpointable o) {{\n");
    let root_var = p.fresh(&root_name);
    let _ = writeln!(out, "    {root_name} {root_var} = ({root_name})o;");
    p.out = out;
    p.emit_shape(shape, &root_var);
    p.out.push_str("}\n");
    p.out
}

struct Printer<'r> {
    registry: &'r ClassRegistry,
    out: String,
    indent: usize,
    taken: HashMap<String, usize>,
}

impl<'r> Printer<'r> {
    fn class_name(&self, class: ClassId) -> String {
        self.registry
            .class(class)
            .map(|d| d.name().to_string())
            .unwrap_or_else(|_| class.to_string())
    }

    fn field_name(&self, class: ClassId, slot: usize) -> String {
        self.registry
            .class(class)
            .ok()
            .and_then(|d| d.layout().get(slot).map(|f| f.name().to_string()))
            .unwrap_or_else(|| format!("f{slot}"))
    }

    /// Lowercases a class name into a Java-style variable name
    /// (`BTEntry` → `btEntry`, `Attributes` → `attributes`), appending a
    /// counter when reused.
    fn fresh(&mut self, class_name: &str) -> String {
        let base = camel(class_name);
        let n = self.taken.entry(base.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base
        } else {
            format!("{base}{}", *n - 1)
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn emit_shape(&mut self, shape: &SpecShape, var: &str) {
        match shape {
            SpecShape::Object { class, pattern, children } => {
                match pattern {
                    NodePattern::MayModify => self.emit_test_record(var),
                    NodePattern::FrozenHere => {}
                    NodePattern::Unmodified => {
                        self.line(&format!("// {var}: unmodified in this phase (elided)"));
                        return;
                    }
                }
                for (slot, child) in children {
                    self.emit_child(*class, var, *slot, child);
                }
            }
            SpecShape::List { elem_class, next_slot, len, pattern } => {
                // Bare list root: element 0 is `var`.
                let elem_name = self.class_name(*elem_class);
                let next = self.field_name(*elem_class, *next_slot);
                self.emit_list(&elem_name, &next, *len, pattern, var.to_string());
            }
            SpecShape::Dynamic => {
                self.line(&format!("c.checkpoint({var}); /* generic: shape unknown */"));
            }
        }
    }

    fn emit_child(
        &mut self,
        parent_class: ClassId,
        parent_var: &str,
        slot: usize,
        child: &SpecShape,
    ) {
        let field = self.field_name(parent_class, slot);
        if child.is_fully_unmodified() {
            self.line(&format!(
                "// {parent_var}.{field}: unmodified in this phase (traversal elided)"
            ));
            return;
        }
        match child {
            SpecShape::Object { class, .. } => {
                let cname = self.class_name(*class);
                let var = self.fresh(&cname);
                self.line(&format!("{cname} {var} = {parent_var}.{field};"));
                self.emit_shape(child, &var);
            }
            SpecShape::List { elem_class, next_slot, len, pattern } => {
                let elem_name = self.class_name(*elem_class);
                let next = self.field_name(*elem_class, *next_slot);
                let head = self.fresh(&elem_name);
                self.line(&format!("{elem_name} {head} = {parent_var}.{field};"));
                self.emit_list(&elem_name, &next, *len, pattern, head);
            }
            SpecShape::Dynamic => {
                self.line(&format!(
                    "c.checkpoint({parent_var}.{field}); /* generic: shape unknown */"
                ));
            }
        }
    }

    fn emit_list(
        &mut self,
        elem_name: &str,
        next_field: &str,
        len: usize,
        pattern: &ListPattern,
        head_var: String,
    ) {
        match pattern {
            ListPattern::Unmodified => {
                self.line(&format!("// list {head_var}: unmodified (elided)"));
            }
            ListPattern::MayModify => {
                let mut cur = head_var;
                for i in 0..len {
                    self.emit_test_record(&cur);
                    if i + 1 < len {
                        let next = self.fresh(elem_name);
                        self.line(&format!("{elem_name} {next} = {cur}.{next_field};"));
                        cur = next;
                    }
                }
            }
            ListPattern::LastOnly => {
                let mut cur = head_var;
                for _ in 1..len {
                    let next = self.fresh(elem_name);
                    self.line(&format!("{elem_name} {next} = {cur}.{next_field};"));
                    cur = next;
                }
                self.emit_test_record(&cur);
            }
            ListPattern::Positions(ps) => {
                let mut positions = ps.clone();
                positions.sort_unstable();
                positions.dedup();
                let Some(&max_pos) = positions.last() else {
                    self.line(&format!("// list {head_var}: no modifiable positions (elided)"));
                    return;
                };
                let mut cur = head_var;
                for i in 0..=max_pos {
                    if positions.binary_search(&i).is_ok() {
                        self.emit_test_record(&cur);
                    }
                    if i < max_pos {
                        let next = self.fresh(elem_name);
                        self.line(&format!("{elem_name} {next} = {cur}.{next_field};"));
                        cur = next;
                    }
                }
            }
        }
    }

    fn emit_test_record(&mut self, var: &str) {
        self.line(&format!("CheckpointInfo {var}Info = {var}.getCheckpointInfo();"));
        self.line(&format!("if ({var}Info.modified()) {{"));
        self.indent += 1;
        self.line(&format!("d.writeInt({var}Info.getId());"));
        self.line(&format!("{var}.record(d); /* inlined: direct field writes */"));
        self.line(&format!("{var}Info.resetModified();"));
        self.indent -= 1;
        self.line("}");
    }
}

/// `BTEntry` → `btEntry`, `Attributes` → `attributes`, `BT` → `bt`.
fn camel(name: &str) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.is_empty() {
        return "x".into();
    }
    // Length of the leading uppercase run.
    let run = chars.iter().take_while(|c| c.is_uppercase()).count();
    if run == 0 {
        return name.to_string();
    }
    let lower_to = if run == chars.len() {
        run // all caps: lowercase everything
    } else if run == 1 {
        1
    } else {
        run - 1 // keep the camel boundary capital
    };
    let mut out = String::with_capacity(chars.len());
    for (i, c) in chars.iter().enumerate() {
        if i < lower_to {
            out.extend(c.to_lowercase());
        } else {
            out.push(*c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::FieldType;

    #[test]
    fn camel_matches_paper_naming() {
        assert_eq!(camel("BTEntry"), "btEntry");
        assert_eq!(camel("Attributes"), "attributes");
        assert_eq!(camel("BT"), "bt");
        assert_eq!(camel("SEEntry"), "seEntry");
        assert_eq!(camel("X"), "x");
        assert_eq!(camel("already"), "already");
    }

    fn attributes_registry() -> (ClassRegistry, SpecShape, SpecShape) {
        // The paper's Figure 4 structure.
        let mut reg = ClassRegistry::new();
        let id = reg.define("Id", None, &[("n", FieldType::Int)]).unwrap();
        let bt = reg.define("BT", None, &[("id", FieldType::Ref(Some(id)))]).unwrap();
        let et = reg.define("ET", None, &[("id", FieldType::Ref(Some(id)))]).unwrap();
        let se_entry = reg
            .define(
                "SEEntry",
                None,
                &[("rd", FieldType::Ref(Some(id))), ("wr", FieldType::Ref(Some(id)))],
            )
            .unwrap();
        let bt_entry = reg.define("BTEntry", None, &[("bt", FieldType::Ref(Some(bt)))]).unwrap();
        let et_entry = reg.define("ETEntry", None, &[("et", FieldType::Ref(Some(et)))]).unwrap();
        let attrs = reg
            .define(
                "Attributes",
                None,
                &[
                    ("se", FieldType::Ref(Some(se_entry))),
                    ("bt", FieldType::Ref(Some(bt_entry))),
                    ("et", FieldType::Ref(Some(et_entry))),
                ],
            )
            .unwrap();

        // Figure 5: structure only — every node tested at run time.
        let fig5 = SpecShape::object(
            attrs,
            NodePattern::MayModify,
            vec![
                (
                    0,
                    SpecShape::object(
                        se_entry,
                        NodePattern::MayModify,
                        vec![(0, SpecShape::leaf(id)), (1, SpecShape::leaf(id))],
                    ),
                ),
                (
                    1,
                    SpecShape::object(
                        bt_entry,
                        NodePattern::MayModify,
                        vec![(
                            0,
                            SpecShape::object(
                                bt,
                                NodePattern::MayModify,
                                vec![(0, SpecShape::leaf(id))],
                            ),
                        )],
                    ),
                ),
                (
                    2,
                    SpecShape::object(
                        et_entry,
                        NodePattern::MayModify,
                        vec![(
                            0,
                            SpecShape::object(
                                et,
                                NodePattern::MayModify,
                                vec![(0, SpecShape::leaf(id))],
                            ),
                        )],
                    ),
                ),
            ],
        );

        // Figure 6: the binding-time-analysis phase modifies only bt.
        let fig6 = SpecShape::object(
            attrs,
            NodePattern::FrozenHere,
            vec![
                (0, SpecShape::object(se_entry, NodePattern::Unmodified, vec![])),
                (
                    1,
                    SpecShape::object(
                        bt_entry,
                        NodePattern::MayModify,
                        vec![(0, SpecShape::object(bt, NodePattern::MayModify, vec![]))],
                    ),
                ),
                (2, SpecShape::object(et_entry, NodePattern::Unmodified, vec![])),
            ],
        );
        (reg, fig5, fig6)
    }

    #[test]
    fn fig5_style_output_has_no_virtual_calls_and_tests_every_node() {
        let (reg, fig5, _) = attributes_registry();
        let src = render(&reg, &fig5, "checkpoint_attr");
        assert!(src.starts_with("public void checkpoint_attr(Checkpointable o) {"));
        assert!(src.contains("Attributes attributes = (Attributes)o;"));
        assert!(src.contains("BTEntry btEntry = attributes.bt;"));
        assert!(src.contains("if (btEntryInfo.modified())"));
        // Every one of the 10 nodes of Figure 4 is tested:
        // attr, seEntry + 2 ids, btEntry + bt + id, etEntry + et + id.
        let tests = src.matches(".modified()").count();
        assert_eq!(tests, 10);
        // No dynamic dispatch anywhere:
        assert!(!src.contains("c.checkpoint("));
    }

    #[test]
    fn fig6_style_output_elides_se_and_et_subtrees() {
        let (reg, _, fig6) = attributes_registry();
        let src = render(&reg, &fig6, "checkpoint_attr_btmodif");
        // Only btEntry and bt are tested; attributes itself is frozen.
        assert_eq!(src.matches(".modified()").count(), 2);
        assert!(src.contains("btEntry"));
        assert!(!src.contains("SEEntry seEntry ="), "se subtree must not be loaded");
        assert!(!src.contains("ETEntry etEntry ="), "et subtree must not be loaded");
        assert!(src.contains("unmodified in this phase"));
    }

    #[test]
    fn list_rendering_unrolls_with_fresh_variables() {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 3, ListPattern::MayModify))],
        );
        let src = render(&reg, &shape, "ckp_holder");
        assert!(src.contains("Elem elem = holder.head;"));
        assert!(src.contains("Elem elem1 = elem.next;"));
        assert!(src.contains("Elem elem2 = elem1.next;"));
        assert_eq!(src.matches(".modified()").count(), 3);
    }

    #[test]
    fn last_only_rendering_chains_without_tests() {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let shape = SpecShape::list(elem, 1, 4, ListPattern::LastOnly);
        let src = render(&reg, &shape, "ckp_list");
        assert_eq!(src.matches(".modified()").count(), 1);
        // root cast + 3 next loads + 1 CheckpointInfo binding for the tail
        assert_eq!(src.matches("= ").count(), 5);
    }

    #[test]
    fn dynamic_subtree_renders_a_generic_call() {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(0, SpecShape::Dynamic)]);
        let src = render(&reg, &shape, "ckp");
        assert!(src.contains("c.checkpoint(holder.head);"));
    }
}
