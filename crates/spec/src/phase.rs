//! Per-phase plan registry.
//!
//! The paper's key additional win (§4.2) comes from programs organized in
//! phases, each with its own modification pattern: "we automatically
//! generate a specialized checkpointing routine for each phase".
//! [`PhasePlans`] holds those routines, keyed by phase name, so a phase
//! driver (like the analysis engine in `ickp-analysis`) can pick the right
//! specialized checkpointer as execution moves between phases — and fall
//! back to the generic one for phases nobody declared.

use crate::plan::Plan;
use crate::shape::SpecShape;
use std::collections::HashMap;

/// A compiled phase plan together with the declaration it came from.
///
/// Keeping the source [`SpecShape`] next to the [`Plan`] is what makes
/// the plans *auditable*: a static verifier (`ickp-audit`) can re-derive
/// the traversal the declaration promises and prove the compiled ops
/// deliver exactly that.
#[derive(Debug, Clone)]
struct PhaseDecl {
    plan: Plan,
    shape: Option<SpecShape>,
}

/// A named collection of phase-specific checkpoint plans.
///
/// # Example
///
/// ```
/// use ickp_heap::{ClassRegistry, FieldType};
/// use ickp_spec::{NodePattern, PhasePlans, SpecShape, Specializer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// let c = reg.define("C", None, &[("v", FieldType::Int)])?;
/// let spec = Specializer::new(&reg);
/// let shape = SpecShape::leaf(c);
/// let mut phases = PhasePlans::new();
/// phases.insert_with_shape("bta", shape.clone(), spec.compile(&shape)?);
/// assert!(phases.plan("bta").is_some());
/// assert!(phases.shape("bta").is_some());
/// assert!(phases.plan("seffect").is_none()); // generic fallback
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhasePlans {
    plans: HashMap<String, PhaseDecl>,
}

impl PhasePlans {
    /// Creates an empty registry.
    pub fn new() -> PhasePlans {
        PhasePlans::default()
    }

    /// Registers (or replaces) the plan for a phase; returns the previous
    /// plan if one existed. The phase has no recorded declaration; prefer
    /// [`PhasePlans::insert_with_shape`] so the plan stays auditable.
    pub fn insert(&mut self, phase: impl Into<String>, plan: Plan) -> Option<Plan> {
        self.plans.insert(phase.into(), PhaseDecl { plan, shape: None }).map(|d| d.plan)
    }

    /// Registers (or replaces) the plan for a phase along with the
    /// declaration it was compiled from; returns the previous plan.
    pub fn insert_with_shape(
        &mut self,
        phase: impl Into<String>,
        shape: SpecShape,
        plan: Plan,
    ) -> Option<Plan> {
        self.plans.insert(phase.into(), PhaseDecl { plan, shape: Some(shape) }).map(|d| d.plan)
    }

    /// The plan for a phase, if one was declared.
    pub fn plan(&self, phase: &str) -> Option<&Plan> {
        self.plans.get(phase).map(|d| &d.plan)
    }

    /// The declaration a phase's plan was compiled from, when it was
    /// registered via [`PhasePlans::insert_with_shape`].
    pub fn shape(&self, phase: &str) -> Option<&SpecShape> {
        self.plans.get(phase).and_then(|d| d.shape.as_ref())
    }

    /// Removes a phase's plan (e.g. after the structure it was compiled
    /// for changed), returning it.
    pub fn remove(&mut self, phase: &str) -> Option<Plan> {
        self.plans.remove(phase).map(|d| d.plan)
    }

    /// Phase names with registered plans, in arbitrary order.
    pub fn phases(&self) -> impl Iterator<Item = &str> {
        self.plans.keys().map(String::as_str)
    }

    /// Number of registered phases.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` if no phases are registered.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Specializer;
    use crate::shape::SpecShape;
    use ickp_heap::{ClassRegistry, FieldType};

    fn plan() -> Plan {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        Specializer::new(&reg).compile(&SpecShape::leaf(c)).unwrap()
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut phases = PhasePlans::new();
        assert!(phases.is_empty());
        assert!(phases.insert("bta", plan()).is_none());
        assert!(phases.insert("eta", plan()).is_none());
        assert_eq!(phases.len(), 2);
        assert!(phases.plan("bta").is_some());
        assert!(phases.plan("nope").is_none());
        assert!(phases.remove("bta").is_some());
        assert!(phases.plan("bta").is_none());
    }

    #[test]
    fn reinsertion_returns_the_replaced_plan() {
        let mut phases = PhasePlans::new();
        phases.insert("bta", plan());
        assert!(phases.insert("bta", plan()).is_some());
        assert_eq!(phases.len(), 1);
    }

    #[test]
    fn shapes_are_retained_only_when_registered() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        let shape = SpecShape::leaf(c);
        let compiled = Specializer::new(&reg).compile(&shape).unwrap();
        let mut phases = PhasePlans::new();
        phases.insert("bare", compiled.clone());
        phases.insert_with_shape("declared", shape.clone(), compiled);
        assert!(phases.shape("bare").is_none());
        assert_eq!(phases.shape("declared"), Some(&shape));
    }

    #[test]
    fn phase_names_are_enumerable() {
        let mut phases = PhasePlans::new();
        phases.insert("a", plan());
        phases.insert("b", plan());
        let mut names: Vec<&str> = phases.phases().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }
}
