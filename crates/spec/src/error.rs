//! Compile-time errors of the specializer.

use ickp_heap::{ClassId, HeapError};
use std::error::Error;
use std::fmt;

/// Errors raised while validating declarations or compiling a plan.
///
/// These are *specialization-time* errors: they surface when a
/// specialization class mis-describes the program, before any checkpoint is
/// taken — the safety property the paper gets from making specialization
/// automatic rather than hand-written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A declaration named a class unknown to the registry.
    Heap(HeapError),
    /// The same slot was declared as a child twice: the compiled plan
    /// would traverse (and record) the subtree once per declaration,
    /// corrupting the order-sensitive stream.
    DuplicateChildSlot {
        /// Class whose slot was declared twice.
        class: ClassId,
        /// The offending slot.
        slot: usize,
    },
    /// A declared child slot is not a reference field.
    NotARefSlot {
        /// Class whose slot was declared.
        class: ClassId,
        /// The offending slot.
        slot: usize,
    },
    /// The declared child class violates the slot's static constraint.
    IncompatibleChildClass {
        /// Class whose slot was declared.
        class: ClassId,
        /// The offending slot.
        slot: usize,
        /// Class the declaration claims the referent has.
        declared: ClassId,
    },
    /// A list was declared with length zero.
    EmptyList {
        /// Element class of the list.
        elem: ClassId,
    },
    /// A list position constraint is outside the declared length.
    PositionOutOfRange {
        /// The offending position.
        position: usize,
        /// Declared list length.
        len: usize,
    },
    /// A modification-pattern constraint was attached to a node kind that
    /// cannot carry it (e.g. `LastOnly` on a non-list node).
    PatternMismatch {
        /// Description of the misuse.
        what: String,
    },
    /// The plan needs a generic fallback (`Dynamic` shape) but no method
    /// table was supplied at execution time.
    MissingMethodTable,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Heap(e) => write!(f, "heap error during specialization: {e}"),
            SpecError::DuplicateChildSlot { class, slot } => {
                write!(f, "slot {slot} of {class} declared as a child more than once")
            }
            SpecError::NotARefSlot { class, slot } => {
                write!(f, "slot {slot} of {class} is not a reference field")
            }
            SpecError::IncompatibleChildClass { class, slot, declared } => write!(
                f,
                "slot {slot} of {class} cannot hold an instance of declared class {declared}"
            ),
            SpecError::EmptyList { elem } => {
                write!(f, "list of {elem} declared with length 0")
            }
            SpecError::PositionOutOfRange { position, len } => {
                write!(f, "modified position {position} outside list of length {len}")
            }
            SpecError::PatternMismatch { what } => write!(f, "pattern mismatch: {what}"),
            SpecError::MissingMethodTable => {
                write!(f, "plan contains a generic fallback but no method table was supplied")
            }
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for SpecError {
    fn from(e: HeapError) -> SpecError {
        SpecError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let errors: Vec<SpecError> = vec![
            SpecError::Heap(HeapError::UnknownClassName("X".into())),
            SpecError::DuplicateChildSlot { class: ClassId::from_index(0), slot: 1 },
            SpecError::NotARefSlot { class: ClassId::from_index(0), slot: 1 },
            SpecError::IncompatibleChildClass {
                class: ClassId::from_index(0),
                slot: 1,
                declared: ClassId::from_index(2),
            },
            SpecError::EmptyList { elem: ClassId::from_index(0) },
            SpecError::PositionOutOfRange { position: 5, len: 3 },
            SpecError::PatternMismatch { what: "LastOnly on object".into() },
            SpecError::MissingMethodTable,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}
