//! Plan optimization: register compaction.
//!
//! The straightforward compiler allocates a fresh virtual register per
//! load, so an unrolled list of length *L* consumes *L* registers even
//! though only the newest link is ever live. This pass renames registers
//! with a linear-scan allocator over the plan's (acyclic, forward-skip)
//! control flow, shrinking the register file to the true maximum number
//! of simultaneously live objects — typically 2–3 for the paper's
//! structures regardless of list length.
//!
//! Correctness notes: plans only jump *forward* (`TestModified` /
//! `LoadDyn` skips), so a register's live range is simply the interval
//! from its defining instruction to its last use, **extended to the end
//! of any skip region that jumps over the definition or into the range**
//! — conservatively handled by treating a register as live until the
//! furthest target of any skip that starts inside its range. Since skip
//! regions are small (one instruction today) and ranges are intervals,
//! the conservative extension costs nothing in practice.

use crate::plan::{Op, Plan, Reg};

/// Rewrites `plan` to use a minimal register file. Semantics are
/// preserved exactly (same ops, same order, renamed registers).
pub fn compact_registers(plan: &Plan) -> Plan {
    let ops = plan.ops();
    if ops.is_empty() {
        return plan.clone();
    }

    // 1. Last use (or def) index per register, with skip-region extension.
    let n = ops.len();
    let num_regs = plan.num_regs() as usize;
    let mut last_use = vec![0usize; num_regs];
    let mut def_at = vec![usize::MAX; num_regs];
    let touch = |r: Reg, i: usize, last_use: &mut Vec<usize>| {
        let r = r as usize;
        if i > last_use[r] {
            last_use[r] = i;
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::LoadRoot { dst, .. } => {
                def_at[*dst as usize] = def_at[*dst as usize].min(i);
                touch(*dst, i, &mut last_use);
            }
            Op::LoadRef { dst, src, .. } => {
                def_at[*dst as usize] = def_at[*dst as usize].min(i);
                touch(*dst, i, &mut last_use);
                touch(*src, i, &mut last_use);
            }
            Op::LoadDyn { dst, src, skip, .. } => {
                def_at[*dst as usize] = def_at[*dst as usize].min(i);
                // The destination must stay allocated through the skip
                // region even on the null path (nothing reads it there,
                // but it must not alias a live register).
                touch(*dst, (i + 1 + *skip as usize).min(n - 1), &mut last_use);
                touch(*src, i, &mut last_use);
            }
            Op::TestModified { obj, skip } => {
                // A register consumed under a conditional skip must stay
                // live through the whole region.
                touch(*obj, (i + 1 + *skip as usize).min(n - 1), &mut last_use);
            }
            Op::Record { obj, .. } | Op::Generic { obj } | Op::GuardListEnd { obj, .. } => {
                touch(*obj, i, &mut last_use)
            }
        }
    }

    // 2. Linear scan: at each definition, grab the lowest free slot; free
    // slots whose register's last use has passed.
    let mut mapping: Vec<Option<Reg>> = vec![None; num_regs];
    let mut slot_free_at: Vec<usize> = Vec::new(); // slot -> index after which it is free
    let mut assign = |r: usize, i: usize, mapping: &mut Vec<Option<Reg>>| {
        let expiry = last_use[r];
        for (slot, free_at) in slot_free_at.iter_mut().enumerate() {
            if *free_at < i {
                *free_at = expiry;
                mapping[r] = Some(slot as Reg);
                return;
            }
        }
        slot_free_at.push(expiry);
        mapping[r] = Some((slot_free_at.len() - 1) as Reg);
    };
    for (i, op) in ops.iter().enumerate() {
        if let Op::LoadRoot { dst, .. } | Op::LoadRef { dst, .. } | Op::LoadDyn { dst, .. } = op {
            let d = *dst as usize;
            if def_at[d] == i {
                assign(d, i, &mut mapping);
            }
        }
    }

    let remap = |r: Reg| mapping[r as usize].expect("used register has a slot");
    let new_ops: Vec<Op> = ops
        .iter()
        .map(|op| match op {
            Op::LoadRoot { dst, class } => Op::LoadRoot { dst: remap(*dst), class: *class },
            Op::LoadRef { dst, src, slot, class } => {
                Op::LoadRef { dst: remap(*dst), src: remap(*src), slot: *slot, class: *class }
            }
            Op::LoadDyn { dst, src, slot, skip } => {
                Op::LoadDyn { dst: remap(*dst), src: remap(*src), slot: *slot, skip: *skip }
            }
            Op::TestModified { obj, skip } => Op::TestModified { obj: remap(*obj), skip: *skip },
            Op::Record { obj, template } => Op::Record { obj: remap(*obj), template: *template },
            Op::Generic { obj } => Op::Generic { obj: remap(*obj) },
            Op::GuardListEnd { obj, slot } => Op::GuardListEnd { obj: remap(*obj), slot: *slot },
        })
        .collect();

    Plan::new(new_ops, plan.templates().to_vec(), slot_free_at.len() as u32, plan.has_dynamic())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Specializer;
    use crate::plan::GuardMode;
    use crate::shape::{ListPattern, NodePattern, SpecShape};
    use ickp_core::{decode, CheckpointKind, StreamWriter, TraversalStats};
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};

    fn registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg
            .define(
                "Holder",
                None,
                &[("l0", FieldType::Ref(Some(elem))), ("l1", FieldType::Ref(Some(elem)))],
            )
            .unwrap();
        (reg, elem, holder)
    }

    fn build(
        heap: &mut Heap,
        elem: ClassId,
        holder: ClassId,
        len: usize,
    ) -> (ObjectId, Vec<ObjectId>) {
        let mut all = Vec::new();
        let h = heap.alloc(holder).unwrap();
        for l in 0..2 {
            let mut next = None;
            let mut ids = Vec::new();
            for _ in 0..len {
                let e = heap.alloc(elem).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                ids.push(e);
            }
            heap.set_field(h, l, Value::Ref(next)).unwrap();
            ids.reverse();
            all.extend(ids);
        }
        heap.reset_all_modified();
        (h, all)
    }

    fn run(plan: &Plan, heap: &mut Heap, root: ObjectId) -> Vec<u8> {
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor().run(heap, root, &mut writer, GuardMode::Checked, None, &mut stats).unwrap();
        writer.finish()
    }

    #[test]
    fn long_lists_need_constant_registers_after_compaction() {
        let (reg, elem, holder) = registry();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![
                (0, SpecShape::list(elem, 1, 12, ListPattern::MayModify)),
                (1, SpecShape::list(elem, 1, 12, ListPattern::LastOnly)),
            ],
        );
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let optimized = compact_registers(&plan);
        assert!(plan.num_regs() > 20, "naive allocation is linear in list length");
        assert!(optimized.num_regs() <= 3, "got {}", optimized.num_regs());
        assert_eq!(optimized.ops().len(), plan.ops().len());
    }

    #[test]
    fn optimized_plan_produces_the_identical_stream() {
        let (reg, elem, holder) = registry();
        let shape = SpecShape::object(
            holder,
            NodePattern::MayModify,
            vec![
                (0, SpecShape::list(elem, 1, 6, ListPattern::MayModify)),
                (1, SpecShape::list(elem, 1, 6, ListPattern::Positions(vec![0, 4]))),
            ],
        );
        let spec = Specializer::new(&reg);
        let plan = spec.compile(&shape).unwrap();
        let optimized = compact_registers(&plan);

        let mut heap = Heap::new(reg);
        let (root, objects) = build(&mut heap, elem, holder, 6);
        // Dirty a spread of objects.
        for (i, &o) in objects.iter().enumerate() {
            if i % 3 == 0 {
                heap.set_field(o, 0, Value::Int(i as i32)).unwrap();
            }
        }
        let mut heap2 = heap.clone();
        let a = run(&plan, &mut heap, root);
        let b = run(&optimized, &mut heap2, root);
        assert_eq!(a, b);
        let d = decode(&a, heap.registry()).unwrap();
        assert!(!d.objects.is_empty());
    }

    #[test]
    fn dyn_edges_survive_compaction() {
        let (reg, _, holder) = registry();
        let shape = SpecShape::object(
            holder,
            NodePattern::MayModify,
            vec![(0, SpecShape::Dynamic), (1, SpecShape::Dynamic)],
        );
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let optimized = compact_registers(&plan);
        assert!(optimized.has_dynamic());
        assert!(optimized.num_regs() <= plan.num_regs());

        // Null dynamic edges: both plans skip the fallbacks identically.
        let mut heap = Heap::new(reg);
        let h = heap.alloc(holder).unwrap();
        let table = ickp_core::MethodTable::derive(heap.registry());
        for p in [&plan, &optimized] {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            p.executor()
                .run(&mut heap, h, &mut writer, GuardMode::Checked, Some(&table), &mut stats)
                .unwrap();
            assert_eq!(stats.objects_recorded, 1, "holder itself is fresh");
            heap.mark_all_modified();
        }
    }

    #[test]
    fn empty_and_trivial_plans_are_untouched() {
        let (reg, elem, _) = registry();
        let shape = SpecShape::leaf(elem);
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let optimized = compact_registers(&plan);
        assert_eq!(optimized.num_regs(), 1);
        assert_eq!(optimized.ops(), plan.ops());
    }
}
