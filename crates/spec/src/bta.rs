//! Binding-time analysis of the checkpointing code under a declaration.
//!
//! JSpec drives Tempo's binding-time analysis over the generic Java
//! checkpointing methods: every expression is classified *static*
//! (evaluable at specialization time from the declarations) or *dynamic*
//! (must remain in the residual program). This module reproduces that
//! division for our generic checkpointing algorithm — per declaration node
//! it reports which of the algorithm's actions (class dispatch, traversal,
//! flag test, state recording) are static, which are dynamic, and which are
//! *eliminated* outright because a static flag value makes their guard
//! false.
//!
//! The division is a first-class artifact: the compiler's decisions in
//! [`crate::Specializer::compile`] correspond one-to-one to its entries,
//! and [`Division::render`] prints it for inspection (used in docs, tests
//! and the ablation benches).

use crate::shape::{ListPattern, NodePattern, SpecShape};
use ickp_heap::ClassRegistry;
use std::fmt;

/// Binding time of one action of the checkpointing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingTime {
    /// Known at specialization time; evaluated away by the compiler.
    Static,
    /// Known only at run time; residualized into the plan.
    Dynamic,
}

impl fmt::Display for BindingTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingTime::Static => write!(f, "S"),
            BindingTime::Dynamic => write!(f, "D"),
        }
    }
}

/// One classified action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivisionEntry {
    /// Path of the declaration node, e.g. `root.bt.list[0..5]`.
    pub path: String,
    /// The checkpointing action classified, e.g. `virtual dispatch`.
    pub action: String,
    /// Its binding time.
    pub binding: BindingTime,
    /// `true` if the action is removed from the residual program entirely
    /// (either evaluated at specialization time, or dead under the
    /// declared modification pattern).
    pub eliminated: bool,
}

/// The complete division for one declaration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Division {
    entries: Vec<DivisionEntry>,
}

impl Division {
    /// The classified actions in declaration order.
    pub fn entries(&self) -> &[DivisionEntry] {
        &self.entries
    }

    /// Number of actions eliminated from the residual program.
    pub fn eliminated_count(&self) -> usize {
        self.entries.iter().filter(|e| e.eliminated).count()
    }

    /// Number of actions residualized (kept at run time).
    pub fn residual_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.eliminated).count()
    }

    /// Renders the division as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("path | action | bt | residual\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{} | {} | {} | {}\n",
                e.path,
                e.action,
                e.binding,
                if e.eliminated { "eliminated" } else { "kept" }
            ));
        }
        out
    }
}

/// Computes the binding-time division of the generic checkpointing
/// algorithm specialized to `shape`.
///
/// The registry is used only for class names in paths; an invalid shape
/// still produces a division (validation is `compile`'s job).
pub fn divide(registry: &ClassRegistry, shape: &SpecShape) -> Division {
    let mut division = Division::default();
    walk(registry, shape, "root", &mut division);
    division
}

fn class_name(registry: &ClassRegistry, class: ickp_heap::ClassId) -> String {
    registry.class(class).map(|d| d.name().to_string()).unwrap_or_else(|_| class.to_string())
}

fn push(d: &mut Division, path: &str, action: &str, bt: BindingTime, eliminated: bool) {
    d.entries.push(DivisionEntry {
        path: path.to_string(),
        action: action.to_string(),
        binding: bt,
        eliminated,
    });
}

fn walk(registry: &ClassRegistry, shape: &SpecShape, path: &str, d: &mut Division) {
    match shape {
        SpecShape::Object { class, pattern, children } => {
            let name = class_name(registry, *class);
            // The object's class is declared: dispatch is static.
            push(d, path, &format!("virtual dispatch on {name}"), BindingTime::Static, true);
            match pattern {
                NodePattern::MayModify => {
                    push(d, path, "modified-flag test", BindingTime::Dynamic, false);
                    push(d, path, "record local state", BindingTime::Dynamic, false);
                }
                NodePattern::FrozenHere => {
                    // Flag statically false: the test folds to `false` and
                    // the record becomes dead code.
                    push(d, path, "modified-flag test", BindingTime::Static, true);
                    push(d, path, "record local state", BindingTime::Static, true);
                }
                NodePattern::Unmodified => {
                    push(d, path, "modified-flag test", BindingTime::Static, true);
                    push(d, path, "record local state", BindingTime::Static, true);
                    push(d, path, "traversal of subtree", BindingTime::Static, true);
                    return; // children vanish entirely
                }
            }
            for (slot, child) in children {
                let field = registry
                    .class(*class)
                    .ok()
                    .and_then(|def| def.layout().get(*slot).map(|f| f.name().to_string()))
                    .unwrap_or_else(|| format!("slot{slot}"));
                let child_path = format!("{path}.{field}");
                if child.is_fully_unmodified() {
                    push(d, &child_path, "traversal of subtree", BindingTime::Static, true);
                } else {
                    push(d, &child_path, "field load (inlined fold)", BindingTime::Static, false);
                    walk(registry, child, &child_path, d);
                }
            }
        }
        SpecShape::List { elem_class, len, pattern, .. } => {
            let name = class_name(registry, *elem_class);
            let lp = format!("{path}[0..{len}]");
            push(d, &lp, &format!("list length of {name}"), BindingTime::Static, true);
            match pattern {
                ListPattern::Unmodified => {
                    push(d, &lp, "traversal of list", BindingTime::Static, true);
                }
                ListPattern::MayModify => {
                    push(
                        d,
                        &lp,
                        &format!("{len} modified-flag tests"),
                        BindingTime::Dynamic,
                        false,
                    );
                    push(d, &lp, "unrolled element traversal", BindingTime::Static, false);
                }
                ListPattern::LastOnly => {
                    push(
                        d,
                        &lp,
                        &format!("{} modified-flag tests", len - 1),
                        BindingTime::Static,
                        true,
                    );
                    push(d, &lp, "1 modified-flag test (tail)", BindingTime::Dynamic, false);
                    push(d, &lp, "unrolled element traversal", BindingTime::Static, false);
                }
                ListPattern::Positions(ps) => {
                    let kept = ps.len().min(*len);
                    push(
                        d,
                        &lp,
                        &format!("{} modified-flag tests", len.saturating_sub(kept)),
                        BindingTime::Static,
                        true,
                    );
                    if kept > 0 {
                        push(
                            d,
                            &lp,
                            &format!("{kept} modified-flag tests (positions)"),
                            BindingTime::Dynamic,
                            false,
                        );
                    }
                }
            }
        }
        SpecShape::Dynamic => {
            push(d, path, "virtual dispatch (generic fallback)", BindingTime::Dynamic, false);
            push(d, path, "modified-flag test", BindingTime::Dynamic, false);
            push(d, path, "record local state", BindingTime::Dynamic, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::FieldType;

    fn setup() -> (ClassRegistry, SpecShape, SpecShape) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let generic_shape = SpecShape::object(
            holder,
            NodePattern::MayModify,
            vec![(0, SpecShape::list(elem, 1, 5, ListPattern::MayModify))],
        );
        let frozen_shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 5, ListPattern::LastOnly))],
        );
        (reg, generic_shape, frozen_shape)
    }

    #[test]
    fn structure_specialization_makes_dispatch_static() {
        let (reg, shape, _) = setup();
        let div = divide(&reg, &shape);
        let dispatch =
            div.entries().iter().find(|e| e.action.contains("virtual dispatch")).unwrap();
        assert_eq!(dispatch.binding, BindingTime::Static);
        assert!(dispatch.eliminated);
    }

    #[test]
    fn may_modify_keeps_flag_tests_dynamic() {
        let (reg, shape, _) = setup();
        let div = divide(&reg, &shape);
        assert!(div
            .entries()
            .iter()
            .any(|e| e.action.contains("modified-flag test") && e.binding == BindingTime::Dynamic));
    }

    #[test]
    fn pattern_specialization_eliminates_more_than_structure_alone() {
        let (reg, generic, frozen) = setup();
        let d1 = divide(&reg, &generic);
        let d2 = divide(&reg, &frozen);
        assert!(d2.eliminated_count() > d1.eliminated_count());
        assert!(d2.residual_count() < d1.residual_count());
    }

    #[test]
    fn unmodified_subtree_is_eliminated_wholesale() {
        let (reg, _, _) = setup();
        let holder = reg.id_of("Holder").unwrap();
        let elem = reg.id_of("Elem").unwrap();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 5, ListPattern::Unmodified))],
        );
        let div = divide(&reg, &shape);
        assert!(div.entries().iter().all(|e| e.eliminated || e.binding == BindingTime::Static));
        assert_eq!(div.residual_count(), 0);
    }

    #[test]
    fn render_contains_every_entry() {
        let (reg, shape, _) = setup();
        let div = divide(&reg, &shape);
        let text = div.render();
        for e in div.entries() {
            assert!(text.contains(&e.action), "{}", e.action);
        }
        assert!(text.contains("root.head"));
    }

    #[test]
    fn dynamic_shape_is_fully_dynamic() {
        let (reg, _, _) = setup();
        let div = divide(&reg, &SpecShape::Dynamic);
        assert_eq!(div.eliminated_count(), 0);
        assert!(div.entries().iter().all(|e| e.binding == BindingTime::Dynamic));
    }
}
