//! Automatic construction of specialization classes from observed
//! behaviour — the paper's stated future work implemented.
//!
//! > "To automate this process, we propose to automatically construct
//! > specialization classes based on an analysis of the data modification
//! > pattern of the program." (§7)
//!
//! A [`ProfileRecorder`] watches a program run: before each checkpoint it
//! [`observe`](ProfileRecorder::observe)s the compound structures — their
//! actual shape (classes, linked-list chains) and which parts are
//! currently dirty. After enough rounds, [`ProfileRecorder::infer`]
//! emits the [`SpecShape`] a programmer would have written by hand:
//!
//! * edges whose shape was identical in every observation become static
//!   structure (objects and fixed-length lists);
//! * edges whose shape varied across observations or across structures
//!   degrade to [`SpecShape::Dynamic`] (generic fallback) — never to an
//!   unsound declaration;
//! * nodes never seen dirty become `FrozenHere`/`Unmodified`; list
//!   positions never seen dirty are dropped from the pattern
//!   (`Unmodified`, `LastOnly`, or `Positions`), exactly mirroring the
//!   hand declarations of Figures 5/6 and the synthetic experiments.
//!
//! Inference is *conservative with respect to the observations*: the
//! resulting plan records every object that was ever observed modified.
//! As with any profile-guided method, a phase that later modifies objects
//! it never modified during profiling needs guarded execution
//! ([`crate::GuardMode::Checked`]) or re-profiling; the checked executor
//! turns such drift into an error instead of a silent state loss.

use crate::error::SpecError;
use crate::shape::{ListPattern, NodePattern, SpecShape};
use ickp_heap::{ClassId, Heap, ObjectId, Value};

/// A profiled structural node, accumulated over observations.
#[derive(Debug, Clone, PartialEq)]
enum ProfNode {
    Object {
        class: ClassId,
        modified_seen: bool,
        /// Children by slot. `None` means the slot was null at first
        /// observation (and must stay null, else the edge degrades).
        children: Vec<(usize, Option<ProfNode>)>,
    },
    List {
        elem: ClassId,
        next_slot: usize,
        len: usize,
        /// Which positions were ever observed modified.
        modified_at: Vec<bool>,
    },
    /// Shape varied across observations or structures: generic fallback.
    Dynamic,
}

/// Records structure and modification profiles across checkpoint rounds.
///
/// # Example
///
/// ```
/// use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
/// use ickp_spec::{ProfileRecorder, Specializer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// let elem = reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
/// let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))])?;
/// let mut heap = Heap::new(reg);
/// let e1 = heap.alloc(elem)?;
/// let e0 = heap.alloc(elem)?;
/// heap.set_field(e0, 1, Value::Ref(Some(e1)))?;
/// let h = heap.alloc(holder)?;
/// heap.set_field(h, 0, Value::Ref(Some(e0)))?;
/// heap.reset_all_modified();
///
/// // Profile two rounds in which only the tail is ever dirtied.
/// let mut recorder = ProfileRecorder::new();
/// for _ in 0..2 {
///     heap.set_field(e1, 0, Value::Int(7))?;
///     recorder.observe(&heap, &[h])?;
///     heap.reset_all_modified();
/// }
/// let shape = recorder.infer()?;
/// let plan = Specializer::new(heap.registry()).compile(&shape)?;
/// assert!(!plan.has_dynamic());
/// # Ok(()) }
/// ```
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    root: Option<ProfNode>,
    observations: usize,
}

impl ProfileRecorder {
    /// Creates an empty recorder.
    pub fn new() -> ProfileRecorder {
        ProfileRecorder::default()
    }

    /// Number of completed observations.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Observes the current dirty state of every structure in `roots`.
    ///
    /// Call this *before* each checkpoint (while the modified flags still
    /// describe the round's writes). All roots contribute to one shared
    /// profile — they are instances of the same compound structure, as in
    /// the paper's benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates heap errors (dangling handles).
    pub fn observe(&mut self, heap: &Heap, roots: &[ObjectId]) -> Result<(), SpecError> {
        for &root in roots {
            let observed = walk(heap, root, 0)?;
            self.root = Some(match self.root.take() {
                None => observed,
                Some(prev) => merge(prev, observed),
            });
        }
        self.observations += 1;
        Ok(())
    }

    /// Synthesizes the specialization class the observations justify.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::PatternMismatch`] if nothing was observed.
    pub fn infer(&self) -> Result<SpecShape, SpecError> {
        let root = self.root.as_ref().ok_or_else(|| SpecError::PatternMismatch {
            what: "no observations recorded".into(),
        })?;
        Ok(lower(root))
    }
}

const MAX_DEPTH: usize = 64;

/// Walks one structure, classifying chains of same-class objects through
/// a single ref slot as lists.
fn walk(heap: &Heap, id: ObjectId, depth: usize) -> Result<ProfNode, SpecError> {
    if depth > MAX_DEPTH {
        // Deep or cyclic: give up on static shape here.
        return Ok(ProfNode::Dynamic);
    }
    let obj = heap.object(id)?;
    let class = obj.class();

    // List detection: does some ref slot chain to another object of the
    // same class? (The canonical `next` link.)
    let mut next_slot = None;
    for (slot, value) in obj.fields().iter().enumerate() {
        if let Value::Ref(Some(child)) = value {
            if heap.class_of(*child)? == class {
                next_slot = Some(slot);
                break;
            }
        }
    }
    if let Some(next_slot) = next_slot {
        // Collect the whole chain; every element must be of the same
        // class, linked through the same slot, and the chain must be
        // acyclic within the depth bound.
        let mut modified_at = Vec::new();
        let mut cur = Some(id);
        while let Some(node) = cur {
            if modified_at.len() > MAX_DEPTH * 16 {
                return Ok(ProfNode::Dynamic);
            }
            if heap.class_of(node)? != class {
                return Ok(ProfNode::Dynamic);
            }
            modified_at.push(heap.is_modified(node)?);
            cur = match heap.field(node, next_slot)? {
                Value::Ref(next) => next,
                _ => return Ok(ProfNode::Dynamic),
            };
        }
        let len = modified_at.len();
        return Ok(ProfNode::List { elem: class, next_slot, len, modified_at });
    }

    // Plain object: profile the non-null ref children.
    let mut children = Vec::new();
    for (slot, value) in obj.fields().iter().enumerate() {
        match value {
            Value::Ref(Some(child)) => {
                children.push((slot, Some(walk(heap, *child, depth + 1)?)));
            }
            Value::Ref(None) => children.push((slot, None)),
            _ => {}
        }
    }
    Ok(ProfNode::Object { class, modified_seen: heap.is_modified(id)?, children })
}

/// Merges two observations of (supposedly) the same structural position;
/// mismatches degrade to [`ProfNode::Dynamic`].
fn merge(a: ProfNode, b: ProfNode) -> ProfNode {
    match (a, b) {
        (
            ProfNode::Object { class: ca, modified_seen: ma, children: cha },
            ProfNode::Object { class: cb, modified_seen: mb, children: chb },
        ) if ca == cb && same_slots(&cha, &chb) => {
            let children = cha
                .into_iter()
                .zip(chb)
                .map(|((slot, a), (_, b))| {
                    let merged = match (a, b) {
                        (None, None) => None,
                        (Some(a), Some(b)) => Some(merge(a, b)),
                        // Edge flipped between null and non-null.
                        _ => Some(ProfNode::Dynamic),
                    };
                    (slot, merged)
                })
                .collect();
            ProfNode::Object { class: ca, modified_seen: ma || mb, children }
        }
        (
            ProfNode::List { elem: ea, next_slot: na, len: la, modified_at: mma },
            ProfNode::List { elem: eb, next_slot: nb, len: lb, modified_at: mmb },
        ) if ea == eb && na == nb && la == lb => {
            let modified_at = mma.into_iter().zip(mmb).map(|(x, y)| x || y).collect();
            ProfNode::List { elem: ea, next_slot: na, len: la, modified_at }
        }
        _ => ProfNode::Dynamic,
    }
}

fn same_slots(a: &[(usize, Option<ProfNode>)], b: &[(usize, Option<ProfNode>)]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|((sa, _), (sb, _))| sa == sb)
}

fn fully_unmodified(node: &ProfNode) -> bool {
    match node {
        ProfNode::Object { modified_seen, children, .. } => {
            !modified_seen && children.iter().all(|(_, c)| c.as_ref().is_none_or(fully_unmodified))
        }
        ProfNode::List { modified_at, .. } => modified_at.iter().all(|&m| !m),
        ProfNode::Dynamic => false,
    }
}

/// Lowers the merged profile into a specialization class.
fn lower(node: &ProfNode) -> SpecShape {
    match node {
        ProfNode::Dynamic => SpecShape::Dynamic,
        ProfNode::List { elem, next_slot, len, modified_at } => {
            let dirty: Vec<usize> =
                modified_at.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
            let pattern = if dirty.is_empty() {
                ListPattern::Unmodified
            } else if dirty == [len - 1] {
                ListPattern::LastOnly
            } else if dirty.len() == *len {
                ListPattern::MayModify
            } else {
                ListPattern::Positions(dirty)
            };
            SpecShape::list(*elem, *next_slot, *len, pattern)
        }
        ProfNode::Object { class, modified_seen, children } => {
            if fully_unmodified(node) {
                return SpecShape::object(*class, NodePattern::Unmodified, vec![]);
            }
            let pattern =
                if *modified_seen { NodePattern::MayModify } else { NodePattern::FrozenHere };
            let lowered = children
                .iter()
                .filter_map(|(slot, child)| {
                    // Always-null edges need no instructions; the record
                    // template still captures the null when the node is
                    // recorded.
                    child.as_ref().map(|c| (*slot, lower(c)))
                })
                .collect();
            SpecShape::object(*class, pattern, lowered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Specializer;
    use ickp_heap::{ClassRegistry, FieldType};

    struct Fixture {
        heap: Heap,
        holder: ClassId,
        roots: Vec<ObjectId>,
        lists: Vec<Vec<Vec<ObjectId>>>,
    }

    /// `n` holders, each with `lists` lists of `len` elements.
    fn fixture(n: usize, lists: usize, len: usize) -> Fixture {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let names: Vec<String> = (0..lists).map(|i| format!("l{i}")).collect();
        let fields: Vec<(&str, FieldType)> =
            names.iter().map(|s| (s.as_str(), FieldType::Ref(Some(elem)))).collect();
        let holder = reg.define("Holder", None, &fields).unwrap();
        let mut heap = Heap::new(reg);
        let mut roots = Vec::new();
        let mut all = Vec::new();
        for _ in 0..n {
            let h = heap.alloc(holder).unwrap();
            let mut per = Vec::new();
            for l in 0..lists {
                let mut ids = Vec::new();
                let mut next = None;
                for _ in 0..len {
                    let e = heap.alloc(elem).unwrap();
                    heap.set_field(e, 1, Value::Ref(next)).unwrap();
                    next = Some(e);
                    ids.push(e);
                }
                ids.reverse();
                heap.set_field(h, l, Value::Ref(Some(ids[0]))).unwrap();
                per.push(ids);
            }
            roots.push(h);
            all.push(per);
        }
        heap.reset_all_modified();
        Fixture { heap, holder, roots, lists: all }
    }

    #[test]
    fn infers_last_only_pattern_from_observations() {
        let mut f = fixture(4, 2, 5);
        let mut rec = ProfileRecorder::new();
        for round in 0..3 {
            for s in 0..4 {
                let tail = f.lists[s][0][4];
                f.heap.set_field(tail, 0, Value::Int(round)).unwrap();
            }
            rec.observe(&f.heap, &f.roots.clone()).unwrap();
            f.heap.reset_all_modified();
        }
        let shape = rec.infer().unwrap();
        let SpecShape::Object { class, pattern, children } = &shape else { panic!() };
        assert_eq!(*class, f.holder);
        assert_eq!(*pattern, NodePattern::FrozenHere, "holder never dirtied");
        // List 0: last-only; list 1: unmodified.
        let SpecShape::List { pattern: p0, len, .. } = &children[0].1 else { panic!() };
        assert_eq!(*p0, ListPattern::LastOnly);
        assert_eq!(*len, 5);
        let SpecShape::List { pattern: p1, .. } = &children[1].1 else { panic!() };
        assert_eq!(*p1, ListPattern::Unmodified);
        assert_eq!(rec.observations(), 3);
    }

    #[test]
    fn infers_positions_pattern() {
        let mut f = fixture(3, 1, 6);
        let mut rec = ProfileRecorder::new();
        for s in 0..3 {
            f.heap.set_field(f.lists[s][0][1], 0, Value::Int(1)).unwrap();
            f.heap.set_field(f.lists[s][0][3], 0, Value::Int(1)).unwrap();
        }
        rec.observe(&f.heap, &f.roots.clone()).unwrap();
        let shape = rec.infer().unwrap();
        let SpecShape::Object { children, .. } = &shape else { panic!() };
        let SpecShape::List { pattern, .. } = &children[0].1 else { panic!() };
        assert_eq!(*pattern, ListPattern::Positions(vec![1, 3]));
    }

    #[test]
    fn inferred_plan_compiles_and_is_valid() {
        let mut f = fixture(3, 3, 4);
        let mut rec = ProfileRecorder::new();
        for s in 0..3 {
            f.heap.set_field(f.lists[s][1][3], 0, Value::Int(9)).unwrap();
        }
        rec.observe(&f.heap, &f.roots.clone()).unwrap();
        let shape = rec.infer().unwrap();
        shape.validate(f.heap.registry()).unwrap();
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        assert!(!plan.has_dynamic());
        // Only list 1's tail survives into the plan: one test, one record.
        let tests = plan
            .ops()
            .iter()
            .filter(|op| matches!(op, crate::plan::Op::TestModified { .. }))
            .count();
        assert_eq!(tests, 1);
    }

    #[test]
    fn shape_variation_across_structures_degrades_to_dynamic() {
        // Two holders whose lists have different lengths.
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let mut heap = Heap::new(reg);
        let mut mk = |n: usize| {
            let mut next = None;
            let mut last = None;
            for _ in 0..n {
                let e = heap.alloc(elem).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                last = Some(e);
            }
            let h = heap.alloc(holder).unwrap();
            heap.set_field(h, 0, Value::Ref(next)).unwrap();
            (h, last.unwrap())
        };
        let (h1, t1) = mk(3);
        let (h2, _) = mk(5);
        heap.reset_all_modified();
        heap.set_field(t1, 0, Value::Int(1)).unwrap();

        let mut rec = ProfileRecorder::new();
        rec.observe(&heap, &[h1, h2]).unwrap();
        let shape = rec.infer().unwrap();
        let SpecShape::Object { children, .. } = &shape else { panic!() };
        assert_eq!(children[0].1, SpecShape::Dynamic, "lengths disagree → dynamic edge");
    }

    #[test]
    fn null_to_nonnull_flips_degrade_the_edge() {
        let mut reg = ClassRegistry::new();
        let leaf = reg.define("Leaf", None, &[("v", FieldType::Int)]).unwrap();
        let holder = reg.define("Holder", None, &[("x", FieldType::Ref(Some(leaf)))]).unwrap();
        let mut heap = Heap::new(reg);
        let h = heap.alloc(holder).unwrap();
        heap.reset_all_modified();

        let mut rec = ProfileRecorder::new();
        rec.observe(&heap, &[h]).unwrap(); // x is null
        let l = heap.alloc(leaf).unwrap();
        heap.set_field(h, 0, Value::Ref(Some(l))).unwrap();
        rec.observe(&heap, &[h]).unwrap(); // x now set
        let shape = rec.infer().unwrap();
        let SpecShape::Object { children, .. } = &shape else { panic!() };
        assert_eq!(children[0].1, SpecShape::Dynamic);
    }

    #[test]
    fn cycles_degrade_to_dynamic_instead_of_hanging() {
        let mut reg = ClassRegistry::new();
        let a = reg.define("A", None, &[("x", FieldType::Ref(None))]).unwrap();
        let b = reg.define("B", None, &[("x", FieldType::Ref(None))]).unwrap();
        let mut heap = Heap::new(reg);
        // Alternating-class cycle: not a "list" (classes differ), so the
        // object walker recurses and must hit the depth bound.
        let oa = heap.alloc(a).unwrap();
        let ob = heap.alloc(b).unwrap();
        heap.set_field(oa, 0, Value::Ref(Some(ob))).unwrap();
        heap.set_field(ob, 0, Value::Ref(Some(oa))).unwrap();
        let mut rec = ProfileRecorder::new();
        rec.observe(&heap, &[oa]).unwrap();
        // Somewhere in the inferred shape there is a Dynamic cut.
        fn has_dynamic(s: &SpecShape) -> bool {
            match s {
                SpecShape::Dynamic => true,
                SpecShape::Object { children, .. } => children.iter().any(|(_, c)| has_dynamic(c)),
                SpecShape::List { .. } => false,
            }
        }
        assert!(has_dynamic(&rec.infer().unwrap()));
    }

    #[test]
    fn empty_recorder_refuses_to_infer() {
        assert!(ProfileRecorder::new().infer().is_err());
    }
}
