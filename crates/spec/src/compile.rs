//! The plan compiler: from declarations to residual checkpoint code.
//!
//! [`Specializer::compile`] plays the role of the paper's
//! JSCC → Tempo → (inlined residual code) pipeline: it consumes a validated
//! [`SpecShape`] (the specialization classes) and *executes the static part
//! of the generic checkpointing algorithm at compile time* — class
//! dispatch, layout lookup, list-length-bounded iteration — leaving behind
//! only the dynamic residue as [`Op`]s:
//!
//! * virtual `record`/`fold` calls become inlined [`Op::LoadRef`] chains
//!   and [`Op::Record`] templates (structure specialization, Fig. 5);
//! * modified-flag tests survive only where the declared pattern says the
//!   flag can actually vary, and statically-unmodified subtrees generate
//!   **no instructions at all** (modification-pattern specialization,
//!   Fig. 6).

use crate::error::SpecError;
use crate::plan::{Op, Plan, RecordTemplate, Reg};
use crate::shape::{ListPattern, NodePattern, SpecShape};
use ickp_heap::{ClassId, ClassRegistry};
use std::collections::HashMap;

/// Compiles [`SpecShape`] declarations into executable [`Plan`]s.
///
/// # Example
///
/// ```
/// use ickp_heap::{ClassRegistry, FieldType};
/// use ickp_spec::{ListPattern, NodePattern, SpecShape, Specializer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// let elem = reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
/// let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))])?;
///
/// let shape = SpecShape::object(
///     holder,
///     NodePattern::FrozenHere,
///     vec![(0, SpecShape::list(elem, 1, 5, ListPattern::LastOnly))],
/// );
/// let plan = Specializer::new(&reg).compile(&shape)?;
/// // 1 root bind + 5 loads to reach the tail + 1 test + 1 record
/// // + 1 end-of-list guard:
/// assert_eq!(plan.ops().len(), 9);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Specializer<'r> {
    registry: &'r ClassRegistry,
}

impl<'r> Specializer<'r> {
    /// Creates a specializer over the given class registry.
    pub fn new(registry: &'r ClassRegistry) -> Specializer<'r> {
        Specializer { registry }
    }

    /// The registry this specializer compiles against.
    pub fn registry(&self) -> &ClassRegistry {
        self.registry
    }

    /// Compiles a declaration into a plan.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the declaration fails
    /// [`SpecShape::validate`], or [`SpecError::PatternMismatch`] if the
    /// root shape is `Dynamic` (a fully dynamic root is just the generic
    /// checkpointer — nothing to specialize).
    pub fn compile(&self, shape: &SpecShape) -> Result<Plan, SpecError> {
        shape.validate(self.registry)?;
        let mut cx = Compiler {
            registry: self.registry,
            ops: Vec::new(),
            templates: Vec::new(),
            template_ids: HashMap::new(),
            next_reg: 0,
            has_dynamic: false,
        };
        match shape {
            SpecShape::Dynamic => {
                return Err(SpecError::PatternMismatch {
                    what: "root shape is Dynamic; use the generic checkpointer instead".into(),
                })
            }
            SpecShape::Object { class, pattern, children } => {
                let root = cx.alloc_reg();
                cx.ops.push(Op::LoadRoot { dst: root, class: *class });
                cx.emit_object(root, *class, *pattern, children)?;
            }
            SpecShape::List { elem_class, next_slot, len, pattern } => {
                // A bare list: the checkpoint root is element 0.
                let root = cx.alloc_reg();
                cx.ops.push(Op::LoadRoot { dst: root, class: *elem_class });
                cx.emit_list_from(root, *elem_class, *next_slot, *len, pattern)?;
            }
        }
        Ok(Plan::new(cx.ops, cx.templates, cx.next_reg, cx.has_dynamic))
    }

    /// Compiles a declaration and then runs the register-compaction pass
    /// ([`crate::compact_registers`]), shrinking the plan's register file
    /// to the true number of simultaneously live objects.
    ///
    /// # Errors
    ///
    /// Fails like [`Specializer::compile`].
    pub fn compile_optimized(&self, shape: &SpecShape) -> Result<Plan, SpecError> {
        Ok(crate::opt::compact_registers(&self.compile(shape)?))
    }
}

struct Compiler<'r> {
    registry: &'r ClassRegistry,
    ops: Vec<Op>,
    templates: Vec<RecordTemplate>,
    template_ids: HashMap<ClassId, u32>,
    next_reg: Reg,
    has_dynamic: bool,
}

impl<'r> Compiler<'r> {
    fn alloc_reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn template(&mut self, class: ClassId) -> Result<u32, SpecError> {
        if let Some(&id) = self.template_ids.get(&class) {
            return Ok(id);
        }
        let def = self.registry.class(class)?;
        let kinds = def.layout().iter().map(|f| f.ty()).collect();
        let id = self.templates.len() as u32;
        self.templates.push(RecordTemplate::new(class, kinds));
        self.template_ids.insert(class, id);
        Ok(id)
    }

    fn emit_test_and_record(&mut self, reg: Reg, class: ClassId) -> Result<(), SpecError> {
        let template = self.template(class)?;
        self.ops.push(Op::TestModified { obj: reg, skip: 1 });
        self.ops.push(Op::Record { obj: reg, template });
        Ok(())
    }

    /// Emits the body for an object already bound in `reg`.
    fn emit_object(
        &mut self,
        reg: Reg,
        class: ClassId,
        pattern: NodePattern,
        children: &[(usize, SpecShape)],
    ) -> Result<(), SpecError> {
        match pattern {
            // Static BTA decision: the flag can vary → residualize the test.
            NodePattern::MayModify => self.emit_test_and_record(reg, class)?,
            // Static BTA decision: flag is known false → test and record
            // both fold away; only the descent remains.
            NodePattern::FrozenHere => {}
            // Whole subtree known unmodified: the caller never even loads
            // it, so reaching here means the declaration was the root.
            NodePattern::Unmodified => return Ok(()),
        }
        for (slot, child) in children {
            self.emit_child(reg, *slot, child)?;
        }
        Ok(())
    }

    /// Emits the load + body for a declared child of `parent`.
    fn emit_child(&mut self, parent: Reg, slot: usize, shape: &SpecShape) -> Result<(), SpecError> {
        // Modification-pattern specialization: a statically-unmodified
        // subtree produces no loads, no tests, no records — it simply
        // disappears from the residual program (Fig. 6).
        if shape.is_fully_unmodified() {
            return Ok(());
        }
        match shape {
            SpecShape::Object { class, pattern, children } => {
                let dst = self.alloc_reg();
                self.ops.push(Op::LoadRef { dst, src: parent, slot: slot as u32, class: *class });
                self.emit_object(dst, *class, *pattern, children)
            }
            SpecShape::List { elem_class, next_slot, len, pattern } => {
                let head = self.alloc_reg();
                self.ops.push(Op::LoadRef {
                    dst: head,
                    src: parent,
                    slot: slot as u32,
                    class: *elem_class,
                });
                self.emit_list_from(head, *elem_class, *next_slot, *len, pattern)
            }
            SpecShape::Dynamic => {
                let dst = self.alloc_reg();
                // Null is fine on a dynamic edge: skip the fallback.
                self.ops.push(Op::LoadDyn { dst, src: parent, slot: slot as u32, skip: 1 });
                self.ops.push(Op::Generic { obj: dst });
                self.has_dynamic = true;
                Ok(())
            }
        }
    }

    /// Emits the unrolled body of a list whose element 0 is already bound
    /// in `head`.
    fn emit_list_from(
        &mut self,
        head: Reg,
        elem: ClassId,
        next_slot: usize,
        len: usize,
        pattern: &ListPattern,
    ) -> Result<(), SpecError> {
        match pattern {
            ListPattern::Unmodified => Ok(()),
            // Unrolled generic body: one test per element, loads between.
            ListPattern::MayModify => {
                let mut cur = head;
                for i in 0..len {
                    self.emit_test_and_record(cur, elem)?;
                    if i + 1 < len {
                        let next = self.alloc_reg();
                        self.ops.push(Op::LoadRef {
                            dst: next,
                            src: cur,
                            slot: next_slot as u32,
                            class: elem,
                        });
                        cur = next;
                    }
                }
                self.ops.push(Op::GuardListEnd { obj: cur, slot: next_slot as u32 });
                Ok(())
            }
            // Chase `next` to the tail with *no tests on the way* — the
            // paper's Fig. 10 scenario: traversal remains, tests vanish.
            ListPattern::LastOnly => {
                let mut cur = head;
                for _ in 1..len {
                    let next = self.alloc_reg();
                    self.ops.push(Op::LoadRef {
                        dst: next,
                        src: cur,
                        slot: next_slot as u32,
                        class: elem,
                    });
                    cur = next;
                }
                self.emit_test_and_record(cur, elem)?;
                self.ops.push(Op::GuardListEnd { obj: cur, slot: next_slot as u32 });
                Ok(())
            }
            ListPattern::Positions(ps) => {
                let mut positions: Vec<usize> = ps.clone();
                positions.sort_unstable();
                positions.dedup();
                let Some(&max_pos) = positions.last() else {
                    return Ok(()); // empty: fully unmodified, handled above
                };
                // Dead-load elimination: never chase past the last position
                // that can possibly be dirty.
                let mut cur = head;
                for i in 0..=max_pos {
                    if positions.binary_search(&i).is_ok() {
                        self.emit_test_and_record(cur, elem)?;
                    }
                    if i < max_pos {
                        let next = self.alloc_reg();
                        self.ops.push(Op::LoadRef {
                            dst: next,
                            src: cur,
                            slot: next_slot as u32,
                            class: elem,
                        });
                        cur = next;
                    }
                }
                // The dead-load elimination above stops at the deepest
                // possibly-dirty position, so the tail (and its length
                // guard) is only reachable when that position is the tail.
                if max_pos == len - 1 {
                    self.ops.push(Op::GuardListEnd { obj: cur, slot: next_slot as u32 });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GuardMode;
    use ickp_core::{decode, CheckpointKind, StreamWriter, TraversalStats};
    use ickp_heap::{FieldType, Heap, ObjectId, Value};

    /// Class setup mirroring the synthetic benchmark: a structure holding
    /// two lists.
    struct Fixture {
        heap: Heap,
        elem: ClassId,
        holder: ClassId,
    }

    fn fixture() -> Fixture {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg
            .define(
                "Holder",
                None,
                &[("l0", FieldType::Ref(Some(elem))), ("l1", FieldType::Ref(Some(elem)))],
            )
            .unwrap();
        Fixture { heap: Heap::new(reg), elem, holder }
    }

    impl Fixture {
        /// Builds a holder with two lists of `len` elements each; returns
        /// (holder, elements of list 0, elements of list 1).
        fn build(&mut self, len: usize) -> (ObjectId, Vec<ObjectId>, Vec<ObjectId>) {
            let make_list = |heap: &mut Heap, elem: ClassId| {
                let mut ids = Vec::with_capacity(len);
                let mut next: Option<ObjectId> = None;
                for _ in 0..len {
                    let e = heap.alloc(elem).unwrap();
                    heap.set_field(e, 1, Value::Ref(next)).unwrap();
                    next = Some(e);
                    ids.push(e);
                }
                ids.reverse(); // position 0 first
                ids
            };
            let l0 = make_list(&mut self.heap, self.elem);
            let l1 = make_list(&mut self.heap, self.elem);
            let h = self.heap.alloc(self.holder).unwrap();
            self.heap.set_field(h, 0, Value::Ref(Some(l0[0]))).unwrap();
            self.heap.set_field(h, 1, Value::Ref(Some(l1[0]))).unwrap();
            self.heap.reset_all_modified();
            (h, l0, l1)
        }

        fn run(&mut self, plan: &Plan, root: ObjectId) -> (Vec<u8>, TraversalStats) {
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            plan.executor()
                .run(&mut self.heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
                .unwrap();
            (writer.finish(), stats)
        }
    }

    fn two_list_shape(f: &Fixture, len: usize, p0: ListPattern, p1: ListPattern) -> SpecShape {
        SpecShape::object(
            f.holder,
            NodePattern::FrozenHere,
            vec![
                (0, SpecShape::list(f.elem, 1, len, p0)),
                (1, SpecShape::list(f.elem, 1, len, p1)),
            ],
        )
    }

    #[test]
    fn may_modify_plan_tests_every_element() {
        let mut f = fixture();
        let (h, l0, _) = f.build(3);
        let shape = two_list_shape(&f, 3, ListPattern::MayModify, ListPattern::MayModify);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();

        f.heap.set_field(l0[1], 0, Value::Int(5)).unwrap();
        let (bytes, stats) = f.run(&plan, h);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert_eq!(stats.flag_tests, 6, "three tests per list");
        assert_eq!(stats.objects_recorded, 1);
        assert_eq!(stats.virtual_calls, 0);
    }

    #[test]
    fn unmodified_list_generates_no_instructions() {
        let mut f = fixture();
        let (h, _, l1) = f.build(4);
        let shape = two_list_shape(&f, 4, ListPattern::Unmodified, ListPattern::MayModify);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        // root bind + list1's (4 tests/records interleaved with 3 loads):
        // 1 + 1(load head) + 4*2 + 3 + 1(end guard) = 14
        assert_eq!(plan.ops().len(), 14);

        f.heap.set_field(l1[3], 0, Value::Int(9)).unwrap();
        let (bytes, stats) = f.run(&plan, h);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert_eq!(stats.flag_tests, 4, "the unmodified list is never tested");
        assert_eq!(stats.refs_followed, 4, "head + 3 next links of list 1 only");
    }

    #[test]
    fn last_only_plan_has_no_tests_on_the_way() {
        let mut f = fixture();
        let (h, l0, _) = f.build(5);
        let shape = two_list_shape(&f, 5, ListPattern::LastOnly, ListPattern::Unmodified);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        // 1 root + 1 head load + 4 next loads + 1 test + 1 record
        // + 1 end guard = 9
        assert_eq!(plan.ops().len(), 9);

        f.heap.set_field(l0[4], 0, Value::Int(1)).unwrap();
        let (bytes, stats) = f.run(&plan, h);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert_eq!(d.objects[0].stable, f.heap.stable_id(l0[4]).unwrap());
        assert_eq!(stats.flag_tests, 1, "only the tail is tested");
    }

    #[test]
    fn positions_plan_stops_at_the_deepest_position() {
        let mut f = fixture();
        let (h, l0, _) = f.build(5);
        let shape =
            two_list_shape(&f, 5, ListPattern::Positions(vec![2, 0]), ListPattern::Unmodified);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        // 1 root + head load + [test+rec pos0] + load + [pos1: nothing] +
        // load + [test+rec pos2] = 1+1+2+1+1+2 = 8; no loads past pos 2.
        assert_eq!(plan.ops().len(), 8);

        f.heap.set_field(l0[0], 0, Value::Int(1)).unwrap();
        f.heap.set_field(l0[2], 0, Value::Int(2)).unwrap();
        let (bytes, stats) = f.run(&plan, h);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 2);
        assert_eq!(stats.flag_tests, 2);
        assert_eq!(stats.refs_followed, 3, "head + two next links, never to the tail");
    }

    #[test]
    fn duplicate_and_unsorted_positions_are_normalized() {
        let mut f = fixture();
        let (_, _, _) = f.build(4);
        let a =
            two_list_shape(&f, 4, ListPattern::Positions(vec![3, 1, 1]), ListPattern::Unmodified);
        let b = two_list_shape(&f, 4, ListPattern::Positions(vec![1, 3]), ListPattern::Unmodified);
        let spec = Specializer::new(f.heap.registry());
        assert_eq!(spec.compile(&a).unwrap(), spec.compile(&b).unwrap());
    }

    #[test]
    fn nested_object_structure_is_fully_inlined() {
        // Mirror of the paper's Attributes → BTEntry → BT chain.
        let mut reg = ClassRegistry::new();
        let bt = reg.define("BT", None, &[("ann", FieldType::Int)]).unwrap();
        let bt_entry = reg.define("BTEntry", None, &[("bt", FieldType::Ref(Some(bt)))]).unwrap();
        let attrs =
            reg.define("Attributes", None, &[("bt", FieldType::Ref(Some(bt_entry)))]).unwrap();
        let shape = SpecShape::object(
            attrs,
            NodePattern::MayModify,
            vec![(
                0,
                SpecShape::object(bt_entry, NodePattern::MayModify, vec![(0, SpecShape::leaf(bt))]),
            )],
        );
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        // LoadRoot, T, R, LoadRef, T, R, LoadRef, T, R
        assert_eq!(plan.ops().len(), 9);
        assert_eq!(plan.templates().len(), 3);
        assert!(!plan.has_dynamic());
    }

    #[test]
    fn templates_are_shared_between_same_class_nodes() {
        let mut f = fixture();
        f.build(2);
        let shape = two_list_shape(&f, 2, ListPattern::MayModify, ListPattern::MayModify);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        assert_eq!(plan.templates().len(), 1, "one Elem template, reused");
    }

    #[test]
    fn dynamic_root_is_rejected() {
        let f = fixture();
        let err = Specializer::new(f.heap.registry()).compile(&SpecShape::Dynamic).unwrap_err();
        assert!(matches!(err, SpecError::PatternMismatch { .. }));
    }

    #[test]
    fn dynamic_child_marks_plan_and_survives_compile() {
        let mut f = fixture();
        f.build(1);
        let shape =
            SpecShape::object(f.holder, NodePattern::FrozenHere, vec![(0, SpecShape::Dynamic)]);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        assert!(plan.has_dynamic());
    }

    #[test]
    fn invalid_shape_is_rejected_at_compile_time() {
        let f = fixture();
        let bad = SpecShape::list(f.elem, 0, 3, ListPattern::MayModify); // slot 0 is int
        assert!(Specializer::new(f.heap.registry()).compile(&bad).is_err());
    }

    #[test]
    fn bare_list_root_compiles_and_runs() {
        let mut f = fixture();
        let (_, l0, _) = f.build(3);
        let shape = SpecShape::list(f.elem, 1, 3, ListPattern::MayModify);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        f.heap.set_field(l0[2], 0, Value::Int(8)).unwrap();
        let (bytes, stats) = f.run(&plan, l0[0]);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert_eq!(stats.flag_tests, 3);
    }

    #[test]
    fn fully_unmodified_root_produces_an_effectively_empty_plan() {
        let mut f = fixture();
        let (h, _, _) = f.build(2);
        let shape = two_list_shape(&f, 2, ListPattern::Unmodified, ListPattern::Unmodified);
        let plan = Specializer::new(f.heap.registry()).compile(&shape).unwrap();
        assert_eq!(plan.ops().len(), 1, "only the root bind remains");
        let (bytes, stats) = f.run(&plan, h);
        let d = decode(&bytes, f.heap.registry()).unwrap();
        assert!(d.objects.is_empty());
        assert_eq!(stats.flag_tests, 0);
    }
}
