//! The specialized checkpoint driver.
//!
//! [`SpecializedCheckpointer`] is the drop-in replacement for
//! `ickp_core::Checkpointer`: it produces byte-identical
//! `CheckpointRecord`s (same stream format, same store, same restore path)
//! but runs a compiled [`Plan`] over each root instead of the generic
//! virtual-dispatch traversal.

use crate::plan::{GuardMode, Plan};
use ickp_core::{
    CheckpointKind, CheckpointRecord, CoreError, MethodTable, StreamWriter, TraversalStats,
};
use ickp_heap::{Heap, ObjectId, StableId};

/// Takes incremental checkpoints by executing specialized plans.
///
/// # Example
///
/// See the crate-level documentation of `ickp-spec`.
#[derive(Debug)]
pub struct SpecializedCheckpointer {
    mode: GuardMode,
    next_seq: u64,
    cumulative: TraversalStats,
}

impl SpecializedCheckpointer {
    /// Creates a driver; `mode` selects guarded or trusting plan execution.
    pub fn new(mode: GuardMode) -> SpecializedCheckpointer {
        SpecializedCheckpointer { mode, next_seq: 0, cumulative: TraversalStats::default() }
    }

    /// The guard mode in force.
    pub fn mode(&self) -> GuardMode {
        self.mode
    }

    /// Sequence number the next checkpoint will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Aligns the sequence counter with a store produced by other drivers
    /// (the generic checkpointer's base checkpoint, a reloaded store, …)
    /// so that records append contiguously with consistent stream headers.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// Counters summed over every checkpoint taken so far.
    pub fn cumulative_stats(&self) -> TraversalStats {
        self.cumulative
    }

    /// Takes one incremental checkpoint of `roots`, all sharing `plan`.
    ///
    /// This is the common case of the paper's benchmarks: many compound
    /// structures with the *same* declared shape, each checkpointed by one
    /// run of the same specialized routine.
    ///
    /// `methods` is needed only when the plan has `Dynamic` fallbacks.
    ///
    /// # Errors
    ///
    /// Fails like [`crate::PlanExecutor::run`]; on error no sequence number
    /// is consumed.
    pub fn checkpoint(
        &mut self,
        heap: &mut Heap,
        plan: &Plan,
        roots: &[ObjectId],
        methods: Option<&MethodTable>,
    ) -> Result<CheckpointRecord, CoreError> {
        self.checkpoint_each(heap, roots.iter().map(|&r| (plan, r)), methods)
    }

    /// Takes one incremental checkpoint where each root has its own plan
    /// (e.g. heterogeneous compound structures in one program phase).
    ///
    /// # Errors
    ///
    /// Fails like [`SpecializedCheckpointer::checkpoint`].
    pub fn checkpoint_each<'p, I>(
        &mut self,
        heap: &mut Heap,
        assignments: I,
        methods: Option<&MethodTable>,
    ) -> Result<CheckpointRecord, CoreError>
    where
        I: IntoIterator<Item = (&'p Plan, ObjectId)>,
    {
        let assignments: Vec<(&Plan, ObjectId)> = assignments.into_iter().collect();
        let root_ids: Vec<StableId> =
            assignments.iter().map(|&(_, r)| heap.stable_id(r)).collect::<Result<_, _>>()?;
        let seq = self.next_seq;
        let mut writer = StreamWriter::new(seq, CheckpointKind::Incremental, &root_ids);
        let mut stats = TraversalStats::default();

        // Reuse one executor per distinct plan to amortize register files
        // across consecutive roots sharing a plan.
        let mut current: Option<(*const Plan, crate::plan::PlanExecutor<'p>)> = None;
        for (plan, root) in &assignments {
            let plan_ptr: *const Plan = *plan;
            if !matches!(&current, Some((p, _)) if *p == plan_ptr) {
                current = Some((plan_ptr, plan.executor()));
            }
            let exec = &mut current.as_mut().expect("set above").1;
            exec.run(heap, *root, &mut writer, self.mode, methods, &mut stats)?;
        }

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        self.cumulative += stats;
        Ok(CheckpointRecord::from_parts(seq, CheckpointKind::Incremental, root_ids, bytes, stats))
    }
}

/// Result of [`SpecializedCheckpointer::checkpoint_or_fallback`].
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackOutcome {
    /// The checkpoint that was actually taken.
    pub record: CheckpointRecord,
    /// `true` if the plan's guards fired and the generic path ran instead.
    pub fell_back: bool,
}

impl SpecializedCheckpointer {
    /// Takes a checkpoint with a specialized plan, **falling back to the
    /// generic checkpointer** if the heap no longer matches the plan's
    /// compiled shape.
    ///
    /// This is the safety valve the paper's hand-written alternative
    /// lacks ("when the program is modified, these manually optimized
    /// routines may need to be completely rewritten"): the plan runs in
    /// checked mode regardless of the driver's configured guard mode, and
    /// a guard failure triggers a *conservative* generic checkpoint — all
    /// objects are re-marked modified first, because a partially executed
    /// plan may already have reset flags of objects it recorded into the
    /// discarded stream. The fallback record therefore contains the full
    /// reachable state and keeps the store recoverable.
    ///
    /// # Errors
    ///
    /// Propagates non-guard errors (dangling handles, unknown classes in
    /// the method table).
    pub fn checkpoint_or_fallback(
        &mut self,
        heap: &mut Heap,
        plan: &Plan,
        roots: &[ObjectId],
        methods: &MethodTable,
    ) -> Result<FallbackOutcome, CoreError> {
        let saved_mode = self.mode;
        self.mode = GuardMode::Checked;
        let attempt = self.checkpoint(heap, plan, roots, Some(methods));
        self.mode = saved_mode;
        match attempt {
            Ok(record) => Ok(FallbackOutcome { record, fell_back: false }),
            Err(CoreError::GuardFailed { .. }) => {
                heap.mark_all_modified();
                let seq = self.next_seq;
                let root_ids: Vec<StableId> =
                    roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
                let mut writer = StreamWriter::new(seq, CheckpointKind::Incremental, &root_ids);
                let mut stats = TraversalStats::default();
                let mut scratch = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for &root in roots {
                    crate::plan::generic_incremental_into(
                        heap,
                        methods,
                        root,
                        &mut writer,
                        &mut stats,
                        &mut scratch,
                        &mut seen,
                    )?;
                }
                stats.bytes_written = writer.len() as u64;
                let bytes = writer.finish();
                self.next_seq += 1;
                self.cumulative += stats;
                let record = CheckpointRecord::from_parts(
                    seq,
                    CheckpointKind::Incremental,
                    root_ids,
                    bytes,
                    stats,
                );
                Ok(FallbackOutcome { record, fell_back: true })
            }
            Err(other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Specializer;
    use crate::shape::{ListPattern, NodePattern, SpecShape};
    use ickp_core::{
        decode, restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer,
        RestorePolicy,
    };
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Value};

    struct World {
        heap: Heap,
        holder: ClassId,
        elem: ClassId,
        roots: Vec<ObjectId>,
        lists: Vec<Vec<ObjectId>>,
    }

    /// Builds `n` holders, each with one list of `len` elements.
    fn world(n: usize, len: usize) -> World {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let mut heap = Heap::new(reg);
        let mut roots = Vec::new();
        let mut lists = Vec::new();
        for _ in 0..n {
            let mut ids = Vec::new();
            let mut next = None;
            for _ in 0..len {
                let e = heap.alloc(elem).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                ids.push(e);
            }
            ids.reverse();
            let h = heap.alloc(holder).unwrap();
            heap.set_field(h, 0, Value::Ref(Some(ids[0]))).unwrap();
            roots.push(h);
            lists.push(ids);
        }
        World { heap, holder, elem, roots, lists }
    }

    fn shape(w: &World, len: usize, pattern: ListPattern) -> SpecShape {
        SpecShape::object(
            w.holder,
            NodePattern::MayModify,
            vec![(0, SpecShape::list(w.elem, 1, len, pattern))],
        )
    }

    #[test]
    fn specialized_and_generic_checkpoints_agree_byte_for_byte_on_content() {
        let mut w = world(4, 3);
        // Identical twin heap for the generic driver.
        let mut w2 = world(4, 3);
        let modify = |w: &mut World| {
            w.heap.reset_all_modified();
            let e = w.lists[1][2];
            w.heap.set_field(e, 0, Value::Int(99)).unwrap();
            let h = w.roots[3];
            let _ = h;
        };
        modify(&mut w);
        modify(&mut w2);

        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 3, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let spec_rec = sc.checkpoint(&mut w.heap, &plan, &w.roots.clone(), None).unwrap();

        let table = MethodTable::derive(w2.heap.registry());
        let mut gc = Checkpointer::new(CheckpointConfig::incremental());
        let roots2 = w2.roots.clone();
        let gen_rec = gc.checkpoint(&mut w2.heap, &table, &roots2).unwrap();

        let d_spec = decode(spec_rec.bytes(), w.heap.registry()).unwrap();
        let d_gen = decode(gen_rec.bytes(), w2.heap.registry()).unwrap();
        assert_eq!(d_spec.objects, d_gen.objects);
        assert_eq!(d_spec.roots, d_gen.roots);
    }

    #[test]
    fn specialized_records_restore_exactly() {
        let mut w = world(3, 4);
        w.heap.reset_all_modified();
        w.heap.mark_all_modified(); // first checkpoint covers everything

        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 4, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let mut store = CheckpointStore::new();
        let roots = w.roots.clone();
        store.push(sc.checkpoint(&mut w.heap, &plan, &roots, None).unwrap()).unwrap();

        // Mutate a couple of elements and take an increment.
        w.heap.set_field(w.lists[0][1], 0, Value::Int(5)).unwrap();
        w.heap.set_field(w.lists[2][3], 0, Value::Int(6)).unwrap();
        store.push(sc.checkpoint(&mut w.heap, &plan, &roots, None).unwrap()).unwrap();

        let rebuilt = restore(&store, w.heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&w.heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn sequence_numbers_and_cumulative_stats_advance() {
        let mut w = world(2, 2);
        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 2, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Trusting);
        let roots = w.roots.clone();
        let r0 = sc.checkpoint(&mut w.heap, &plan, &roots, None).unwrap();
        let r1 = sc.checkpoint(&mut w.heap, &plan, &roots, None).unwrap();
        assert_eq!((r0.seq(), r1.seq()), (0, 1));
        assert_eq!(sc.next_seq(), 2);
        assert!(sc.cumulative_stats().flag_tests >= r0.stats().flag_tests);
        assert_eq!(sc.mode(), GuardMode::Trusting);
    }

    #[test]
    fn failed_checkpoint_consumes_no_sequence_number() {
        let mut w = world(1, 2);
        // Break the shape: null out the list head.
        w.heap.set_field(w.roots[0], 0, Value::Ref(None)).unwrap();
        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 2, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let roots = w.roots.clone();
        assert!(sc.checkpoint(&mut w.heap, &plan, &roots, None).is_err());
        assert_eq!(sc.next_seq(), 0);
    }

    #[test]
    fn fallback_fires_on_shape_drift_and_remains_recoverable() {
        use ickp_core::{restore, verify_restore, RestorePolicy};
        let mut w = world(3, 2);
        let table = MethodTable::derive(w.heap.registry());
        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 2, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Trusting);
        let mut store = CheckpointStore::new();

        // Round 1: shape intact — no fallback.
        let roots = w.roots.clone();
        let out = sc.checkpoint_or_fallback(&mut w.heap, &plan, &roots, &table).unwrap();
        assert!(!out.fell_back);
        store.push(out.record).unwrap();

        // The program evolves: one list shrinks to a single element, so
        // the plan's second LoadRef hits null mid-structure.
        w.heap.set_field(w.lists[1][0], 1, Value::Ref(None)).unwrap();
        let out = sc.checkpoint_or_fallback(&mut w.heap, &plan, &roots, &table).unwrap();
        assert!(out.fell_back, "guard failure must trigger fallback");
        assert!(out.record.stats().objects_recorded > 0);
        store.push(out.record).unwrap();

        // Recovery still works and matches the live (evolved) state.
        let rebuilt = restore(&store, w.heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&w.heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn fallback_restores_the_configured_guard_mode() {
        let mut w = world(1, 2);
        let table = MethodTable::derive(w.heap.registry());
        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 2, ListPattern::MayModify))
            .unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Trusting);
        let roots = w.roots.clone();
        sc.checkpoint_or_fallback(&mut w.heap, &plan, &roots, &table).unwrap();
        assert_eq!(sc.mode(), GuardMode::Trusting);
    }

    #[test]
    fn fallback_consumes_exactly_one_sequence_number() {
        let mut w = world(1, 2);
        let table = MethodTable::derive(w.heap.registry());
        let plan = Specializer::new(w.heap.registry())
            .compile(&shape(&w, 2, ListPattern::MayModify))
            .unwrap();
        w.heap.set_field(w.roots[0], 0, Value::Ref(None)).unwrap(); // break shape
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let roots = w.roots.clone();
        let out = sc.checkpoint_or_fallback(&mut w.heap, &plan, &roots, &table).unwrap();
        assert!(out.fell_back);
        assert_eq!(out.record.seq(), 0);
        assert_eq!(sc.next_seq(), 1);
    }

    #[test]
    fn heterogeneous_roots_use_their_own_plans() {
        let mut w = world(2, 3);
        let spec = Specializer::new(w.heap.registry());
        let plan_all = spec.compile(&shape(&w, 3, ListPattern::MayModify)).unwrap();
        let plan_last = spec.compile(&shape(&w, 3, ListPattern::LastOnly)).unwrap();
        w.heap.reset_all_modified();
        // Dirty element 0 of both structures; only the MayModify plan can
        // see it (LastOnly only tests the tail).
        w.heap.set_field(w.lists[0][0], 0, Value::Int(1)).unwrap();
        w.heap.set_field(w.lists[1][0], 0, Value::Int(1)).unwrap();

        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let rec = sc
            .checkpoint_each(
                &mut w.heap,
                vec![(&plan_all, w.roots[0]), (&plan_last, w.roots[1])],
                None,
            )
            .unwrap();
        let d = decode(rec.bytes(), w.heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1, "LastOnly plan misses the head mutation by design");
    }
}
