//! Checkpoint plans: the residual programs produced by specialization.
//!
//! A [`Plan`] is the specializer's output — the moral equivalent of the
//! straight-line Java methods in the paper's Figures 5 and 6, expressed as
//! a flat instruction sequence instead of generated source. Executing a
//! plan performs **no dynamic dispatch**: every class, slot index and list
//! length was resolved at specialization time; only field *values* and
//! modified *flags* are consulted at run time, and only where the declared
//! modification pattern says they can vary.
//!
//! Plans can run in two guard modes:
//!
//! * [`GuardMode::Checked`] verifies, at each load, that the object graph
//!   still has the declared shape (class guards) — safety the paper's
//!   generated C code omits;
//! * [`GuardMode::Trusting`] skips the class guards (null checks remain,
//!   since they are required for memory safety), matching the paper's
//!   performance assumptions.

use crate::error::SpecError;
use ickp_core::{CoreError, MethodTable, StreamWriter, TraversalStats};
use ickp_heap::{ClassId, FieldType, Heap, ObjectId, Value};
use std::collections::HashSet;

/// How strictly a plan validates the heap against its compiled shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// Verify class guards on every load (detects stale plans).
    Checked,
    /// Trust the declaration; only null checks are performed.
    Trusting,
}

/// A virtual register holding an object reference during plan execution.
pub type Reg = u32;

/// One instruction of a compiled checkpoint plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Bind the plan's root object into `dst` (guard: `class`).
    LoadRoot {
        /// Destination register.
        dst: Reg,
        /// Statically declared class of the root.
        class: ClassId,
    },
    /// `dst = src.slots[slot]`, a statically resolved field load
    /// (guard: referent is `class`). The residual form of an inlined
    /// `fold` step.
    LoadRef {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Field slot to load.
        slot: u32,
        /// Statically declared class of the referent.
        class: ClassId,
    },
    /// Like [`Op::LoadRef`] but the referent's shape is unknown: a `null`
    /// simply skips the next `skip` instructions instead of failing.
    LoadDyn {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Field slot to load.
        slot: u32,
        /// Instructions to skip when the field is null.
        skip: u32,
    },
    /// If the object in `obj` is *not* modified, skip the next `skip`
    /// instructions. The residual form of `if (info.modified())`.
    TestModified {
        /// Register holding the object to test.
        obj: Reg,
        /// Instructions to skip when clean.
        skip: u32,
    },
    /// Record the object's full local state using template `template`,
    /// then reset its modified flag. The residual form of
    /// `d.writeInt(id); o.record(d); info.resetModified();`, fully inlined.
    Record {
        /// Register holding the object to record.
        obj: Reg,
        /// Index into the plan's record templates.
        template: u32,
    },
    /// Fall back to the generic incremental checkpointer for the subtree
    /// rooted at `obj` (a `Dynamic` declaration).
    Generic {
        /// Register holding the subtree root.
        obj: Reg,
    },
    /// Verify that the declared list ends here: `obj.slots[slot]` must be
    /// null. Emitted after the tail element of a fixed-length list so a
    /// *grown* list trips the guards instead of being silently truncated
    /// (its new elements would otherwise never be recorded). A shape
    /// guard, so only enforced under [`GuardMode::Checked`].
    GuardListEnd {
        /// Register holding the declared tail element.
        obj: Reg,
        /// The list's `next` slot, expected to hold null.
        slot: u32,
    },
}

/// Precompiled field-writing recipe for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordTemplate {
    class: ClassId,
    kinds: Vec<FieldType>,
}

impl RecordTemplate {
    /// Builds a template from a class layout.
    pub fn new(class: ClassId, kinds: Vec<FieldType>) -> RecordTemplate {
        RecordTemplate { class, kinds }
    }

    /// The class this template records.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The field kinds in layout order.
    pub fn kinds(&self) -> &[FieldType] {
        &self.kinds
    }
}

/// A compiled, specialized checkpoint routine for one declared shape.
///
/// Produced by [`crate::Specializer::compile`]; executed by
/// [`PlanExecutor`]. See the crate docs for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    ops: Vec<Op>,
    templates: Vec<RecordTemplate>,
    num_regs: u32,
    has_dynamic: bool,
}

impl Plan {
    pub(crate) fn new(
        ops: Vec<Op>,
        templates: Vec<RecordTemplate>,
        num_regs: u32,
        has_dynamic: bool,
    ) -> Plan {
        Plan { ops, templates, num_regs, has_dynamic }
    }

    /// Assembles a plan directly from its parts, with **no validation**.
    ///
    /// [`crate::Specializer::compile`] is the supported way to obtain a
    /// plan; this constructor exists for tooling that needs to build plans
    /// by hand — notably the static verifier in `ickp-audit`, whose test
    /// suite feeds it deliberately malformed instruction sequences. A plan
    /// built here may panic or corrupt the stream when executed; run it
    /// through the auditor first.
    pub fn from_raw_parts(
        ops: Vec<Op>,
        templates: Vec<RecordTemplate>,
        num_regs: u32,
        has_dynamic: bool,
    ) -> Plan {
        Plan::new(ops, templates, num_regs, has_dynamic)
    }

    /// The instruction sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The record templates referenced by [`Op::Record`].
    pub fn templates(&self) -> &[RecordTemplate] {
        &self.templates
    }

    /// Number of virtual registers the plan needs.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// `true` if the plan contains a generic fallback and therefore needs a
    /// [`MethodTable`] at execution time.
    pub fn has_dynamic(&self) -> bool {
        self.has_dynamic
    }

    /// Creates an executor with scratch space sized for this plan.
    pub fn executor(&self) -> PlanExecutor<'_> {
        PlanExecutor {
            plan: self,
            regs: vec![None; self.num_regs as usize],
            generic_scratch: Vec::new(),
            generic_seen: HashSet::new(),
        }
    }
}

/// Reusable execution state for a [`Plan`].
///
/// Keeping the executor alive across the many roots of a checkpoint avoids
/// reallocating register files per object — the specialized analog of the
/// paper's monolithic per-structure routine being called in a loop.
#[derive(Debug)]
pub struct PlanExecutor<'p> {
    plan: &'p Plan,
    regs: Vec<Option<ObjectId>>,
    generic_scratch: Vec<ObjectId>,
    generic_seen: HashSet<ObjectId>,
}

impl<'p> PlanExecutor<'p> {
    /// Runs the plan once, rooted at `root`, appending records to `writer`
    /// and accumulating counters into `stats`.
    ///
    /// `methods` is required only when the plan
    /// [`has_dynamic`](Plan::has_dynamic) fallbacks.
    ///
    /// # Errors
    ///
    /// * [`CoreError::GuardFailed`] if the heap no longer matches the
    ///   declared shape (always for nulls on static edges; additionally for
    ///   class mismatches under [`GuardMode::Checked`]).
    /// * [`CoreError::Heap`] for dangling references.
    /// * [`CoreError::UnknownClassIndex`] if a generic fallback meets a
    ///   class the method table does not cover.
    pub fn run(
        &mut self,
        heap: &mut Heap,
        root: ObjectId,
        writer: &mut StreamWriter,
        mode: GuardMode,
        methods: Option<&MethodTable>,
        stats: &mut TraversalStats,
    ) -> Result<(), CoreError> {
        if self.plan.has_dynamic && methods.is_none() {
            return Err(CoreError::GuardFailed {
                expected: "a method table for generic fallback".into(),
                found: SpecError::MissingMethodTable.to_string(),
            });
        }
        let ops = &self.plan.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                Op::LoadRoot { dst, class } => {
                    if mode == GuardMode::Checked {
                        let actual = heap.class_of(root)?;
                        if actual != *class {
                            return Err(guard_class_error(heap, *class, actual));
                        }
                    }
                    self.regs[*dst as usize] = Some(root);
                    stats.objects_visited += 1;
                }
                Op::LoadRef { dst, src, slot, class } => {
                    let src_obj = self.reg(*src)?;
                    let value = heap.field(src_obj, *slot as usize)?;
                    let child = match value {
                        Value::Ref(Some(child)) => child,
                        Value::Ref(None) => {
                            return Err(CoreError::GuardFailed {
                                expected: format!("non-null {class} reference"),
                                found: "null".into(),
                            })
                        }
                        other => {
                            return Err(CoreError::GuardFailed {
                                expected: "reference field".into(),
                                found: format!("{other}"),
                            })
                        }
                    };
                    if mode == GuardMode::Checked {
                        let actual = heap.class_of(child)?;
                        if actual != *class {
                            return Err(guard_class_error(heap, *class, actual));
                        }
                    }
                    self.regs[*dst as usize] = Some(child);
                    stats.refs_followed += 1;
                    stats.objects_visited += 1;
                }
                Op::LoadDyn { dst, src, slot, skip } => {
                    let src_obj = self.reg(*src)?;
                    match heap.field(src_obj, *slot as usize)? {
                        Value::Ref(Some(child)) => {
                            self.regs[*dst as usize] = Some(child);
                            stats.refs_followed += 1;
                        }
                        Value::Ref(None) => {
                            pc += *skip as usize;
                        }
                        other => {
                            return Err(CoreError::GuardFailed {
                                expected: "reference field".into(),
                                found: format!("{other}"),
                            })
                        }
                    }
                }
                Op::TestModified { obj, skip } => {
                    stats.flag_tests += 1;
                    if !heap.is_modified(self.reg(*obj)?)? {
                        pc += *skip as usize;
                    }
                }
                Op::Record { obj, template } => {
                    let id = self.reg(*obj)?;
                    let t = &self.plan.templates[*template as usize];
                    record_with_template(heap, id, t, writer)?;
                    heap.reset_modified(id)?;
                    stats.objects_recorded += 1;
                }
                Op::GuardListEnd { obj, slot } => {
                    if mode == GuardMode::Checked {
                        let tail = self.reg(*obj)?;
                        if let Value::Ref(Some(_)) = heap.field(tail, *slot as usize)? {
                            return Err(CoreError::GuardFailed {
                                expected: "end of declared list (null next)".into(),
                                found: "a further element (list grew)".into(),
                            });
                        }
                    }
                }
                Op::Generic { obj } => {
                    let id = self.reg(*obj)?;
                    let table = methods.expect("checked at entry");
                    generic_incremental_into(
                        heap,
                        table,
                        id,
                        writer,
                        stats,
                        &mut self.generic_scratch,
                        &mut self.generic_seen,
                    )?;
                }
            }
            pc += 1;
        }
        stats.bytes_written = writer.len() as u64;
        Ok(())
    }

    fn reg(&self, r: Reg) -> Result<ObjectId, CoreError> {
        self.regs[r as usize].ok_or_else(|| CoreError::GuardFailed {
            expected: format!("register r{r} bound"),
            found: "unbound register (skipped load?)".into(),
        })
    }
}

fn guard_class_error(heap: &Heap, expected: ClassId, actual: ClassId) -> CoreError {
    let name =
        |c: ClassId| heap.class(c).map(|d| d.name().to_string()).unwrap_or_else(|_| c.to_string());
    CoreError::GuardFailed { expected: name(expected), found: name(actual) }
}

/// Writes one object's full state using a precompiled template: the
/// inlined, dispatch-free residual of `record`.
///
/// Public so alternative plan executors (e.g. the threaded-code backends
/// in `ickp-backend`) can share the exact record semantics.
///
/// # Errors
///
/// Returns [`CoreError::GuardFailed`] if a field value does not match the
/// template (stale plan) and propagates heap errors.
pub fn record_with_template(
    heap: &Heap,
    id: ObjectId,
    template: &RecordTemplate,
    writer: &mut StreamWriter,
) -> Result<(), CoreError> {
    let obj = heap.object(id)?;
    writer.begin_object(obj.info().stable_id(), template.class, template.kinds.len());
    let fields = obj.fields();
    for (slot, kind) in template.kinds.iter().enumerate() {
        match (fields[slot], kind) {
            (Value::Int(v), FieldType::Int) => writer.write_int(v),
            (Value::Long(v), FieldType::Long) => writer.write_long(v),
            (Value::Double(v), FieldType::Double) => writer.write_double(v),
            (Value::Bool(v), FieldType::Bool) => writer.write_bool(v),
            (Value::Ref(None), FieldType::Ref(_)) => writer.write_ref(None),
            (Value::Ref(Some(child)), FieldType::Ref(_)) => {
                writer.write_ref(Some(heap.stable_id(child)?))
            }
            (v, ty) => {
                return Err(CoreError::GuardFailed {
                    expected: format!("value of type {ty}"),
                    found: format!("{v}"),
                })
            }
        }
    }
    Ok(())
}

/// The generic incremental walk used for `Dynamic` subtrees: identical
/// semantics to `ickp_core::Checkpointer` but appending into an existing
/// stream. Scratch collections are threaded through so repeated fallbacks
/// do not reallocate.
///
/// Public for reuse by alternative executors in `ickp-backend`.
///
/// # Errors
///
/// Propagates heap and method-table failures.
pub fn generic_incremental_into(
    heap: &mut Heap,
    methods: &MethodTable,
    root: ObjectId,
    writer: &mut StreamWriter,
    stats: &mut TraversalStats,
    stack: &mut Vec<ObjectId>,
    seen: &mut HashSet<ObjectId>,
) -> Result<(), CoreError> {
    stack.clear();
    seen.clear();
    stack.push(root);
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        stats.objects_visited += 1;
        stats.flag_tests += 1;
        let class = heap.class_of(id)?;
        if heap.is_modified(id)? {
            let def = heap.class(class)?;
            writer.begin_object(heap.stable_id(id)?, class, def.num_slots());
            stats.virtual_calls += 1;
            methods.record(class)?(heap, id, writer)?;
            stats.objects_recorded += 1;
            heap.reset_modified(id)?;
        }
        stats.virtual_calls += 1;
        let before = stack.len();
        methods.fold(class)?(heap, id, &mut |child| {
            stack.push(child);
            Ok(())
        })?;
        stats.refs_followed += (stack.len() - before) as u64;
        stack[before..].reverse();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{decode, CheckpointKind};
    use ickp_heap::{ClassRegistry, StableId};

    fn setup() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        (Heap::new(reg), node)
    }

    fn hand_plan(node: ClassId) -> Plan {
        // test root; record if modified; load next; test; record.
        Plan::new(
            vec![
                Op::LoadRoot { dst: 0, class: node },
                Op::TestModified { obj: 0, skip: 1 },
                Op::Record { obj: 0, template: 0 },
                Op::LoadRef { dst: 1, src: 0, slot: 1, class: node },
                Op::TestModified { obj: 1, skip: 1 },
                Op::Record { obj: 1, template: 0 },
            ],
            vec![RecordTemplate::new(node, vec![FieldType::Int, FieldType::Ref(None)])],
            2,
            false,
        )
    }

    #[test]
    fn plan_records_only_modified_objects() {
        let (mut heap, node) = setup();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.reset_all_modified();
        heap.set_field(child, 0, Value::Int(3)).unwrap();

        let plan = hand_plan(node);
        let mut exec = plan.executor();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        exec.run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats).unwrap();
        let bytes = writer.finish();

        let d = decode(&bytes, heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
        assert_eq!(d.objects[0].stable, heap.stable_id(child).unwrap());
        assert_eq!(stats.flag_tests, 2);
        assert_eq!(stats.objects_recorded, 1);
        assert_eq!(stats.virtual_calls, 0, "specialized code never dispatches");
        assert!(!heap.is_modified(child).unwrap(), "flag reset after record");
    }

    #[test]
    fn null_static_edge_fails_in_both_modes() {
        let (mut heap, node) = setup();
        let root = heap.alloc(node).unwrap(); // next is null
        let plan = hand_plan(node);
        for mode in [GuardMode::Checked, GuardMode::Trusting] {
            let mut exec = plan.executor();
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            let err = exec.run(&mut heap, root, &mut writer, mode, None, &mut stats).unwrap_err();
            assert!(matches!(err, CoreError::GuardFailed { .. }), "{mode:?}");
        }
    }

    #[test]
    fn class_guard_fires_only_in_checked_mode() {
        let (mut heap, node) = setup();
        let other = heap
            .define_class("Other", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let child = heap.alloc(other).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();

        let plan = hand_plan(node);
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        let err = plan
            .executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap_err();
        assert!(matches!(err, CoreError::GuardFailed { .. }));

        // Trusting mode records under the *declared* class — same layout
        // here, so it succeeds (the unsafe speed the paper assumes).
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Trusting, None, &mut stats)
            .unwrap();
    }

    #[test]
    fn dynamic_plan_requires_method_table() {
        let (mut heap, node) = setup();
        let root = heap.alloc(node).unwrap();
        let plan = Plan::new(
            vec![Op::LoadRoot { dst: 0, class: node }, Op::Generic { obj: 0 }],
            vec![],
            1,
            true,
        );
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        let err = plan
            .executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap_err();
        assert!(matches!(err, CoreError::GuardFailed { .. }));

        let table = MethodTable::derive(heap.registry());
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, Some(&table), &mut stats)
            .unwrap();
        assert_eq!(stats.objects_recorded, 1);
        assert!(stats.virtual_calls > 0, "fallback dispatches generically");
    }

    #[test]
    fn load_dyn_skips_on_null() {
        let (mut heap, node) = setup();
        let root = heap.alloc(node).unwrap();
        let table = MethodTable::derive(heap.registry());
        let plan = Plan::new(
            vec![
                Op::LoadRoot { dst: 0, class: node },
                Op::LoadDyn { dst: 1, src: 0, slot: 1, skip: 1 },
                Op::Generic { obj: 1 },
            ],
            vec![],
            2,
            true,
        );
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, Some(&table), &mut stats)
            .unwrap();
        assert_eq!(stats.objects_recorded, 0, "null edge skipped the fallback");
    }

    #[test]
    fn record_stream_is_decodable_and_complete() {
        let (mut heap, node) = setup();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 0, Value::Int(10)).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.set_field(child, 0, Value::Int(20)).unwrap();

        let plan = hand_plan(node);
        let root_sid = heap.stable_id(root).unwrap();
        let mut writer = StreamWriter::new(7, CheckpointKind::Incremental, &[root_sid]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        let d = decode(&writer.finish(), heap.registry()).unwrap();
        assert_eq!(d.seq, 7);
        assert_eq!(d.objects.len(), 2);
        assert_eq!(d.roots, vec![root_sid]);
    }

    #[test]
    fn unbound_register_is_an_execution_error() {
        let (mut heap, node) = setup();
        let root = heap.alloc(node).unwrap();
        // Record from a register nothing ever loaded.
        let plan = Plan::new(
            vec![Op::Record { obj: 3, template: 0 }],
            vec![RecordTemplate::new(node, vec![FieldType::Int, FieldType::Ref(None)])],
            4,
            false,
        );
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        let err = plan
            .executor()
            .run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap_err();
        assert!(matches!(err, CoreError::GuardFailed { .. }));
        let _ = StableId(0);
    }
}
