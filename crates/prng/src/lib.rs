//! # ickp-prng — deterministic pseudo-randomness without dependencies
//!
//! The synthetic benchmark and the randomized test suites need
//! reproducible random streams, and this repository must build with **no
//! network access** (see README "Install & test"), so it cannot depend on
//! the `rand` crate family. This crate provides the small slice of that
//! API the workspace actually uses, built on xoshiro256\*\* seeded via
//! splitmix64 — the standard small-state generator pairing.
//!
//! Not cryptographic; strictly for workload generation and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic xoshiro256\*\* generator.
///
/// Two generators constructed with the same seed produce identical
/// streams on every platform (the implementation is pure integer
/// arithmetic, no platform entropy).
///
/// # Example
///
/// ```
/// use ickp_prng::Prng;
///
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded, so
    /// similar seeds still yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = seed;
        Prng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random `i32`.
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// A uniformly random `i64`.
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0, "ratio denominator must be positive");
        assert!(num <= den, "ratio numerator {num} exceeds denominator {den}");
        self.below(den as u64) < num as u64
    }

    /// A uniformly random integer in `[0, bound)` (Lemire rejection, so
    /// the distribution is exactly uniform).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniformly random `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniformly random integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Prng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn ratio_extremes() {
        let mut r = Prng::seed_from_u64(4);
        for _ in 0..50 {
            assert!(r.ratio(10, 10));
            assert!(!r.ratio(0, 10));
        }
    }

    #[test]
    fn ratio_is_roughly_proportional() {
        let mut r = Prng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.ratio(25, 100)).count();
        assert!((2_000..3_000).contains(&hits), "25% of 10k ≈ 2500, got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_hits_both_ends_eventually() {
        let mut r = Prng::seed_from_u64(7);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_i64(-2, 3) {
                -2 => lo_seen = true,
                2 => hi_seen = true,
                v => assert!((-2..3).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn choose_picks_members() {
        let mut r = Prng::seed_from_u64(8);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
