//! The barrier-coverage pass end to end: the real mutator catalog proves
//! clean on chain worlds and at synthetic paper scale, each documented
//! `AUD30x` failure mode is pinned on an injected broken spec, and the
//! dynamic cross-validator agrees with the static verdict — consistent
//! for the real catalog across many seeds, inconsistent the moment a
//! barrier-skipping mutator joins the mix.

use ickp_audit::{
    audit_barriers, audit_barriers_with, cross_validate_barriers, DiagCode, Location, MutatorSpec,
    Severity,
};
use ickp_heap::{
    ClassRegistry, DeclaredEffect, DirtyScope, FieldType, Heap, HeapError, MutationCatalog,
    MutationProbe, ObjectId, Value,
};
use ickp_synth::{SynthConfig, SynthWorld};

/// A linked-chain world with scalar and reference slots on every node.
fn world(n: i32) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[("v", FieldType::Int), ("w", FieldType::Double), ("next", FieldType::Ref(None))],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let mut next = None;
    let mut head = None;
    for i in 0..n {
        let id = heap.alloc(node).unwrap();
        heap.set_field(id, 0, Value::Int(i)).unwrap();
        heap.set_field(id, 1, Value::Double(f64::from(i) * 0.5)).unwrap();
        heap.set_field(id, 2, Value::Ref(next)).unwrap();
        next = Some(id);
        head = Some(id);
    }
    (heap, vec![head.unwrap()])
}

/// A mutator spec under the auditor's full control: injection tests use it
/// to express the barrier breakages the sound heap API cannot.
struct Injected {
    name: &'static str,
    effect: DeclaredEffect,
    apply: fn(&mut Heap, &MutationProbe<'_>) -> Result<(), HeapError>,
}

impl MutatorSpec for Injected {
    fn name(&self) -> &str {
        self.name
    }
    fn effect(&self) -> DeclaredEffect {
        self.effect
    }
    fn apply(&self, heap: &mut Heap, probe: &MutationProbe<'_>) -> Result<(), HeapError> {
        (self.apply)(heap, probe)
    }
}

/// First probe target that is not the pre-dirtied seed (writing to the
/// seed would be invisibly absorbed by its existing dirty flags).
fn non_seed_target(probe: &MutationProbe<'_>) -> ObjectId {
    probe.targets.iter().copied().find(|&t| Some(t) != probe.seed).expect("world has >= 2 nodes")
}

fn catalog_specs(catalog: &MutationCatalog) -> Vec<&dyn MutatorSpec> {
    catalog.entries().iter().map(|e| e as &dyn MutatorSpec).collect()
}

fn errors_of(report: &ickp_audit::AuditReport) -> Vec<DiagCode> {
    report.diagnostics().iter().filter(|d| d.severity == Severity::Error).map(|d| d.code).collect()
}

/// **Acceptance criterion**: zero false positives on the real heap — the
/// shipped catalog audits with no `AUD301`/`AUD302`/`AUD304`/`AUD306`
/// on a chain world and at synthetic paper scale.
#[test]
fn the_real_catalog_is_clean_on_chain_and_paper_worlds() {
    let (heap, roots) = world(8);
    let synth = SynthWorld::build(SynthConfig::small()).unwrap();
    for (heap, roots) in [(&heap, roots.as_slice()), (synth.heap(), synth.roots())] {
        let audit = audit_barriers(heap, roots, &MutationCatalog::of_heap()).unwrap();
        assert!(!audit.report.has_errors(), "{}", audit.report.render());
        // The only findings are the quantified over-journaling lints for
        // the unconditional write barrier.
        for d in audit.report.diagnostics() {
            assert_eq!(d.code, DiagCode::BarrierOverJournaling, "{}", audit.report.render());
            assert_eq!(d.severity, Severity::PerfLint);
        }
    }
}

/// **Injection: missed write barrier.** A mutator that stores through
/// `set_field_unbarriered` while declaring itself a journaling writer is
/// pinned to exactly `AUD301`.
#[test]
fn a_barrier_skipping_store_trips_aud301() {
    let (heap, roots) = world(6);
    let rogue = Injected {
        name: "rogue_store",
        effect: DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            journals_dirty: true, // the lie: claims the barrier runs
            ..DeclaredEffect::default()
        },
        apply: |heap, probe| {
            // Scalar store so no structure bump muddies the verdict.
            heap.set_field_unbarriered(non_seed_target(probe), 0, Value::Int(probe.salt as i32 | 1))
        },
    };
    let catalog = MutationCatalog::of_heap();
    let mut specs = catalog_specs(&catalog);
    specs.push(&rogue);
    let audit = audit_barriers_with(&heap, &roots, &specs).unwrap();
    assert_eq!(errors_of(&audit.report), vec![DiagCode::BarrierUnjournaledWrite]);
    let offender =
        audit.report.diagnostics().iter().find(|d| d.severity == Severity::Error).unwrap();
    assert_eq!(offender.location, Location::Mutator("rogue_store".into()));
    let probe = audit.probes.iter().find(|p| p.name == "rogue_store").unwrap();
    assert_eq!(probe.unjournaled_writes, 1);
    assert!(!probe.version_bumped);
}

/// **Injection: missed version bump.** The sound heap API cannot even
/// express a shape change without a bump — which is exactly why the
/// declaration-side check exists. A spec declaring `structure_may_change`
/// without `bumps_structure_version` is pinned to `AUD302`.
#[test]
fn a_declared_silent_rewire_trips_aud302() {
    let (heap, roots) = world(6);
    let rewire = Injected {
        name: "silent_rewire",
        effect: DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            structure_may_change: true,
            journals_dirty: true,
            bumps_structure_version: false, // the breach
            ..DeclaredEffect::default()
        },
        apply: |heap, probe| heap.set_field(non_seed_target(probe), 2, Value::Ref(None)),
    };
    let catalog = MutationCatalog::of_heap();
    let mut specs = catalog_specs(&catalog);
    specs.push(&rewire);
    let audit = audit_barriers_with(&heap, &roots, &specs).unwrap();
    assert_eq!(errors_of(&audit.report), vec![DiagCode::BarrierMissedVersionBump]);
}

/// **Injection: premature epoch clear.** A mutator that resets dirty
/// flags and finishes the journal epoch without being part of the
/// checkpoint protocol is pinned to `AUD304` by its observed probe.
#[test]
fn an_eager_epoch_reset_trips_aud304() {
    let (heap, roots) = world(6);
    let eager = Injected {
        name: "eager_reset",
        effect: DeclaredEffect::default(), // claims to touch nothing
        apply: |heap, probe| {
            if let Some(seed) = probe.seed {
                heap.reset_modified(seed)?;
            }
            heap.finish_journal_epoch();
            Ok(())
        },
    };
    let catalog = MutationCatalog::of_heap();
    let mut specs = catalog_specs(&catalog);
    specs.push(&eager);
    let audit = audit_barriers_with(&heap, &roots, &specs).unwrap();
    assert_eq!(errors_of(&audit.report), vec![DiagCode::BarrierEpochTamper]);
    let probe = audit.probes.iter().find(|p| p.name == "eager_reset").unwrap();
    assert_eq!(probe.cleared_dirty, 1, "the pre-dirtied seed was wiped");
    assert!(probe.epoch_advanced);
}

/// **Injection: uncataloged mutator.** Dropping one public mutator from
/// the audited catalog is pinned to exactly one `AUD306`, naming it.
#[test]
fn an_uncataloged_public_mutator_trips_aud306() {
    let (heap, roots) = world(6);
    let pruned = MutationCatalog::of_heap().without("mark_all_modified");
    let audit = audit_barriers(&heap, &roots, &pruned).unwrap();
    assert_eq!(errors_of(&audit.report), vec![DiagCode::BarrierUncataloged]);
    let offender =
        audit.report.diagnostics().iter().find(|d| d.severity == Severity::Error).unwrap();
    assert_eq!(offender.location, Location::Mutator("mark_all_modified".into()));
}

/// **Lint pin: over-journaling.** The unconditional write barrier is
/// linted as `AUD303`, quantified in the records and bytes an
/// all-identical-write epoch would waste on this exact heap.
#[test]
fn the_unconditional_barrier_is_quantified_as_aud303() {
    let (heap, roots) = world(8);
    let audit = audit_barriers(&heap, &roots, &MutationCatalog::of_heap()).unwrap();
    let lints: Vec<_> = audit
        .report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::BarrierOverJournaling)
        .collect();
    assert!(lints.len() >= 2, "set_field and set_field_named both journal unconditionally");
    for lint in lints {
        assert_eq!(lint.severity, Severity::PerfLint);
        assert!(lint.message.contains("8 reachable object(s)"), "{}", lint.message);
    }
}

/// **Lint pin: over-declared effect.** A spec declaring byte changes,
/// shape changes, and an all-live dirty scope while doing nothing at all
/// collects all three `AUD305` over-declaration lints — and no errors.
#[test]
fn a_braggart_spec_collects_all_three_aud305_lints() {
    let (heap, roots) = world(6);
    let braggart = Injected {
        name: "braggart",
        effect: DeclaredEffect {
            dirties: DirtyScope::AllLive,
            bytes_may_change: true,
            structure_may_change: true,
            journals_dirty: true,
            bumps_structure_version: true,
            ..DeclaredEffect::default()
        },
        apply: |_, _| Ok(()),
    };
    let catalog = MutationCatalog::of_heap();
    let mut specs = catalog_specs(&catalog);
    specs.push(&braggart);
    let audit = audit_barriers_with(&heap, &roots, &specs).unwrap();
    assert!(!audit.report.has_errors(), "{}", audit.report.render());
    let overs = audit
        .report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::BarrierOverDeclaredEffect)
        .count();
    assert_eq!(overs, 3, "{}", audit.report.render());
}

/// **Acceptance criterion**: the dynamic oracle confirms the static
/// verdict for the real catalog — randomized mutation sequences on both
/// worlds, many seeds, zero violations, with epoch windows exercised.
#[test]
fn cross_validation_confirms_the_real_catalog_across_seeds() {
    let (heap, roots) = world(10);
    let synth = SynthWorld::build(SynthConfig::small()).unwrap();
    let catalog = MutationCatalog::of_heap();
    let specs = catalog_specs(&catalog);
    for (heap, roots) in [(&heap, roots.as_slice()), (synth.heap(), synth.roots())] {
        for seed in 0..8u64 {
            let report = cross_validate_barriers(heap, roots, &specs, 48, seed).unwrap();
            assert!(report.is_consistent(), "seed {seed}: {}", report.render());
            assert!(report.ops_applied > 0);
        }
    }
}

/// **Acceptance criterion**: the oracle and the static pass agree on a
/// broken spec too — mixing the barrier-skipping store into the sequence
/// makes the run inconsistent with under-journaling violations.
#[test]
fn cross_validation_catches_the_barrier_skipping_store() {
    let (heap, roots) = world(10);
    let rogue = Injected {
        name: "rogue_store",
        effect: DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            journals_dirty: true,
            ..DeclaredEffect::default()
        },
        apply: |heap, probe| {
            let target = probe.targets.first().copied().expect("non-empty traversal");
            heap.set_field_unbarriered(target, 0, Value::Int(probe.salt as i32 | 1))
        },
    };
    let catalog = MutationCatalog::of_heap();
    let mut specs = catalog_specs(&catalog);
    specs.push(&rogue);
    let mut caught = 0;
    for seed in 0..4u64 {
        let report = cross_validate_barriers(&heap, &roots, &specs, 64, seed).unwrap();
        if !report.is_consistent() {
            assert!(report.under_journaled > 0, "{}", report.render());
            assert!(!report.violations.is_empty());
            caught += 1;
        }
    }
    assert_eq!(caught, 4, "every seeded run must draw and catch the rogue op");
}
