//! End-to-end audit of the analysis engine's own declarations: the
//! in-repo `Attributes` phase plans must audit clean, seeded declaration
//! bugs must be caught, and the dynamic oracle must reconcile a real
//! phase run with its declared plan.

use ickp_analysis::{AnalysisEngine, AttributesSchema, Division, Phase};
use ickp_audit::{
    audit_phase_patterns, cross_validate, engine_footprints, verify_plan, DiagCode, Severity,
};
use ickp_heap::{ClassRegistry, Heap};
use ickp_minic::parse;
use ickp_spec::{GuardMode, PhasePlans, Specializer};

const SAMPLE: &str = "int d; int s; void main() { s = d + 1; }";

fn division(dynamic: &[&str]) -> Division {
    Division { dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect() }
}

/// Every phase plan the engine compiles for itself — including the
/// dynamic-fallback structure plan — audits completely clean against the
/// declaration it was compiled from.
#[test]
fn engine_phase_plans_audit_clean() {
    let engine = AnalysisEngine::new(parse(SAMPLE).unwrap(), division(&["d"])).unwrap();
    let plans = engine.compile_phase_plans().unwrap();
    assert!(plans.len() >= 3);
    for phase in plans.phases() {
        let plan = plans.plan(phase).unwrap();
        let shape = plans.shape(phase).expect("engine registers shapes with its plans");
        let report = verify_plan(plan, shape, engine.heap().registry());
        assert!(report.is_clean(), "phase `{phase}`:\n{}", report.render());
    }
}

/// The pattern soundness checker accepts the engine's own declarations
/// for a program that exercises all three phases: no errors, and the only
/// warning is the (intentionally) undeclared side-effect phase.
#[test]
fn engine_declarations_are_sound_for_a_three_phase_program() {
    let engine = AnalysisEngine::new(parse(SAMPLE).unwrap(), division(&["d"])).unwrap();
    let plans = engine.compile_phase_plans().unwrap();
    let footprints = engine_footprints(engine.program(), &division(&["d"])).unwrap();
    let report = audit_phase_patterns(&plans, &footprints, engine.heap().registry());
    assert!(!report.has_errors(), "{}", report.render());
    let warnings: Vec<_> =
        report.diagnostics().iter().filter(|d| d.severity == Severity::Warning).collect();
    assert_eq!(warnings.len(), 1, "{}", report.render());
    assert_eq!(warnings[0].code, DiagCode::UndeclaredPhase);
    assert!(warnings[0].message.contains("side-effect"));
}

/// **Acceptance criterion (seeded under-declaration)**: registering the
/// eval-time shape for the binding-time phase — which provably writes the
/// `bt` subtree for this program — is an `AUD101` error.
#[test]
fn seeded_under_declaration_is_an_error() {
    let mut heap = Heap::new(ClassRegistry::new());
    let schema = AttributesSchema::define(&mut heap).unwrap();
    let shape = schema.shape_eta_phase(); // freezes bt
    let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
    let mut plans = PhasePlans::new();
    plans.insert_with_shape(Phase::BindingTime.key(), shape, plan);

    let footprints = engine_footprints(&parse(SAMPLE).unwrap(), &division(&["d"])).unwrap();
    let report = audit_phase_patterns(&plans, &footprints, heap.registry());
    assert!(report.has_errors(), "{}", report.render());
    assert!(
        report.diagnostics().iter().any(|d| d.code == DiagCode::UnderDeclaredPattern),
        "{}",
        report.render()
    );
}

/// **Acceptance criterion (seeded over-declaration)**: registering the
/// structure-only shape (everything modifiable) for the binding-time
/// phase yields `AUD102` perf lints for the subtrees the phase provably
/// never writes — quantified in statically dead record bytes where the
/// subtree is static.
#[test]
fn seeded_over_declaration_is_a_quantified_perf_lint() {
    let mut heap = Heap::new(ClassRegistry::new());
    let schema = AttributesSchema::define(&mut heap).unwrap();
    let shape = schema.shape_structure_only(); // everything modifiable
    let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
    let mut plans = PhasePlans::new();
    plans.insert_with_shape(Phase::BindingTime.key(), shape, plan);

    let footprints = engine_footprints(&parse(SAMPLE).unwrap(), &division(&["d"])).unwrap();
    let report = audit_phase_patterns(&plans, &footprints, heap.registry());
    assert!(!report.has_errors(), "over-declaration is waste, not unsoundness");
    let lints: Vec<_> =
        report.diagnostics().iter().filter(|d| d.code == DiagCode::OverDeclaredPattern).collect();
    // Two over-declared subtrees during bta: se (dynamic, unquantifiable)
    // and et (static, quantified in bytes).
    assert_eq!(lints.len(), 2, "{}", report.render());
    assert!(lints.iter().any(|d| d.message.contains("bytes")), "{}", report.render());
    assert!(lints.iter().any(|d| d.message.contains("dynamic")), "{}", report.render());
}

/// The dynamic oracle backs the static verdict on a real engine run: a
/// binding-time fixpoint's dirty set reconciles exactly with what the
/// audited `bta` plan records.
#[test]
fn oracle_reconciles_a_real_bta_run_with_the_declared_plan() {
    let mut engine = AnalysisEngine::new(parse(SAMPLE).unwrap(), division(&["d"])).unwrap();
    let plans = engine.compile_phase_plans().unwrap();
    engine.heap_mut().reset_all_modified();
    let report = engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();
    assert!(report.annotation_writes > 0, "the dynamic division forces bt writes");

    let roots = engine.roots().to_vec();
    let key = Phase::BindingTime.key();
    let r = cross_validate(
        engine.heap(),
        plans.plan(key).unwrap(),
        plans.shape(key).unwrap(),
        &roots,
        GuardMode::Checked,
    )
    .unwrap();
    assert!(r.is_consistent(), "missed={:?} spurious={:?}", r.missed, r.spurious);
    assert!(r.recorded > 0, "the run dirtied bt entries; the plan must see them");
    assert_eq!(r.declared_clean_dirty, 0, "bta writes only its declared subtree");
}
