//! The shard-interference pass end to end: in-repo plans audit clean at
//! every worker count, each documented `AUD20x` failure mode is caught on
//! an injected bad plan, the static byte estimate matches measured
//! per-shard stats exactly, and the dynamic cross-validator agrees with
//! the static footprints on randomized heaps.

use ickp_audit::{
    audit_shards, audit_shards_with, cross_validate_shards, shard_footprints, DiagCode, Severity,
    ShardAuditConfig, ShardSpec,
};
use ickp_core::{plan_shards, CheckpointConfig, Checkpointer, MethodTable, ShardBalance};
use ickp_heap::{partition_roots, reachable_from, ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;
use ickp_synth::{SynthConfig, SynthWorld};

/// `n` three-node chains with cross-links every third structure — the
/// same shape the parallel engine's own tests use.
fn world(n: usize) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    let mut prev_mid = None;
    for i in 0..n {
        let tail = heap.alloc(node).unwrap();
        let mid = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(i as i32)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(mid))).unwrap();
        heap.set_field(mid, 1, Value::Ref(Some(tail))).unwrap();
        if i % 3 == 0 {
            if let Some(shared) = prev_mid {
                heap.set_field(tail, 1, Value::Ref(Some(shared))).unwrap();
            }
        }
        prev_mid = Some(mid);
        roots.push(head);
    }
    (heap, roots)
}

/// **Acceptance criterion**: the partitioner's own plans prove disjoint,
/// complete, and first-touch deterministic at every worker count 1–8,
/// with zero `AUD20x` errors — on both the shared-chain world and a
/// synthetic paper world.
#[test]
fn in_repo_plans_audit_clean_at_one_through_eight_shards() {
    let (heap, roots) = world(12);
    let synth = SynthWorld::build(SynthConfig::small()).unwrap();
    let heaps: [(&Heap, &[ObjectId]); 2] = [(&heap, &roots), (synth.heap(), synth.roots())];
    for (heap, roots) in heaps {
        for shards in 1..=8usize {
            // Both balance strategies must prove out: count-based chunks
            // and the byte-weighted chunks the engine defaults to.
            for balance in [ShardBalance::RootCount, ShardBalance::Bytes] {
                let plan = plan_shards(heap, roots, shards, balance).unwrap();
                let audit = audit_shards(heap, roots, &plan).unwrap();
                assert!(
                    !audit.report.has_errors(),
                    "{shards} shards ({balance:?}):\n{}",
                    audit.report.render()
                );
                assert_eq!(audit.footprints.len(), plan.num_shards());
                let total: usize = audit.footprints.iter().map(|f| f.objects.len()).sum();
                assert_eq!(total, plan.num_objects());
            }
        }
    }
}

/// A hand-built spec whose `owns` deliberately misbehaves, to exercise
/// failure modes a sound [`ickp_heap::ShardPlan`] cannot even represent.
struct InjectedSpec {
    chunks: Vec<Vec<ObjectId>>,
    /// Objects claimed by *every* shard (the overlap injection).
    shared: Vec<ObjectId>,
    /// Fallback single-owner map.
    owner: std::collections::HashMap<ObjectId, usize>,
}

impl ShardSpec for InjectedSpec {
    fn num_shards(&self) -> usize {
        self.chunks.len()
    }

    fn shard_roots(&self, shard: usize) -> &[ObjectId] {
        &self.chunks[shard]
    }

    fn owns(&self, shard: usize, id: ObjectId) -> bool {
        self.shared.contains(&id) || self.owner.get(&id) == Some(&shard)
    }
}

/// **Acceptance criterion (injected overlap)**: a plan in which two
/// shards both claim a shared object is rejected with `AUD201`.
#[test]
fn an_overlapping_plan_is_rejected_with_aud201() {
    let (heap, roots) = world(6);
    let reference = partition_roots(&heap, &roots, 2).unwrap();
    let mut owner = std::collections::HashMap::new();
    for &id in &reachable_from(&heap, &roots).unwrap() {
        owner.insert(id, reference.owner_of(id).unwrap() as usize);
    }
    // Claim root 0's whole chain for both shards.
    let shared = reachable_from(&heap, &roots[..1]).unwrap();
    let spec =
        InjectedSpec { chunks: vec![roots[..3].to_vec(), roots[3..].to_vec()], shared, owner };
    // Shard 1 must also *reach* the shared chain for the race to occur.
    let audit = {
        let mut chunks = spec.chunks.clone();
        chunks[1].insert(0, roots[0]);
        let spec = InjectedSpec { chunks, ..spec };
        audit_shards(&heap, &spec.chunks.concat(), &spec).unwrap()
    };
    assert!(audit.report.has_errors());
    assert!(
        audit.report.diagnostics().iter().any(|d| d.code == DiagCode::ShardOverlap),
        "expected AUD201:\n{}",
        audit.report.render()
    );
}

/// **Acceptance criterion (stale root order)**: auditing a plan computed
/// from yesterday's root order against today's is rejected with `AUD204`.
#[test]
fn a_stale_root_order_plan_is_rejected_with_aud204() {
    let (heap, roots) = world(8);
    let plan = partition_roots(&heap, &roots, 4).unwrap();
    // The program reorders its roots; the cached plan is now stale.
    let mut reordered = roots.clone();
    reordered.swap(0, 7);
    let audit = audit_shards(&heap, &reordered, &plan).unwrap();
    assert!(audit.report.has_errors());
    let staleness: Vec<_> = audit
        .report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::ShardOwnershipMismatch)
        .collect();
    assert!(!staleness.is_empty(), "expected AUD204:\n{}", audit.report.render());
    assert!(staleness[0].message.contains("stale"));
}

/// A plan whose owner map predates a structure change claims ownership
/// that first-touch order no longer predicts — also `AUD204`, and the
/// new object surfaces as dropped coverage (`AUD202`).
#[test]
fn a_structurally_stale_plan_is_rejected_with_aud204_and_aud202() {
    let (mut heap, roots) = world(6);
    let node = heap.class_of(roots[0]).unwrap();
    let plan = partition_roots(&heap, &roots, 3).unwrap();
    // Root 0's chain grows a link into root 3's subtree *after* planning:
    // first-touch order now hands root 3's chain to shard 0, but the
    // stale owner map still assigns it to shard 1 — and the new link
    // object is owned by nobody at all.
    let extra = heap.alloc(node).unwrap();
    heap.set_field(extra, 1, Value::Ref(Some(roots[3]))).unwrap();
    heap.set_field(roots[0], 1, Value::Ref(Some(extra))).unwrap();
    let audit = audit_shards(&heap, &roots, &plan).unwrap();
    assert!(audit.report.has_errors(), "{}", audit.report.render());
    let codes: Vec<DiagCode> = audit.report.diagnostics().iter().map(|d| d.code).collect();
    assert!(codes.contains(&DiagCode::ShardMissingCoverage), "{}", audit.report.render());
    assert!(codes.contains(&DiagCode::ShardOwnershipMismatch), "{}", audit.report.render());
}

/// `AUD205` fires on a statically lopsided plan, and the estimate it is
/// based on equals the *measured* per-shard body bytes of a real full
/// parallel checkpoint, byte for byte.
#[test]
fn imbalance_lint_matches_measured_per_shard_bytes_exactly() {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    // Root 0 carries a 40-element chain; roots 1..4 are singletons.
    let mut roots = Vec::new();
    let mut next = None;
    for _ in 0..40 {
        let id = heap.alloc(node).unwrap();
        heap.set_field(id, 1, Value::Ref(next)).unwrap();
        next = Some(id);
    }
    roots.push(next.unwrap());
    for _ in 0..3 {
        roots.push(heap.alloc(node).unwrap());
    }

    let plan = partition_roots(&heap, &roots, 4).unwrap();
    let audit = audit_shards(&heap, &roots, &plan).unwrap();
    assert!(!audit.report.has_errors(), "{}", audit.report.render());
    let lints: Vec<_> =
        audit.report.diagnostics().iter().filter(|d| d.severity == Severity::PerfLint).collect();
    assert_eq!(lints.len(), 1, "{}", audit.report.render());
    assert_eq!(lints[0].code, DiagCode::ShardImbalance);

    // Raising the threshold silences the lint without changing verdicts.
    let relaxed =
        audit_shards_with(&heap, &roots, &plan, ShardAuditConfig { imbalance_threshold: 16.0 })
            .unwrap();
    assert!(relaxed.report.is_clean(), "{}", relaxed.report.render());

    // The estimate is exact: run the real engine and compare per shard.
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::full());
    ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
    let measured = ckp.shard_stats();
    assert_eq!(measured.len(), audit.footprints.len());
    for (footprint, stats) in audit.footprints.iter().zip(measured) {
        assert_eq!(
            footprint.est_record_bytes, stats.bytes_written,
            "shard {}: static estimate diverges from measured bytes",
            footprint.shard
        );
        assert_eq!(footprint.objects.len() as u64, stats.objects_recorded);
    }
}

/// **The AUD205 feedback loop closed**: on a heap skewed enough that
/// count-balanced chunking trips the imbalance lint, the byte-weighted
/// chunking the engine now defaults to audits clean — same byte estimate,
/// fed back into boundary placement — while still proving disjoint,
/// complete, and first-touch deterministic.
#[test]
fn weighted_chunking_silences_the_imbalance_lint_count_chunking_trips() {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    // Three 12-element chains up front, then nine singletons: a 4-way
    // count split lumps all three chains into shard 0 (36 of 45 objects),
    // while a byte-weighted split gives each chain its own shard.
    let mut chain = |len: usize| {
        let mut next = None;
        for _ in 0..len {
            let id = heap.alloc(node).unwrap();
            heap.set_field(id, 1, Value::Ref(next)).unwrap();
            next = Some(id);
        }
        next.unwrap()
    };
    let mut roots: Vec<ObjectId> = (0..3).map(|_| chain(12)).collect();
    for _ in 0..9 {
        roots.push(chain(1));
    }

    let counted = plan_shards(&heap, &roots, 4, ShardBalance::RootCount).unwrap();
    let weighted = plan_shards(&heap, &roots, 4, ShardBalance::Bytes).unwrap();
    let count_audit = audit_shards(&heap, &roots, &counted).unwrap();
    let weighted_audit = audit_shards(&heap, &roots, &weighted).unwrap();

    // Correctness holds either way...
    assert!(!count_audit.report.has_errors(), "{}", count_audit.report.render());
    assert!(!weighted_audit.report.has_errors(), "{}", weighted_audit.report.render());
    // ...but only the count-balanced plan is lopsided enough to lint.
    assert!(
        count_audit.report.diagnostics().iter().any(|d| d.code == DiagCode::ShardImbalance),
        "expected AUD205 on the count-balanced plan:\n{}",
        count_audit.report.render()
    );
    assert!(
        weighted_audit.report.is_clean(),
        "weighted plan should not lint:\n{}",
        weighted_audit.report.render()
    );
    assert!(
        weighted_audit.byte_imbalance() < count_audit.byte_imbalance(),
        "weighted {} vs counted {}",
        weighted_audit.byte_imbalance(),
        count_audit.byte_imbalance()
    );
    // The weighted heaviest shard (the parallel wall-clock bound) shrinks.
    let heaviest = |audit: &ickp_audit::ShardAudit| {
        audit.footprints.iter().map(|f| f.est_record_bytes).max().unwrap()
    };
    assert!(heaviest(&weighted_audit) < heaviest(&count_audit));
}

/// **Acceptance criterion (cross-validation)**: on randomized DAG heaps,
/// the traced engine's observed access sets are contained in the static
/// footprints with zero sanitizer overlaps, for workers 1–8.
#[test]
fn sanitizer_observations_are_contained_in_static_footprints() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0xac3d_0000 + case);
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "D",
                None,
                &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
            )
            .unwrap();
        let mut heap = Heap::new(reg);
        let n = 3 + rng.index(40);
        let mut objects: Vec<ObjectId> = Vec::new();
        for i in 0..n {
            let id = heap.alloc(node).unwrap();
            for slot in [1, 2] {
                if i > 0 && rng.next_bool() {
                    let target = objects[rng.index(i)];
                    heap.set_field(id, slot, Value::Ref(Some(target))).unwrap();
                }
            }
            objects.push(id);
        }
        let root_count = 1 + rng.index(objects.len().min(9));
        let mut pool = objects.clone();
        let mut roots = Vec::new();
        for _ in 0..root_count {
            roots.push(pool.swap_remove(rng.index(pool.len())));
        }
        for workers in 1..=8usize {
            let oracle = cross_validate_shards(&heap, &roots, workers).unwrap();
            assert!(oracle.is_consistent(), "case {case}, workers {workers}: {oracle:?}");
            // The probe is tight, not merely contained: every footprint
            // object was actually visited. The plan must be the engine's
            // own (byte-weighted default), or the footprints describe
            // different shards than the trace ran.
            let plan = plan_shards(&heap, &roots, workers, ShardBalance::default()).unwrap();
            let footprints = shard_footprints(&heap, &plan).unwrap();
            for (footprint, &observed) in footprints.iter().zip(&oracle.observed) {
                assert_eq!(footprint.objects.len(), observed, "case {case}");
            }
        }
    }
}
