//! Property tests for the auditor over *random specialization
//! declarations* — the same generator family as
//! `crates/spec/tests/shape_props.rs`, driven by the in-repo seeded PRNG.
//!
//! The two load-bearing properties:
//!
//! 1. **Zero false positives**: a plan freshly compiled from a shape
//!    (plain or register-compacted) audits *completely clean* against
//!    that shape — not even a warning.
//! 2. **Stale plans are caught twice**: a plan verified against a
//!    declaration it was not compiled from is flagged statically, and the
//!    same staleness surfaces dynamically as a `GuardMode::Checked`
//!    failure when the plan runs on a heap conforming to the new
//!    declaration.

use ickp_audit::{cross_validate, verify_plan, DiagCode, Diagnostic};
use ickp_core::{CheckpointKind, StreamWriter, TraversalStats};
use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;
use ickp_spec::{GuardMode, ListPattern, NodePattern, SpecShape, Specializer};

/// Four classes, each with 2 int slots and 3 unconstrained ref slots
/// (slot 2 doubles as a list `next` link).
fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    for i in 0..4 {
        reg.define(
            &format!("C{i}"),
            None,
            &[
                ("a", FieldType::Int),
                ("b", FieldType::Int),
                ("r0", FieldType::Ref(None)),
                ("r1", FieldType::Ref(None)),
                ("r2", FieldType::Ref(None)),
            ],
        )
        .unwrap();
    }
    reg
}

fn random_node_pattern(rng: &mut Prng) -> NodePattern {
    match rng.below(3) {
        0 => NodePattern::MayModify,
        1 => NodePattern::FrozenHere,
        _ => NodePattern::Unmodified,
    }
}

fn random_list_pattern(rng: &mut Prng, len: usize) -> ListPattern {
    match rng.below(4) {
        0 => ListPattern::MayModify,
        1 => ListPattern::Unmodified,
        2 => ListPattern::LastOnly,
        _ => {
            let n = rng.index(len + 1);
            ListPattern::Positions((0..n).map(|_| rng.index(len)).collect())
        }
    }
}

fn random_list(rng: &mut Prng) -> SpecShape {
    let class = ClassId::from_index(rng.index(4));
    let len = 1 + rng.index(4);
    SpecShape::list(class, 2, len, random_list_pattern(rng, len))
}

/// Random shape over the class family; children occupy ref slots 3/4
/// (slot 2 is reserved for list links). Never `Dynamic` at the root.
fn random_shape(rng: &mut Prng, depth: usize) -> SpecShape {
    if depth == 0 || rng.ratio(1, 3) {
        if rng.next_bool() {
            SpecShape::object(ClassId::from_index(rng.index(4)), random_node_pattern(rng), vec![])
        } else {
            random_list(rng)
        }
    } else {
        let nkids = rng.index(3);
        let children =
            (0..nkids).map(|i| (3 + i, random_shape(rng, depth - 1))).collect::<Vec<_>>();
        SpecShape::object(ClassId::from_index(rng.index(4)), random_node_pattern(rng), children)
    }
}

/// Materializes a heap subgraph conforming to `shape`; returns its root.
fn materialize(heap: &mut Heap, shape: &SpecShape) -> ObjectId {
    match shape {
        SpecShape::Object { class, children, .. } => {
            let obj = heap.alloc(*class).unwrap();
            for (slot, child) in children {
                let c = materialize(heap, child);
                heap.set_field(obj, *slot, Value::Ref(Some(c))).unwrap();
            }
            obj
        }
        SpecShape::List { elem_class, next_slot, len, .. } => {
            let mut next: Option<ObjectId> = None;
            for _ in 0..*len {
                let e = heap.alloc(*elem_class).unwrap();
                heap.set_field(e, *next_slot, Value::Ref(next)).unwrap();
                next = Some(e);
            }
            next.expect("len >= 1")
        }
        SpecShape::Dynamic => heap.alloc(ClassId::from_index(0)).unwrap(),
    }
}

/// Replaces the root class of a shape with the next class in the family —
/// the minimal "structure changed under a compiled plan" edit.
fn reclass_root(shape: &SpecShape) -> SpecShape {
    let bump = |c: &ClassId| ClassId::from_index((c.index() + 1) % 4);
    let mut s = shape.clone();
    match &mut s {
        SpecShape::Object { class, .. } => *class = bump(class),
        SpecShape::List { elem_class, .. } => *elem_class = bump(elem_class),
        SpecShape::Dynamic => unreachable!("generator never yields a dynamic root"),
    }
    s
}

/// **Acceptance criterion**: the verifier proves coverage equivalence for
/// every generated shape with zero false positives — the report for a
/// freshly compiled plan (plain and register-compacted alike) is
/// completely empty.
#[test]
fn compiled_plans_audit_clean_with_zero_false_positives() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xa0d1_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let reg = registry();
        let spec = Specializer::new(&reg);
        let plan = spec.compile(&shape).unwrap();
        let report = verify_plan(&plan, &shape, &reg);
        assert!(report.is_clean(), "case {case} (plain):\n{}", report.render());

        // Register compaction renames registers without touching coverage;
        // the verifier's symbolic execution is register-name agnostic.
        let optimized = spec.compile_optimized(&shape).unwrap();
        let report = verify_plan(&optimized, &shape, &reg);
        assert!(report.is_clean(), "case {case} (optimized):\n{}", report.render());
    }
}

/// A plan compiled for one declaration, audited against a re-classed
/// declaration, is flagged statically — and running it on a heap
/// conforming to the *new* declaration always fails under
/// `GuardMode::Checked`. The static and dynamic verdicts agree.
#[test]
fn stale_plans_are_flagged_statically_and_fail_checked_execution() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0xb3c5_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let rewired = reclass_root(&shape);
        let reg = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();

        // Static: the auditor pinpoints the stale class guard.
        let report = verify_plan(&plan, &rewired, &reg);
        assert!(report.has_errors(), "case {case}:\n{}", report.render());
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d: &Diagnostic| d.code == DiagCode::ClassGuardMismatch),
            "case {case}: expected AUD021, got:\n{}",
            report.render()
        );

        // Dynamic: checked execution on the re-wired heap refuses to run.
        let mut heap = Heap::new(registry());
        let root = materialize(&mut heap, &rewired);
        heap.mark_all_modified();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        let result =
            plan.executor().run(&mut heap, root, &mut writer, GuardMode::Checked, None, &mut stats);
        assert!(result.is_err(), "case {case}: checked run must fail on the re-wired heap");
    }
}

/// The dynamic oracle backs the static verdict: for clean compiled plans,
/// executing on a conforming heap with an arbitrary dirty subset never
/// misses a covered object and never records a clean one.
#[test]
fn oracle_reconciles_every_compiled_plan_with_its_declaration() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0xc4f7_0000 + case);
        let shape = random_shape(&mut rng, 3);
        let reg = registry();
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let root = materialize(&mut heap, &shape);
        heap.reset_all_modified();

        // Dirty a random subset of live objects through real field writes.
        let live: Vec<ObjectId> = heap.iter_live().collect();
        for obj in live {
            if rng.next_bool() {
                heap.set_field(obj, 0, Value::Int(rng.index(1 << 16) as i32)).unwrap();
            }
        }

        let r = cross_validate(&heap, &plan, &shape, &[root], GuardMode::Checked).unwrap();
        assert!(r.is_consistent(), "case {case}: missed={:?} spurious={:?}", r.missed, r.spurious);
        // Sanity: everything dirty is accounted for in some bucket.
        assert!(r.recorded + r.declared_clean_dirty >= r.dirty - r.missed.len(), "case {case}");
    }
}
