//! Durability-ordering auditor, end to end: the real protocols must
//! audit error-clean, every injected ordering violation must surface
//! its exact `AUD4xx` code, and the static crash-class verdicts must
//! agree with the real `MemFs` crash oracle.

use ickp_audit::{audit_durability, cross_validate_durability, OpTraceSpec};
use ickp_core::{
    object_slices, CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable, RecordSink,
};
use ickp_durable::{
    DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, OpCounter, TraceEvent, TraceLog,
    TraceNode, TraceOp, TraceVfs, MANIFEST,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_replicate::{ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan};

/// A deterministic stream of checkpoint records over a two-node list.
fn produce(rounds: usize) -> (ClassRegistry, Vec<CheckpointRecord>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[("v", FieldType::Int), ("next", FieldType::Ref(None)), ("pad", FieldType::Long)],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let tail = heap.alloc(node).unwrap();
    let head = heap.alloc(node).unwrap();
    heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
    let roots: Vec<ObjectId> = vec![head];
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut records = Vec::new();
    for i in 0..rounds {
        heap.set_field(tail, 0, Value::Int(i as i32)).unwrap();
        records.push(ckp.checkpoint(&mut heap, &table, &roots).unwrap());
    }
    let registry = heap.registry().clone();
    (registry, records)
}

fn config() -> DurableConfig {
    DurableConfig { segment_target_bytes: 256 }
}

/// A hand-built trace, for injecting protocols the sound store cannot
/// produce.
struct RawTrace {
    events: Vec<TraceEvent>,
    counted: u64,
}

impl OpTraceSpec for RawTrace {
    fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn counted_ops(&self) -> u64 {
        self.counted
    }
}

fn op(index: u64, node: TraceNode, op: TraceOp) -> TraceEvent {
    TraceEvent::Op { index, node, op }
}

fn error_codes(trace: &RawTrace) -> Vec<&'static str> {
    let audit = audit_durability(trace);
    audit
        .report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == ickp_audit::Severity::Error)
        .map(|d| d.code.code())
        .collect()
}

/// The canonical sound single-node commit at `base`: append + fsync,
/// then the four-step manifest swap, then the acknowledgement.
fn sound_commit(base: u64, node: TraceNode, seg: &str, records: u64) -> Vec<TraceEvent> {
    vec![
        op(base, node, TraceOp::Write { path: seg.into(), offset: 0, len: 64 }),
        op(base + 1, node, TraceOp::Fsync { path: seg.into() }),
        op(base + 2, node, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
        op(base + 3, node, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
        op(base + 4, node, TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() }),
        op(base + 5, node, TraceOp::DirFsync),
        TraceEvent::ClientAck { records },
    ]
}

// ---------------------------------------------------------------------
// The real protocols audit error-clean.
// ---------------------------------------------------------------------

/// The full single-node `DurableStore` protocol — singles, a group
/// commit, a tag, and a dedup rewrite — leaves an error-free trace.
#[test]
fn the_real_store_protocol_audits_error_clean() {
    let (registry, records) = produce(6);
    let log = TraceLog::new();
    let mut fs = TraceVfs::new(MemFs::new(), log.clone());
    let mut store = DurableStore::create(&mut fs, config()).unwrap();

    let mut acked = 0u64;
    for record in &records[..3] {
        store.append(record).unwrap();
        acked += 1;
        log.client_ack(acked);
    }
    store.append_batch(&records[3..]).unwrap();
    acked += (records.len() - 3) as u64;
    log.client_ack(acked);
    store.tag("stable", records[2].seq()).unwrap();

    let layouts: Vec<_> =
        records.iter().map(|r| object_slices(r.bytes(), &registry).unwrap().objects).collect();
    let tags = store.tags().to_vec();
    store.rewrite(&records, &layouts, &tags).unwrap();
    drop(store);

    let trace = log.snapshot(&fs.counter());
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "real store protocol flagged:\n{}", audit.report.render());
    assert_eq!(audit.acks, 4, "three singles + one batch");
    assert!(audit.commits >= 6, "create + per-ack swaps + tag + rewrite, got {}", audit.commits);
    assert_eq!(audit.counted_ops, trace.counted);
    assert!(!audit.classes.is_empty());
}

/// The replicated `ReplicaPair` protocol — both nodes and the wire in
/// one shared counter space — leaves an error-free trace.
#[test]
fn the_real_replicated_protocol_audits_error_clean() {
    let (registry, records) = produce(5);
    let log = TraceLog::new();
    let counter = OpCounter::new();
    let mut pfs =
        TraceVfs::with_counter(MemFs::new(), log.clone(), counter.clone(), TraceNode::Primary);
    let mut ffs =
        TraceVfs::with_counter(MemFs::new(), log.clone(), counter.clone(), TraceNode::Follower);
    let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
    link.set_trace(log.clone());

    let cfg = ReplicateConfig { durable: config(), batch_records: 2, max_retries: 3, dedup: false };
    let mut pair = ReplicaPair::create(&mut pfs, &mut ffs, &mut link, cfg, &registry).unwrap();
    for record in &records {
        pair.append(record.clone()).unwrap();
        if pair.acked_records() > 0 {
            log.client_ack(pair.acked_records());
        }
    }
    pair.commit().unwrap();
    log.client_ack(pair.acked_records());
    drop(pair);

    let trace = log.snapshot(&counter);
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "replicated protocol flagged:\n{}", audit.report.render());
    assert!(audit.wire_sends > 0, "data must have crossed the wire");
    assert!(audit.wire_acks > 0, "acks must have crossed back");
    assert!(audit.acks > 0);
}

/// The `RecordSink` seam: an `AckHook` around the store places the
/// acknowledgement markers, so producers need no tracing knowledge.
#[test]
fn ack_hook_markers_line_up_with_store_commits() {
    let (_registry, records) = produce(4);
    let log = TraceLog::new();
    let mut fs = TraceVfs::new(MemFs::new(), log.clone());
    let store = DurableStore::create(&mut fs, config()).unwrap();
    let marker_log = log.clone();
    let mut sink = ickp_core::AckHook::new(store, move |acked| marker_log.client_ack(acked));
    for record in records {
        sink.append_record(record).unwrap();
    }
    drop(sink);

    let trace = log.snapshot(&fs.counter());
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "{}", audit.report.render());
    assert_eq!(audit.acks, 4);
}

// ---------------------------------------------------------------------
// Injected violations surface their exact codes.
// ---------------------------------------------------------------------

/// AUD401: the acknowledgement rests on fsynced bytes but no manifest
/// publish — recovery would return the previous frontier.
#[test]
fn injected_ack_without_publish_is_exactly_aud401() {
    let trace = RawTrace {
        events: vec![
            op(0, TraceNode::Local, TraceOp::Write { path: "seg".into(), offset: 0, len: 64 }),
            op(1, TraceNode::Local, TraceOp::Fsync { path: "seg".into() }),
            TraceEvent::ClientAck { records: 1 },
        ],
        counted: 2,
    };
    assert_eq!(error_codes(&trace), vec!["AUD401"]);
}

/// AUD401 (volatile flavour): the segment bytes were never fsynced at
/// all, yet the manifest swap acknowledged them.
#[test]
fn injected_unsynced_segment_under_an_ack_is_aud401() {
    let trace = RawTrace {
        events: vec![
            op(0, TraceNode::Local, TraceOp::Write { path: "seg".into(), offset: 0, len: 64 }),
            // Missing: fsync("seg").
            op(1, TraceNode::Local, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            op(2, TraceNode::Local, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
            op(
                3,
                TraceNode::Local,
                TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
            ),
            op(4, TraceNode::Local, TraceOp::DirFsync),
            TraceEvent::ClientAck { records: 1 },
        ],
        counted: 5,
    };
    assert_eq!(error_codes(&trace), vec!["AUD401"]);
}

/// AUD402: the manifest temp file is renamed before its fsync — the
/// name can become durable ahead of the bytes it points at.
#[test]
fn injected_rename_before_fsync_is_exactly_aud402() {
    let trace = RawTrace {
        events: vec![
            op(0, TraceNode::Local, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            op(
                1,
                TraceNode::Local,
                TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
            ),
            op(2, TraceNode::Local, TraceOp::Fsync { path: MANIFEST.into() }),
            op(3, TraceNode::Local, TraceOp::DirFsync),
            TraceEvent::ClientAck { records: 1 },
        ],
        counted: 4,
    };
    assert_eq!(error_codes(&trace), vec!["AUD402"]);
}

/// AUD403: the manifest rename is never sealed by a parent-directory
/// fsync before the acknowledgement.
#[test]
fn injected_missing_dir_fsync_is_exactly_aud403() {
    let trace = RawTrace {
        events: vec![
            op(0, TraceNode::Local, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            op(1, TraceNode::Local, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
            op(
                2,
                TraceNode::Local,
                TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
            ),
            // Missing: sync_dir().
            TraceEvent::ClientAck { records: 1 },
        ],
        counted: 3,
    };
    assert_eq!(error_codes(&trace), vec!["AUD403"]);
}

/// AUD404: a write lands inside a region the committed manifest already
/// references.
#[test]
fn injected_committed_overwrite_is_exactly_aud404() {
    let mut events = sound_commit(0, TraceNode::Local, "seg", 1);
    events.push(op(6, TraceNode::Local, TraceOp::Write { path: "seg".into(), offset: 8, len: 8 }));
    let trace = RawTrace { events, counted: 7 };
    assert_eq!(error_codes(&trace), vec!["AUD404"]);
}

/// AUD405: the client is acknowledged after the data frame ships but
/// before the follower's acknowledgement returns.
#[test]
fn injected_early_replication_ack_is_exactly_aud405() {
    let mut events = Vec::new();
    events.extend(sound_commit(0, TraceNode::Primary, "seg", 1));
    // The sound_commit helper appended ClientAck{1}; replace the tail:
    // ship the frame, then acknowledge a second batch with no wire ack.
    events.pop();
    events.push(op(6, TraceNode::Primary, TraceOp::WireSend));
    events.push(TraceEvent::ClientAck { records: 1 });
    let trace = RawTrace { events, counted: 7 };
    assert_eq!(error_codes(&trace), vec!["AUD405"]);
}

/// AUD406: an op index claimed on the shared counter never shows up in
/// the trace — some I/O ran outside the audited op space.
#[test]
fn injected_uncounted_op_is_exactly_aud406() {
    let mut events = sound_commit(0, TraceNode::Local, "seg", 1);
    // The counter handed out 7 indices but the trace only shows 6.
    let trace = RawTrace { events: std::mem::take(&mut events), counted: 7 };
    assert_eq!(error_codes(&trace), vec!["AUD406"]);
}

// ---------------------------------------------------------------------
// Perf lints.
// ---------------------------------------------------------------------

/// AUD407: a second fsync with nothing pending is flagged as waste, at
/// lint severity — the protocol is still sound.
#[test]
fn redundant_fsync_is_linted_as_aud407() {
    let mut events = sound_commit(0, TraceNode::Local, "seg", 1);
    events.push(op(6, TraceNode::Local, TraceOp::Fsync { path: "seg".into() }));
    let trace = RawTrace { events, counted: 7 };
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "{}", audit.report.render());
    let lints: Vec<_> = audit
        .report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == ickp_audit::Severity::PerfLint)
        .map(|d| d.code.code())
        .collect();
    assert!(lints.contains(&"AUD407"), "{lints:?}");
}

/// AUD408: a run of single-record commits is flagged with the fsyncs a
/// group commit would save.
#[test]
fn single_record_commit_runs_are_linted_as_aud408() {
    let mut events = Vec::new();
    for i in 0..4u64 {
        events.extend(sound_commit(i * 6, TraceNode::Local, &format!("seg-{i}"), i + 1));
    }
    let trace = RawTrace { events, counted: 24 };
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "{}", audit.report.render());
    let lint = audit
        .report
        .diagnostics()
        .iter()
        .find(|d| d.code.code() == "AUD408")
        .expect("missed-coalescing lint");
    assert!(lint.message.contains("4 consecutive"), "{}", lint.message);
    assert!(lint.message.contains("9"), "3*(4-1) fsyncs saved: {}", lint.message);
}

// ---------------------------------------------------------------------
// The dynamic oracle.
// ---------------------------------------------------------------------

/// Every crash class of a real traced workload agrees with the MemFs
/// crash oracle: replaying the first and last member of each class
/// recovers exactly the statically predicted record count.
#[test]
fn crash_classes_agree_with_the_memfs_oracle() {
    let (registry, records) = produce(6);
    let drive = |fs: &mut FailFs, log: Option<&TraceLog>| -> Result<(), String> {
        let mut store = DurableStore::create(&mut *fs, config()).map_err(|e| e.to_string())?;
        let mut acked = 0u64;
        for record in &records[..3] {
            store.append(record).map_err(|e| e.to_string())?;
            acked += 1;
            if let Some(log) = log {
                log.client_ack(acked);
            }
        }
        store.append_batch(&records[3..]).map_err(|e| e.to_string())?;
        acked += (records.len() - 3) as u64;
        if let Some(log) = log {
            log.client_ack(acked);
        }
        Ok(())
    };

    // Traced baseline: the static pass sees the full op stream.
    let log = TraceLog::new();
    let mut baseline = FailFs::new(FaultPlan::none());
    baseline.set_trace(log.clone(), TraceNode::Local);
    drive(&mut baseline, Some(&log)).unwrap();
    let trace = log.snapshot(&baseline.counter());
    let audit = audit_durability(&trace);
    assert!(audit.is_sound(), "{}", audit.report.render());
    assert!(audit.classes.len() >= 4, "expected several classes, got {}", audit.classes.len());
    let pruned: u64 = audit.classes.iter().map(|c| c.indices.len() as u64 - 1).sum();
    assert!(pruned > 0, "equivalence classing must collapse some crash points");

    // Every class, both ends, against the real crash machinery.
    let oracle =
        cross_validate_durability(&registry, config(), &audit.classes, 1, |fs| drive(fs, None))
            .expect("static verdicts must match the MemFs oracle");
    assert_eq!(oracle.classes, audit.classes.len());
    assert_eq!(oracle.sampled, audit.classes.len());
    assert!(oracle.replays >= audit.classes.len());
}
