//! Hand-assembled malformed plans (via `Plan::from_raw_parts`) exercising
//! the verifier's structural, dataflow, and clobber passes — the
//! instruction sequences the compiler can never emit but tooling or
//! future optimizers could.

use ickp_audit::{verify_plan, DiagCode, Severity};
use ickp_heap::{ClassId, ClassRegistry, FieldType};
use ickp_spec::{NodePattern, Op, Plan, RecordTemplate, SpecShape};

fn registry() -> (ClassRegistry, ClassId, ClassId) {
    let mut reg = ClassRegistry::new();
    let elem =
        reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
    (reg, elem, holder)
}

fn template_for(reg: &ClassRegistry, class: ClassId) -> RecordTemplate {
    let kinds = reg.class(class).unwrap().layout().iter().map(|f| f.ty()).collect();
    RecordTemplate::new(class, kinds)
}

fn has_code(report: &ickp_audit::AuditReport, code: DiagCode) -> bool {
    report.diagnostics().iter().any(|d| d.code == code)
}

#[test]
fn register_out_of_range_is_an_error() {
    let (reg, _, holder) = registry();
    let plan = Plan::from_raw_parts(vec![Op::LoadRoot { dst: 7, class: holder }], vec![], 1, false);
    let report = verify_plan(&plan, &SpecShape::leaf(holder), &reg);
    assert!(has_code(&report, DiagCode::RegisterOutOfRange), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn use_before_def_is_caught_on_the_skipping_path() {
    let (reg, elem, holder) = registry();
    let shape = SpecShape::object(
        holder,
        NodePattern::MayModify,
        vec![(0, SpecShape::object(elem, NodePattern::MayModify, vec![]))],
    );
    let templates = vec![template_for(&reg, holder), template_for(&reg, elem)];
    // r1 is defined only inside the skip region of the r0 test, then read
    // unconditionally after it: the clean path reads an unbound register.
    let ops = vec![
        Op::LoadRoot { dst: 0, class: holder },
        Op::TestModified { obj: 0, skip: 2 },
        Op::Record { obj: 0, template: 0 },
        Op::LoadRef { dst: 1, src: 0, slot: 0, class: elem },
        Op::TestModified { obj: 1, skip: 1 },
        Op::Record { obj: 1, template: 1 },
    ];
    let plan = Plan::from_raw_parts(ops, templates, 2, false);
    let report = verify_plan(&plan, &shape, &reg);
    assert!(has_code(&report, DiagCode::UseBeforeDef), "{}", report.render());
}

#[test]
fn generic_without_the_dynamic_flag_is_an_error() {
    let (reg, _, holder) = registry();
    let ops = vec![Op::LoadRoot { dst: 0, class: holder }, Op::Generic { obj: 0 }];
    let plan = Plan::from_raw_parts(ops, vec![], 1, false);
    let report = verify_plan(&plan, &SpecShape::leaf(holder), &reg);
    assert!(has_code(&report, DiagCode::DynamicFlagMismatch), "{}", report.render());
    assert!(report.has_errors(), "executing this plan panics; must gate hard");
}

#[test]
fn template_layout_mismatch_is_an_error() {
    let (reg, elem, holder) = registry();
    // Record the holder through the *elem* field kinds: stream corruption.
    let bad = RecordTemplate::new(holder, vec![FieldType::Int, FieldType::Int]);
    let ops = vec![
        Op::LoadRoot { dst: 0, class: holder },
        Op::TestModified { obj: 0, skip: 1 },
        Op::Record { obj: 0, template: 0 },
    ];
    let plan = Plan::from_raw_parts(ops, vec![bad], 1, false);
    let report = verify_plan(&plan, &SpecShape::leaf(holder), &reg);
    assert!(has_code(&report, DiagCode::TemplateLayoutMismatch), "{}", report.render());
    let _ = elem;
}

#[test]
fn clobbering_a_live_register_inside_a_guarded_region_is_an_error() {
    let (reg, _, holder) = registry();
    let templates = vec![template_for(&reg, holder)];
    // r0 is live across the test's skip region but conditionally rebound
    // inside it: the two paths disagree about what op 3 records.
    let ops = vec![
        Op::LoadRoot { dst: 0, class: holder },
        Op::TestModified { obj: 0, skip: 1 },
        Op::LoadRoot { dst: 0, class: holder },
        Op::Record { obj: 0, template: 0 },
    ];
    let plan = Plan::from_raw_parts(ops, templates, 1, false);
    let report = verify_plan(&plan, &SpecShape::leaf(holder), &reg);
    assert!(has_code(&report, DiagCode::ClobberedLiveRegister), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn unguarded_record_is_a_warning_not_an_error() {
    let (reg, _, holder) = registry();
    let templates = vec![template_for(&reg, holder)];
    // Record with no modified-flag test: correct stream (a superset), but
    // it re-records clean objects — exactly what specialization exists to
    // avoid.
    let ops = vec![Op::LoadRoot { dst: 0, class: holder }, Op::Record { obj: 0, template: 0 }];
    let plan = Plan::from_raw_parts(ops, templates, 1, false);
    let report = verify_plan(&plan, &SpecShape::leaf(holder), &reg);
    assert!(has_code(&report, DiagCode::UnguardedRecord), "{}", report.render());
    assert!(!report.has_errors(), "{}", report.render());
    assert!(report.count(Severity::Warning) >= 1);
}

#[test]
fn a_dropped_record_site_is_missing_coverage() {
    let (reg, elem, holder) = registry();
    let shape = SpecShape::object(
        holder,
        NodePattern::MayModify,
        vec![(0, SpecShape::object(elem, NodePattern::MayModify, vec![]))],
    );
    // The child's test/record was "optimized away": modifications to the
    // elem never reach the checkpoint.
    let ops = vec![
        Op::LoadRoot { dst: 0, class: holder },
        Op::TestModified { obj: 0, skip: 1 },
        Op::Record { obj: 0, template: 0 },
    ];
    let plan = Plan::from_raw_parts(ops, vec![template_for(&reg, holder)], 1, false);
    let report = verify_plan(&plan, &shape, &reg);
    assert!(has_code(&report, DiagCode::MissingCoverage), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn a_list_overrun_is_pinpointed() {
    let (reg, elem, holder) = registry();
    // Plan compiled for a 3-list, declaration now says 2: the third load
    // runs off the declared tail.
    let spec = ickp_spec::Specializer::new(&reg);
    let long = SpecShape::object(
        holder,
        NodePattern::FrozenHere,
        vec![(0, SpecShape::list(elem, 1, 3, ickp_spec::ListPattern::MayModify))],
    );
    let short = SpecShape::object(
        holder,
        NodePattern::FrozenHere,
        vec![(0, SpecShape::list(elem, 1, 2, ickp_spec::ListPattern::MayModify))],
    );
    let plan = spec.compile(&long).unwrap();
    let report = verify_plan(&plan, &short, &reg);
    assert!(has_code(&report, DiagCode::ListOverrun), "{}", report.render());
    assert!(report.has_errors());
}
