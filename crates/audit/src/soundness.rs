//! The pattern soundness checker: per-phase write-sets vs declared
//! modification patterns.
//!
//! The plan verifier proves a plan faithful to its declaration; this pass
//! asks whether the *declaration itself* tells the truth about the
//! program. [`engine_footprints`] lowers the static write-set inference of
//! `ickp-analysis` ([`infer_phase_writes`]) into per-phase
//! [`PhaseFootprint`]s — which `Attributes` subtree each phase can write,
//! and for how many statements. [`audit_phase_patterns`] then
//! cross-checks every declared phase plan against every footprint:
//!
//! * a phase that **writes** a subtree its declaration freezes is an
//!   **under-declaration** (`AUD101`, error): the specialized checkpoint
//!   silently drops those modifications;
//! * a declaration that leaves a subtree **modifiable** for a phase that
//!   provably never writes it is an **over-declaration** (`AUD102`, perf
//!   lint), quantified in statically-known skippable record bytes;
//! * a phase with writes but **no declared plan** falls back to the
//!   generic checkpointer (`AUD103`, warning) — correct, just slow.

use crate::diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};
use ickp_analysis::{infer_phase_writes, AttributesSchema, Division, EngineError, Phase};
use ickp_heap::ClassRegistry;
use ickp_minic::Program;
use ickp_spec::{ListPattern, NodePattern, PhasePlans, SpecShape};

pub use ickp_core::RECORD_HEADER_BYTES;

/// What one analysis phase can do to the shared `Attributes` structure:
/// which root subtree it owns and whether the program makes it write
/// there at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseFootprint {
    /// The phase's plan-registry key (see `ickp_analysis::Phase::key`).
    pub phase: String,
    /// Human-readable name of the subtree the phase owns.
    pub subtree: &'static str,
    /// Root slot of `Attributes` holding that subtree.
    pub subtree_slot: usize,
    /// `true` if the phase can write the subtree for this program;
    /// `false` is a static proof of absence.
    pub writes: bool,
    /// Upper bound on the number of statements whose subtree the phase
    /// writes.
    pub stmts_written: usize,
}

/// Derives the three engine-phase footprints for `program` under
/// `division`, without running the engine or building an attribute heap.
///
/// # Errors
///
/// Propagates [`infer_phase_writes`] failures (ill-typed program or a
/// diverging fixpoint).
pub fn engine_footprints(
    program: &Program,
    division: &Division,
) -> Result<Vec<PhaseFootprint>, EngineError> {
    let writes = infer_phase_writes(program, division)?;
    Ok(writes
        .iter()
        .map(|w| {
            let (subtree, subtree_slot) = match w.phase {
                Phase::SideEffect => ("side-effect", AttributesSchema::SLOT_SE),
                Phase::BindingTime => ("binding-time", AttributesSchema::SLOT_BT),
                Phase::EvalTime => ("eval-time", AttributesSchema::SLOT_ET),
            };
            PhaseFootprint {
                phase: w.phase.key().to_string(),
                subtree,
                subtree_slot,
                writes: w.writes_own_subtree,
                stmts_written: w.stmts_written,
            }
        })
        .collect())
}

/// Cross-checks every declared phase plan in `plans` against the inferred
/// `footprints`. See the module docs for the verdict taxonomy.
pub fn audit_phase_patterns(
    plans: &PhasePlans,
    footprints: &[PhaseFootprint],
    registry: &ClassRegistry,
) -> AuditReport {
    let mut diags = Vec::new();
    for p in footprints {
        let Some(shape) = plans.shape(&p.phase) else {
            if p.writes {
                diags.push(
                    Diagnostic::new(
                        Severity::Warning,
                        DiagCode::UndeclaredPhase,
                        Location::Phase(p.phase.clone()),
                        format!(
                            "the {} phase writes {} statement(s) but has no declared plan: \
                             every checkpoint during it pays full generic traversal",
                            p.subtree, p.stmts_written
                        ),
                    )
                    .with_suggestion("register a phase plan via PhasePlans::insert_with_shape"),
                );
            }
            continue;
        };
        // Engine invariant: during phase `p`, only `p`'s own subtree is
        // written — so `p`'s declaration must leave exactly the written
        // subtrees modifiable.
        for g in footprints {
            let child = root_child(shape, g.subtree_slot);
            let modifiable = child.is_some_and(|c| !c.is_fully_unmodified());
            let written = g.phase == p.phase && g.writes;
            if written && !modifiable {
                diags.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagCode::UnderDeclaredPattern,
                        Location::Phase(p.phase.clone()),
                        format!(
                            "the declaration freezes the {} subtree (slot {}), but the phase \
                             writes it for {} statement(s): those modifications are silently \
                             missing from every specialized checkpoint",
                            g.subtree, g.subtree_slot, g.stmts_written
                        ),
                    )
                    .with_suggestion(format!(
                        "declare slot {} modifiable (or dynamic) in this phase's shape",
                        g.subtree_slot
                    )),
                );
            } else if !written && modifiable {
                let quantified = child
                    .and_then(|c| recordable_bytes(c, registry))
                    .map(|b| format!("~{b} bytes of records per checkpoint are statically dead"))
                    .unwrap_or_else(|| {
                        "the subtree is partly dynamic, so the savings are unquantifiable \
                         statically"
                            .to_string()
                    });
                diags.push(
                    Diagnostic::new(
                        Severity::PerfLint,
                        DiagCode::OverDeclaredPattern,
                        Location::Phase(p.phase.clone()),
                        format!(
                            "the declaration leaves the {} subtree (slot {}) modifiable, but \
                             this phase provably never writes it: {quantified}",
                            g.subtree, g.subtree_slot
                        ),
                    )
                    .with_suggestion(format!(
                        "freeze slot {} to Unmodified in this phase's shape",
                        g.subtree_slot
                    )),
                );
            }
        }
    }
    AuditReport::from_diagnostics(diags)
}

fn root_child(shape: &SpecShape, slot: usize) -> Option<&SpecShape> {
    match shape {
        SpecShape::Object { children, .. } => {
            children.iter().find(|(s, _)| *s == slot).map(|(_, c)| c)
        }
        _ => None,
    }
}

/// Upper bound, in stream bytes, on what one checkpoint records if every
/// test/record site of `shape` fires: record sites × (record header +
/// encoded field state). Returns `None` when the subtree contains a
/// dynamic edge, whose record volume is not statically known.
pub fn recordable_bytes(shape: &SpecShape, registry: &ClassRegistry) -> Option<usize> {
    let record = |class, sites: usize| {
        registry
            .class(class)
            .ok()
            .map(|def| sites * (RECORD_HEADER_BYTES + def.encoded_state_size()))
    };
    match shape {
        SpecShape::Dynamic => None,
        SpecShape::Object { class, pattern, children } => {
            let own = match pattern {
                NodePattern::MayModify => record(*class, 1)?,
                NodePattern::FrozenHere => 0,
                NodePattern::Unmodified => return Some(0),
            };
            let mut total = own;
            for (_, child) in children {
                total += recordable_bytes(child, registry)?;
            }
            Some(total)
        }
        SpecShape::List { elem_class, len, pattern, .. } => {
            let sites = match pattern {
                ListPattern::Unmodified => 0,
                ListPattern::MayModify => *len,
                ListPattern::LastOnly => 1,
                ListPattern::Positions(ps) => {
                    let mut ps: Vec<usize> = ps.clone();
                    ps.sort_unstable();
                    ps.dedup();
                    ps.len()
                }
            };
            record(*elem_class, sites)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType, Heap};
    use ickp_minic::parse;

    fn division(dynamic: &[&str]) -> Division {
        Division { dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect() }
    }

    fn schema_heap() -> (Heap, AttributesSchema) {
        let mut heap = Heap::new(ClassRegistry::new());
        let schema = AttributesSchema::define(&mut heap).unwrap();
        (heap, schema)
    }

    #[test]
    fn footprints_cover_all_three_phases() {
        let p = parse("int d; int s; void main() { s = d + 1; }").unwrap();
        let fps = engine_footprints(&p, &division(&["d"])).unwrap();
        assert_eq!(fps.len(), 3);
        let by_key = |k: &str| fps.iter().find(|f| f.phase == k).unwrap();
        assert!(by_key("seffect").writes, "s and d are touched");
        assert!(by_key("bta").writes, "d is dynamic");
        assert!(by_key("eta").writes);
        assert_eq!(by_key("bta").subtree_slot, AttributesSchema::SLOT_BT);
    }

    #[test]
    fn recordable_bytes_counts_header_plus_state() {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        // One element: 15-byte header + 4 (int) + 8 (ref) = 27.
        let one = SpecShape::list(elem, 1, 4, ListPattern::LastOnly);
        assert_eq!(recordable_bytes(&one, &reg), Some(27));
        let all = SpecShape::list(elem, 1, 4, ListPattern::MayModify);
        assert_eq!(recordable_bytes(&all, &reg), Some(4 * 27));
        let none = SpecShape::list(elem, 1, 4, ListPattern::Unmodified);
        assert_eq!(recordable_bytes(&none, &reg), Some(0));
        assert_eq!(recordable_bytes(&SpecShape::Dynamic, &reg), None);
    }

    #[test]
    fn well_matched_declarations_are_clean() {
        use ickp_spec::Specializer;
        let (heap, schema) = schema_heap();
        let p = parse("int d; int s; void main() { s = d + 1; }").unwrap();
        let fps = engine_footprints(&p, &division(&["d"])).unwrap();
        let spec = Specializer::new(heap.registry());
        let mut plans = PhasePlans::new();
        for (key, shape) in [("bta", schema.shape_bta_phase()), ("eta", schema.shape_eta_phase())] {
            let plan = spec.compile(&shape).unwrap();
            plans.insert_with_shape(key, shape, plan);
        }
        let report = audit_phase_patterns(&plans, &fps, heap.registry());
        // seffect writes but has no plan: exactly one benign warning.
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.count(Severity::PerfLint), 0);
        assert!(report.diagnostics()[0].code == DiagCode::UndeclaredPhase);
    }

    #[test]
    fn under_declared_phase_is_an_error() {
        use ickp_spec::Specializer;
        let (heap, schema) = schema_heap();
        let p = parse("int d; int s; void main() { s = d + 1; }").unwrap();
        let fps = engine_footprints(&p, &division(&["d"])).unwrap();
        // Seed the bug: register the *eta* shape (bt frozen) for the bta
        // phase, which provably writes bt.
        let shape = schema.shape_eta_phase();
        let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
        let mut plans = PhasePlans::new();
        plans.insert_with_shape("bta", shape, plan);
        let report = audit_phase_patterns(&plans, &fps, heap.registry());
        assert!(report.has_errors(), "{}", report.render());
        let under: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::UnderDeclaredPattern)
            .collect();
        assert_eq!(under.len(), 1);
        assert!(under[0].message.contains("binding-time"), "{}", under[0]);
        // The same seeding also over-declares et (modifiable but unwritten
        // during bta).
        assert!(report.count(Severity::PerfLint) >= 1);
    }

    #[test]
    fn over_declared_phase_is_a_quantified_perf_lint() {
        use ickp_spec::Specializer;
        let (heap, schema) = schema_heap();
        // No dynamic globals: bta provably writes nothing.
        let p = parse("int s; void main() { s = 1; }").unwrap();
        let fps = engine_footprints(&p, &division(&[])).unwrap();
        let shape = schema.shape_bta_phase();
        let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
        let mut plans = PhasePlans::new();
        plans.insert_with_shape("bta", shape, plan);
        let report = audit_phase_patterns(&plans, &fps, heap.registry());
        assert!(!report.has_errors(), "{}", report.render());
        let lints: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::OverDeclaredPattern)
            .collect();
        assert_eq!(lints.len(), 1, "{}", report.render());
        // BTEntry (int 4 + ref 8) and BT (int 4), each with a 15-byte
        // header: 27 + 19 = 46 dead bytes per checkpoint.
        assert!(lints[0].message.contains("~46 bytes"), "{}", lints[0]);
    }
}
