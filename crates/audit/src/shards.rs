//! The shard-interference pass: a static race detector for the parallel
//! checkpoint engine.
//!
//! The parallel engine (`ickp_core::Checkpointer::checkpoint_parallel`) is
//! byte-identical to the sequential driver only because its shard plan has
//! three properties, which until now were *assumed*, not proved per-plan:
//!
//! * **disjointness** — no object is emitted by two shards (otherwise the
//!   shard workers race on the same record and the stream duplicates it);
//! * **completeness** — the union of shard footprints is exactly the
//!   sequential coverage (otherwise the merged stream drops or invents
//!   records);
//! * **deterministic ownership** — every DAG-shared object resolves to
//!   the first-touch owner predicted from root order, so concatenating
//!   shard bodies in shard order reproduces the sequential pre-order.
//!
//! [`audit_shards`] proves all three by abstract interpretation: it
//! replays each shard's traversal over the live heap — same stack
//! discipline, same pruning rule as the real worker, but recording only a
//! footprint — and reconciles the footprints against the sequential
//! coverage ([`ickp_heap::reachable_from`]) and an independently computed
//! first-touch prediction ([`ickp_heap::first_touch_plan`]). Violations
//! carry the stable codes `AUD201`–`AUD204`; a statically estimated
//! byte-imbalance across shards is the perf lint `AUD205`.
//!
//! [`cross_validate_shards`] backs the static verdicts dynamically: it
//! runs the traced parallel engine on a scratch clone and asserts the
//! observed per-shard access sets are contained in the static footprints
//! with no cross-shard overlap — the same probe the `sanitize` feature of
//! `ickp-backend` ships to production builds.

use crate::diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};
use crate::soundness::RECORD_HEADER_BYTES;
use ickp_core::{
    plan_shards, CheckpointConfig, Checkpointer, CoreError, MethodTable, ShardBalance,
};
use ickp_heap::{first_touch_plan, reachable_from, Heap, HeapError, ObjectId, ShardPlan, Value};
use std::collections::{HashMap, HashSet};

/// At most this many per-object diagnostics are emitted per code; the
/// remainder collapse into one summary diagnostic so a badly stale plan
/// over a large heap stays readable.
const MAX_PER_CODE: usize = 8;

/// A shard decomposition as the audit sees it: who starts where, and who
/// claims what.
///
/// [`ShardPlan`] implements this with its dense owner map. The trait
/// exists because a *sound* plan cannot even represent the failure modes
/// the audit must detect — an overlapping claim, a stale owner — so
/// injection tests (and any alternative partitioner) provide their own
/// implementation.
pub trait ShardSpec {
    /// Number of shards in the decomposition.
    fn num_shards(&self) -> usize;
    /// The roots shard `shard` starts its traversal from.
    fn shard_roots(&self, shard: usize) -> &[ObjectId];
    /// Whether `shard` claims `id`: the worker's pruning predicate.
    fn owns(&self, shard: usize, id: ObjectId) -> bool;
}

impl ShardSpec for ShardPlan {
    fn num_shards(&self) -> usize {
        ShardPlan::num_shards(self)
    }

    fn shard_roots(&self, shard: usize) -> &[ObjectId] {
        self.roots(shard)
    }

    fn owns(&self, shard: usize, id: ObjectId) -> bool {
        ShardPlan::owns(self, shard, id)
    }
}

/// The static footprint of one shard: everything its worker may emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFootprint {
    /// The shard index.
    pub shard: usize,
    /// Objects the shard emits, in emit (depth-first pre-) order.
    pub objects: Vec<ObjectId>,
    /// Total field slots across the emitted objects.
    pub fields: u64,
    /// Statically estimated record bytes for a *full* checkpoint of this
    /// shard: per object, the fixed record header plus the class's
    /// encoded state size. For full checkpoints this estimate is exact
    /// (see the byte-equality test against measured per-shard stats).
    pub est_record_bytes: u64,
}

/// Tunables for [`audit_shards_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardAuditConfig {
    /// `AUD205` fires when the heaviest shard's estimated bytes exceed
    /// this multiple of the mean (with at least two shards in play).
    pub imbalance_threshold: f64,
}

impl Default for ShardAuditConfig {
    fn default() -> ShardAuditConfig {
        ShardAuditConfig { imbalance_threshold: 2.0 }
    }
}

/// What [`audit_shards`] established: the per-shard footprints plus the
/// findings of the interference checks.
#[derive(Debug, Clone)]
pub struct ShardAudit {
    /// One footprint per shard, in shard order.
    pub footprints: Vec<ShardFootprint>,
    /// Interference findings; [`AuditReport::has_errors`] is the gate.
    pub report: AuditReport,
}

impl ShardAudit {
    /// Heaviest-to-lightest ratio of the statically estimated per-shard
    /// record bytes — the load-balance figure the `repro shards`
    /// imbalance gate thresholds on. `1.0` with fewer than two shards;
    /// infinite when some shard's estimate is zero while another's is
    /// not (a degenerate split no threshold should accept).
    pub fn byte_imbalance(&self) -> f64 {
        if self.footprints.len() < 2 {
            return 1.0;
        }
        let heaviest = self.footprints.iter().map(|f| f.est_record_bytes).max().unwrap_or(0);
        let lightest = self.footprints.iter().map(|f| f.est_record_bytes).min().unwrap_or(0);
        if lightest == 0 {
            if heaviest == 0 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        heaviest as f64 / lightest as f64
    }
}

/// Computes the static footprint of every shard of `spec` by abstract
/// interpretation over the live heap.
///
/// Each shard is replayed with exactly the worker's traversal: a
/// depth-first walk from the shard's roots that prunes at any object the
/// shard does not own and at revisits. What remains is the set of objects
/// the worker will emit, in the order it will emit them.
///
/// # Errors
///
/// Propagates [`HeapError`] for dangling roots or references.
pub fn shard_footprints<S: ShardSpec + ?Sized>(
    heap: &Heap,
    spec: &S,
) -> Result<Vec<ShardFootprint>, HeapError> {
    let mut footprints = Vec::with_capacity(spec.num_shards());
    for shard in 0..spec.num_shards() {
        let mut objects = Vec::new();
        let mut fields = 0u64;
        let mut est_record_bytes = 0u64;
        let mut seen: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = spec.shard_roots(shard).iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if !spec.owns(shard, id) || !seen.insert(id) {
                continue;
            }
            objects.push(id);
            let def = heap.class(heap.class_of(id)?)?;
            fields += def.num_slots() as u64;
            est_record_bytes += (RECORD_HEADER_BYTES + def.encoded_state_size()) as u64;
            let object = heap.object(id)?;
            for value in object.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    stack.push(*child);
                }
            }
        }
        footprints.push(ShardFootprint { shard, objects, fields, est_record_bytes });
    }
    Ok(footprints)
}

/// Audits a shard decomposition against the sequential engine it must be
/// byte-identical to, with the default [`ShardAuditConfig`].
///
/// `roots` is the authoritative root order the checkpoint will be taken
/// over — the audit detects a `spec` whose chunks are stale relative to
/// it (`AUD204`), which is exactly the "trusted declaration gone stale"
/// failure the paper warns about, transplanted to the parallel engine.
///
/// # Errors
///
/// Propagates [`HeapError`] for dangling roots or references.
pub fn audit_shards<S: ShardSpec + ?Sized>(
    heap: &Heap,
    roots: &[ObjectId],
    spec: &S,
) -> Result<ShardAudit, HeapError> {
    audit_shards_with(heap, roots, spec, ShardAuditConfig::default())
}

/// [`audit_shards`] with explicit tunables.
///
/// # Errors
///
/// Propagates [`HeapError`] for dangling roots or references.
pub fn audit_shards_with<S: ShardSpec + ?Sized>(
    heap: &Heap,
    roots: &[ObjectId],
    spec: &S,
    config: ShardAuditConfig,
) -> Result<ShardAudit, HeapError> {
    let footprints = shard_footprints(heap, spec)?;
    let mut report = AuditReport::new();

    // (a) Pairwise disjointness: no object in two shards' emit sets.
    let mut emitted_by: HashMap<ObjectId, usize> = HashMap::new();
    let mut overlaps = 0usize;
    for footprint in &footprints {
        for &id in &footprint.objects {
            if let Some(&first) = emitted_by.get(&id) {
                overlaps += 1;
                if overlaps <= MAX_PER_CODE {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::ShardOverlap,
                        Location::Shard(footprint.shard),
                        format!(
                            "object {} is emitted by both shard {first} and shard {}: \
                             a data race under parallel execution",
                            fmt_obj(heap, id),
                            footprint.shard
                        ),
                    ));
                }
            } else {
                emitted_by.insert(id, footprint.shard);
            }
        }
    }
    push_summary(&mut report, overlaps, DiagCode::ShardOverlap, "overlapping object(s)");

    // (b) Completeness: union of footprints == sequential coverage.
    let sequential = reachable_from(heap, roots)?;
    let coverage: HashSet<ObjectId> = sequential.iter().copied().collect();
    let mut missing = 0usize;
    for &id in &sequential {
        if !emitted_by.contains_key(&id) {
            missing += 1;
            if missing <= MAX_PER_CODE {
                report.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::ShardMissingCoverage,
                    Location::General,
                    format!(
                        "object {} is sequentially reachable but no shard emits it: \
                         the merged stream drops its record",
                        fmt_obj(heap, id)
                    ),
                ));
            }
        }
    }
    push_summary(&mut report, missing, DiagCode::ShardMissingCoverage, "dropped object(s)");
    let mut extra = 0usize;
    for footprint in &footprints {
        for &id in &footprint.objects {
            if !coverage.contains(&id) {
                extra += 1;
                if extra <= MAX_PER_CODE {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::ShardDoubleEmit,
                        Location::Shard(footprint.shard),
                        format!(
                            "shard {} emits object {} which the sequential coverage \
                             never records",
                            footprint.shard,
                            fmt_obj(heap, id)
                        ),
                    ));
                }
            }
        }
    }
    push_summary(&mut report, extra, DiagCode::ShardDoubleEmit, "extra object(s)");

    // (c) Deterministic ownership. A spec can fail this three ways, each
    // breaking the byte-identical merge: its chunks are stale relative to
    // the authoritative root order; an object's emitting shard is not the
    // first-touch owner the root order predicts; or a shard emits its
    // objects out of pre-order.
    let chunks: Vec<Vec<ObjectId>> =
        (0..spec.num_shards()).map(|s| spec.shard_roots(s).to_vec()).collect();
    if chunks.concat() != roots {
        report.push(
            Diagnostic::new(
                Severity::Error,
                DiagCode::ShardOwnershipMismatch,
                Location::General,
                "the plan's root chunks are stale: concatenated in shard order they \
                 differ from the checkpoint's root order",
            )
            .with_suggestion("recompute the shard plan from the current root set"),
        );
    } else {
        let predicted = first_touch_plan(heap, chunks)?;
        let mut disagreements = 0usize;
        for footprint in &footprints {
            for &id in &footprint.objects {
                let want = predicted.owner_of(id);
                if want != Some(footprint.shard as u32) {
                    disagreements += 1;
                    if disagreements <= MAX_PER_CODE {
                        report.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::ShardOwnershipMismatch,
                            Location::Shard(footprint.shard),
                            match want {
                                Some(owner) => format!(
                                    "object {} is emitted by shard {} but first-touch \
                                     order makes shard {owner} its owner",
                                    fmt_obj(heap, id),
                                    footprint.shard
                                ),
                                None => format!(
                                    "object {} is emitted by shard {} but is not \
                                     first-touch reachable from the plan's roots",
                                    fmt_obj(heap, id),
                                    footprint.shard
                                ),
                            },
                        ));
                    }
                }
            }
        }
        push_summary(
            &mut report,
            disagreements,
            DiagCode::ShardOwnershipMismatch,
            "ownership disagreement(s)",
        );
        // With disjoint, complete, owner-consistent footprints the merge
        // is byte-identical iff the concatenation is the sequential
        // pre-order. Only worth stating when nothing above fired.
        if !report.has_errors() {
            let merged: Vec<ObjectId> =
                footprints.iter().flat_map(|f| f.objects.iter().copied()).collect();
            if merged != sequential {
                report.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::ShardOwnershipMismatch,
                    Location::General,
                    "concatenated shard emit orders diverge from the sequential \
                     pre-order: the merged stream is not byte-identical",
                ));
            }
        }
    }

    // Perf lint: estimated byte imbalance across shards.
    if footprints.len() > 1 {
        let total: u64 = footprints.iter().map(|f| f.est_record_bytes).sum();
        let mean = total as f64 / footprints.len() as f64;
        if let Some(heaviest) = footprints.iter().max_by_key(|f| f.est_record_bytes) {
            if mean > 0.0 && heaviest.est_record_bytes as f64 > config.imbalance_threshold * mean {
                report.push(
                    Diagnostic::new(
                        Severity::PerfLint,
                        DiagCode::ShardImbalance,
                        Location::Shard(heaviest.shard),
                        format!(
                            "shard {} carries an estimated {} record bytes, more than \
                             {}x the {:.0}-byte mean: the parallel speedup is bounded \
                             by this straggler",
                            heaviest.shard,
                            heaviest.est_record_bytes,
                            config.imbalance_threshold,
                            mean
                        ),
                    )
                    .with_suggestion("re-chunk the roots so subtree sizes even out"),
                );
            }
        }
    }

    Ok(ShardAudit { footprints, report })
}

/// What the dynamic shard cross-validator observed.
#[derive(Debug, Clone, Default)]
pub struct ShardOracleReport {
    /// Shards in the static plan.
    pub static_shards: usize,
    /// Shards the traced engine actually ran.
    pub observed_shards: usize,
    /// Objects each shard was observed to visit, in shard order.
    pub observed: Vec<usize>,
    /// `(shard, object)` pairs visited outside the shard's static
    /// footprint (bugs: the sanitizer saw an access the analysis missed).
    pub escapes: Vec<(usize, ObjectId)>,
    /// Objects visited by more than one shard (races).
    pub overlaps: Vec<ObjectId>,
}

impl ShardOracleReport {
    /// `true` when observation and analysis agree: every shard ran, every
    /// access fell inside its static footprint, and no object was touched
    /// twice.
    pub fn is_consistent(&self) -> bool {
        self.static_shards == self.observed_shards
            && self.escapes.is_empty()
            && self.overlaps.is_empty()
    }
}

/// Runs the traced parallel engine on a scratch clone of `heap` and
/// asserts the observed per-shard access sets are contained in the static
/// footprints of the same plan, with no cross-shard overlap.
///
/// This is the debug cross-validator backing [`audit_shards`]: the static
/// pass claims each shard *may* touch exactly its footprint; the trace
/// shows what it *did* touch. `heap` itself is untouched (the full-kind
/// checkpoint runs on a clone).
///
/// # Errors
///
/// Propagates [`CoreError`] from planning or the traced checkpoint.
pub fn cross_validate_shards(
    heap: &Heap,
    roots: &[ObjectId],
    workers: usize,
) -> Result<ShardOracleReport, CoreError> {
    // Plan exactly as the engine will (same balance default, same
    // byte-weighting), so the static footprints describe the very shards
    // the traced run executes.
    let plan = plan_shards(heap, roots, workers, ShardBalance::default())?;
    let footprints = shard_footprints(heap, &plan)?;

    let mut scratch = heap.clone();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::full());
    let (_, trace) = ckp.checkpoint_parallel_traced(&mut scratch, &table, roots, workers)?;

    let mut report = ShardOracleReport {
        static_shards: footprints.len(),
        observed_shards: trace.shards.len(),
        ..ShardOracleReport::default()
    };
    let mut touched: HashMap<ObjectId, usize> = HashMap::new();
    for (shard, access) in trace.shards.iter().enumerate() {
        report.observed.push(access.visited.len());
        let footprint: HashSet<ObjectId> =
            footprints.get(shard).map(|f| f.objects.iter().copied().collect()).unwrap_or_default();
        for &id in &access.visited {
            if !footprint.contains(&id) {
                report.escapes.push((shard, id));
            }
            if let Some(&other) = touched.get(&id) {
                if other != shard {
                    report.overlaps.push(id);
                }
            } else {
                touched.insert(id, shard);
            }
        }
    }
    Ok(report)
}

/// Names an object by its stable id (what the checkpoint stream carries);
/// falls back to the arena handle for dangling ids.
fn fmt_obj(heap: &Heap, id: ObjectId) -> String {
    match heap.stable_id(id) {
        Ok(stable) => format!("#{}", stable.0),
        Err(_) => format!("{id:?}"),
    }
}

/// Collapses findings beyond the per-code cap into one summary line.
fn push_summary(report: &mut AuditReport, total: usize, code: DiagCode, noun: &str) {
    if total > MAX_PER_CODE {
        report.push(Diagnostic::new(
            Severity::Error,
            code,
            Location::General,
            format!("...and {} further {noun} suppressed", total - MAX_PER_CODE),
        ));
    }
}
