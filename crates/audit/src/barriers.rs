//! Barrier-coverage pass: statically prove the dirty-set journal sound.
//!
//! The journal fast path rests on three obligations every heap mutator
//! must honour (see `ickp_heap::MutationCatalog`): byte changes are
//! journaled, shape changes bump `structure_version`, and dirty state is
//! only cleared by the checkpoint protocol. This pass abstract-interprets
//! a mutation catalog against that protocol from two sides:
//!
//! * **declarations** — the registered [`DeclaredEffect`] bits must be
//!   internally consistent with the protocol (a mutator that declares
//!   byte changes must declare journaling, …);
//! * **probes** — each mutator's canonical probe runs on a scratch clone
//!   of the audited heap prepared at a clean epoch boundary, and the
//!   observed footprint (byte diffs, shape diffs, flag transitions,
//!   version/epoch deltas) must match what was declared.
//!
//! Under-declarations and protocol breaches are errors (`AUD301`,
//! `AUD302`, `AUD304`, `AUD306`); over-journaling and over-declaration
//! are lints (`AUD303`, `AUD305`). The dynamic half,
//! [`cross_validate_barriers`], replays randomized mutation sequences
//! through the same [`MutatorSpec`] trait and checks journal ⊇ ground
//! truth (byte-diff against a pre-op snapshot), version-bump exactness,
//! epoch discipline, and the O(1) live-dirty counter, step by step.

#![deny(missing_docs)]

use crate::diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};
use crate::soundness::RECORD_HEADER_BYTES;
use ickp_core::journal_dirty_set;
use ickp_heap::{
    reachable_from, DeclaredEffect, DirtyScope, Heap, HeapError, MutationCatalog, MutationProbe,
    MutatorDecl, ObjectId, Value, PUBLIC_MUTATORS,
};
use std::collections::HashMap;

/// Fixed salt for deterministic single-shot probes.
const PROBE_SALT: u64 = 0x1CEB_00DA;

/// A heap mutator as the barrier audit sees it: a name, a declared
/// checkpoint effect, and a way to run one representative invocation.
///
/// [`MutatorDecl`] (the real catalog's entries) implements this. The
/// trait exists because a *sound* heap cannot even express the failure
/// modes the audit must detect — a store that skips the journal, an
/// epoch cleared mid-mutation — so injection tests provide their own
/// broken implementations.
pub trait MutatorSpec {
    /// The mutator's name (matched against
    /// [`PUBLIC_MUTATORS`] for the exhaustiveness check).
    fn name(&self) -> &str;
    /// The declared footprint.
    fn effect(&self) -> DeclaredEffect;
    /// Applies one invocation to `heap`, picking operands from `probe`.
    fn apply(&self, heap: &mut Heap, probe: &MutationProbe<'_>) -> Result<(), HeapError>;
}

impl MutatorSpec for MutatorDecl {
    fn name(&self) -> &str {
        self.name
    }
    fn effect(&self) -> DeclaredEffect {
        self.effect
    }
    fn apply(&self, heap: &mut Heap, probe: &MutationProbe<'_>) -> Result<(), HeapError> {
        (self.apply)(heap, probe)
    }
}

/// The observed footprint of one mutator's probe run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierProbe {
    /// The mutator's name.
    pub name: String,
    /// Live-post objects whose encoded bytes changed (including fresh
    /// allocations, which the next checkpoint must record).
    pub bytes_changed: usize,
    /// Clean→dirty transitions among live-post objects.
    pub dirtied: usize,
    /// Byte-changed live objects that ended the probe *not* both modified
    /// and journaled — the under-journaling count behind `AUD301`.
    pub unjournaled_writes: usize,
    /// Whether the probe changed graph shape (membership or a reference
    /// slot).
    pub structure_changed: bool,
    /// Whether `structure_version` changed.
    pub version_bumped: bool,
    /// Dirty→clean transitions among objects live on both sides.
    pub cleared_dirty: usize,
    /// Whether the journal epoch advanced.
    pub epoch_advanced: bool,
    /// Whether every live object was modified after the probe (the
    /// `DirtyScope::AllLive` obligation).
    pub all_dirty_post: bool,
}

/// The result of [`audit_barriers`]: per-mutator observed footprints plus
/// the diagnostic report.
#[derive(Debug, Clone)]
pub struct BarrierAudit {
    /// Observed footprints, one per audited spec (empty if the heap had
    /// no reachable probe targets).
    pub probes: Vec<BarrierProbe>,
    /// The findings.
    pub report: AuditReport,
}

/// Audits the real heap catalog against the barrier protocol on `heap`.
///
/// Convenience wrapper over [`audit_barriers_with`] for the common case.
///
/// # Errors
///
/// Returns [`HeapError`] if `roots` dangle or a probe fails to apply —
/// harness failures, distinct from audit findings.
pub fn audit_barriers(
    heap: &Heap,
    roots: &[ObjectId],
    catalog: &MutationCatalog,
) -> Result<BarrierAudit, HeapError> {
    let specs: Vec<&dyn MutatorSpec> =
        catalog.entries().iter().map(|e| e as &dyn MutatorSpec).collect();
    audit_barriers_with(heap, roots, &specs)
}

/// Audits an arbitrary set of mutator specs against the barrier protocol.
///
/// Runs the declaration-consistency checks, one probe per spec on a fresh
/// scratch clone of `heap` (prepared at a clean epoch boundary, with a
/// pre-dirtied seed object and sacrificial garbage so every footprint is
/// demonstrable), and the `PUBLIC_MUTATORS` exhaustiveness check. Specs
/// with names outside the public-mutator list are allowed (client-defined
/// mutators audit fine); public mutators *missing* from `specs` are
/// `AUD306` errors.
///
/// # Errors
///
/// Returns [`HeapError`] if `roots` dangle or a probe fails to apply.
pub fn audit_barriers_with(
    heap: &Heap,
    roots: &[ObjectId],
    specs: &[&dyn MutatorSpec],
) -> Result<BarrierAudit, HeapError> {
    let mut report = AuditReport::new();
    let mut probes = Vec::new();

    // AUD303 quantification: what an all-identical-write epoch would cost
    // on *this* heap if every reachable object were re-journaled.
    let reachable = reachable_from(heap, roots)?;
    let mut wasted_bytes = 0usize;
    for &id in &reachable {
        let def = heap.class(heap.class_of(id)?)?;
        wasted_bytes += RECORD_HEADER_BYTES + def.encoded_state_size();
    }

    for spec in specs {
        let effect = spec.effect();
        let at = || Location::Mutator(spec.name().to_string());

        // --- Declaration-consistency checks -------------------------------
        if effect.bytes_may_change && !effect.journals_dirty && !effect.restore_exempt {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::BarrierUnjournaledWrite,
                    at(),
                    "declares that it can change encoded bytes but not that it journals \
                     the objects it dirties: incremental checkpoints would miss its writes",
                )
                .with_suggestion("route the store through the write barrier (`set_field`)"),
            );
        }
        if effect.structure_may_change && !effect.bumps_structure_version {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::BarrierMissedVersionBump,
                    at(),
                    "declares that it can change reachability or traversal order without \
                     bumping `structure_version`: a cached `JournalCache` would replay a \
                     stale pre-order",
                )
                .with_suggestion("bump the structure version on every shape change"),
            );
        }
        if (effect.clears_dirty || effect.clears_epoch) && !effect.checkpoint_protocol {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::BarrierEpochTamper,
                    at(),
                    "clears dirty flags or the journal epoch outside the checkpoint \
                     protocol: modifications recorded by no checkpoint would be marked clean",
                )
                .with_suggestion("only the record → reset → finish-epoch sequence may clear"),
            );
        }
        if effect.bytes_may_change && effect.journals_unchanged {
            report.push(Diagnostic::new(
                Severity::PerfLint,
                DiagCode::BarrierOverJournaling,
                at(),
                format!(
                    "journals byte-identical writes (unconditional barrier): an \
                     all-identical-write epoch over the {} reachable object(s) would \
                     re-encode ~{} byte(s) of unchanged state on the fast path",
                    reachable.len(),
                    wasted_bytes
                ),
            ));
        }

        // --- Probe-observed checks ----------------------------------------
        if reachable.is_empty() {
            continue; // nothing to probe against; declaration checks stand
        }
        let observed = run_probe(heap, roots, *spec)?;
        if observed.unjournaled_writes > 0 && !effect.restore_exempt {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::BarrierUnjournaledWrite,
                    at(),
                    format!(
                        "probe changed the bytes of {} object(s) that ended the operation \
                         unmodified or unjournaled: the journal fast path would miss them",
                        observed.unjournaled_writes
                    ),
                )
                .with_suggestion("route the store through the write barrier (`set_field`)"),
            );
        }
        if observed.structure_changed && !observed.version_bumped {
            report.push(Diagnostic::new(
                Severity::Error,
                DiagCode::BarrierMissedVersionBump,
                at(),
                "probe changed graph shape without a `structure_version` bump: cached \
                 traversal orders would go stale undetected",
            ));
        }
        if (observed.cleared_dirty > 0 || observed.epoch_advanced) && !effect.checkpoint_protocol {
            report.push(Diagnostic::new(
                Severity::Error,
                DiagCode::BarrierEpochTamper,
                at(),
                format!(
                    "probe cleared {} dirty flag(s){} outside the checkpoint protocol",
                    observed.cleared_dirty,
                    if observed.epoch_advanced { " and advanced the journal epoch" } else { "" }
                ),
            ));
        }
        if effect.bytes_may_change && observed.bytes_changed == 0 {
            report.push(over_declared(at(), "byte changes", "changed no object's bytes"));
        }
        if effect.structure_may_change && !observed.structure_changed {
            report.push(over_declared(at(), "shape changes", "changed no graph shape"));
        }
        if effect.dirties == DirtyScope::AllLive && !observed.all_dirty_post {
            report.push(over_declared(
                at(),
                "dirtying every live object",
                "left some live objects clean",
            ));
        }
        probes.push(observed);
    }

    // --- Exhaustiveness (AUD306) ------------------------------------------
    for &name in PUBLIC_MUTATORS {
        if !specs.iter().any(|s| s.name() == name) {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::BarrierUncataloged,
                    Location::Mutator(name.to_string()),
                    "public heap mutator is absent from the audited catalog: nothing \
                     proves its barrier obligations",
                )
                .with_suggestion("register it in `MutationCatalog::of_heap` with its effect"),
            );
        }
    }

    Ok(BarrierAudit { probes, report })
}

fn over_declared(at: Location, declared: &str, observed: &str) -> Diagnostic {
    Diagnostic::new(
        Severity::PerfLint,
        DiagCode::BarrierOverDeclaredEffect,
        at,
        format!(
            "declares {declared} but its probe {observed}: the declared effect is wider \
             than the demonstrated footprint"
        ),
    )
    .with_suggestion("narrow the `DeclaredEffect` (or widen the probe)")
}

/// One live object's captured state: fields plus barrier flags.
#[derive(Debug, Clone)]
struct ObjSnap {
    fields: Box<[Value]>,
    modified: bool,
    journaled: bool,
}

fn capture(heap: &Heap) -> HashMap<ObjectId, ObjSnap> {
    heap.iter_live()
        .map(|id| {
            let obj = heap.object(id).expect("iter_live yields live handles");
            (
                id,
                ObjSnap {
                    fields: obj.fields().to_vec().into_boxed_slice(),
                    modified: obj.info().modified(),
                    journaled: obj.info().journaled(),
                },
            )
        })
        .collect()
}

/// Bit-exact value equality (doubles compared by bits, so NaNs and signed
/// zeros diff exactly like the checkpoint stream does).
fn value_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn is_ref(v: Value) -> bool {
    matches!(v, Value::Ref(_))
}

/// Clones `heap`, prepares it at a clean epoch boundary with sacrificial
/// garbage and a pre-dirtied seed, and runs one probe of `spec`.
fn run_probe(
    heap: &Heap,
    roots: &[ObjectId],
    spec: &dyn MutatorSpec,
) -> Result<BarrierProbe, HeapError> {
    let mut scratch = heap.clone();
    // Sacrificial garbage: victims for `free`/`collect` probes, allocated
    // *before* the baseline reset so they start clean like everything else.
    let targets = reachable_from(&scratch, roots)?;
    let annex_class = scratch.class_of(targets[0])?;
    let garbage = vec![scratch.alloc(annex_class)?, scratch.alloc(annex_class)?];
    // Clean epoch boundary: exactly the state right after a checkpoint.
    scratch.reset_all_modified();
    scratch.finish_journal_epoch();
    // One pre-dirtied object so clearing probes have something to clear.
    let seed = targets.first().copied();
    if let Some(s) = seed {
        scratch.set_modified(s)?;
    }

    let pre = capture(&scratch);
    let pre_version = scratch.structure_version();
    let pre_epoch = scratch.journal_epoch();

    let probe =
        MutationProbe { roots, targets: &targets, garbage: &garbage, seed, salt: PROBE_SALT };
    spec.apply(&mut scratch, &probe)?;

    let post = capture(&scratch);
    let mut observed = BarrierProbe {
        name: spec.name().to_string(),
        bytes_changed: 0,
        dirtied: 0,
        unjournaled_writes: 0,
        structure_changed: false,
        version_bumped: scratch.structure_version() != pre_version,
        cleared_dirty: 0,
        epoch_advanced: scratch.journal_epoch() != pre_epoch,
        all_dirty_post: post.values().all(|s| s.modified),
    };
    for (id, snap) in &post {
        match pre.get(id) {
            None => {
                // Fresh object: the next checkpoint must record it.
                observed.bytes_changed += 1;
                observed.structure_changed = true;
                if snap.modified {
                    observed.dirtied += 1;
                }
                if !(snap.modified && snap.journaled) {
                    observed.unjournaled_writes += 1;
                }
            }
            Some(was) => {
                let changed =
                    !was.fields.iter().zip(snap.fields.iter()).all(|(&a, &b)| value_eq(a, b));
                let ref_changed = was
                    .fields
                    .iter()
                    .zip(snap.fields.iter())
                    .any(|(&a, &b)| is_ref(a) && !value_eq(a, b));
                if changed {
                    observed.bytes_changed += 1;
                    if !(snap.modified && snap.journaled) {
                        observed.unjournaled_writes += 1;
                    }
                }
                if ref_changed {
                    observed.structure_changed = true;
                }
                if !was.modified && snap.modified {
                    observed.dirtied += 1;
                }
                if was.modified && !snap.modified {
                    observed.cleared_dirty += 1;
                }
            }
        }
    }
    if pre.keys().any(|id| !post.contains_key(id)) {
        observed.structure_changed = true; // something was freed
    }
    Ok(observed)
}

/// The verdict of [`cross_validate_barriers`]: per-violation counters over
/// a randomized mutation sequence.
#[derive(Debug, Clone, Default)]
pub struct BarrierOracleReport {
    /// Steps requested.
    pub steps: usize,
    /// Mutations actually applied.
    pub ops_applied: usize,
    /// Byte-changed live objects left unmodified or unjournaled — journal
    /// ⊉ ground truth.
    pub under_journaled: usize,
    /// Traversal-order changes without a `structure_version` change.
    pub missed_version_bumps: usize,
    /// `structure_version` changes with an unchanged traversal order
    /// (allowed — the version is conservative — but counted).
    pub conservative_bumps: usize,
    /// Dirty flags cleared or epochs advanced by non-protocol operations.
    pub epoch_violations: usize,
    /// Steps where `Heap::live_dirty` disagreed with a ground-truth scan.
    pub counter_mismatches: usize,
    /// Checkpoint-protocol windows closed during the run.
    pub windows_closed: usize,
    /// Human-readable renderings of the first few violations.
    pub violations: Vec<String>,
}

impl BarrierOracleReport {
    /// `true` if the dynamic run confirms the protocol: no soundness
    /// violation of any kind (conservative version bumps are fine).
    pub fn is_consistent(&self) -> bool {
        self.under_journaled == 0
            && self.missed_version_bumps == 0
            && self.epoch_violations == 0
            && self.counter_mismatches == 0
    }

    /// Renders the verdict as one line.
    pub fn render(&self) -> String {
        format!(
            "{} op(s)/{} step(s), {} window(s): {} under-journaled, {} missed bump(s) \
             ({} conservative), {} epoch violation(s), {} counter mismatch(es) => {}",
            self.ops_applied,
            self.steps,
            self.windows_closed,
            self.under_journaled,
            self.missed_version_bumps,
            self.conservative_bumps,
            self.epoch_violations,
            self.counter_mismatches,
            if self.is_consistent() { "consistent" } else { "INCONSISTENT" }
        )
    }

    fn violation(&mut self, step: usize, name: &str, what: String) {
        if self.violations.len() < 8 {
            self.violations.push(format!("step {step} ({name}): {what}"));
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Dynamic half of the barrier audit: replays `steps` randomized
/// mutations (drawn from `specs`, restore-path ops excluded) on a scratch
/// clone of `heap`, and checks after every step that
///
/// * **journal ⊇ truth** — every live object whose bytes differ from the
///   pre-op snapshot is modified *and* journaled;
/// * **version-bump exactness** — any change of the depth-first traversal
///   order comes with a `structure_version` change (extra conservative
///   bumps are counted, not flagged);
/// * **epoch discipline** — dirty flags and the epoch only move under
///   checkpoint-protocol ops;
/// * **the live-dirty counter** — [`Heap::live_dirty`] equals a
///   ground-truth scan of modified live objects.
///
/// Every eight steps the checkpoint protocol closes the epoch window the
/// way a real checkpointer does (reset recorded flags, finish the epoch),
/// so epoch transitions are exercised too.
///
/// # Errors
///
/// Returns [`HeapError`] only for harness failures (dangling roots, a
/// probe that errors); protocol violations go in the report.
pub fn cross_validate_barriers(
    heap: &Heap,
    roots: &[ObjectId],
    specs: &[&dyn MutatorSpec],
    steps: usize,
    seed: u64,
) -> Result<BarrierOracleReport, HeapError> {
    let ops: Vec<&dyn MutatorSpec> =
        specs.iter().copied().filter(|s| !s.effect().restore_exempt).collect();
    let mut report = BarrierOracleReport { steps, ..BarrierOracleReport::default() };
    if ops.is_empty() {
        return Ok(report);
    }
    let mut scratch = heap.clone();
    let mut rng = seed ^ 0xA5A5_5A5A_C3C3_3C3C;

    for step in 0..steps {
        let pre = capture(&scratch);
        let pre_order = reachable_from(&scratch, roots)?;
        let pre_version = scratch.structure_version();
        let pre_epoch = scratch.journal_epoch();
        if pre_order.is_empty() {
            break; // the graph mutated itself empty; nothing left to validate
        }

        let spec = ops[(splitmix(&mut rng) as usize) % ops.len()];
        let effect = spec.effect();

        // Randomize operand choice by rotating the deterministic pickers'
        // preference order.
        let rot = (splitmix(&mut rng) as usize) % pre_order.len();
        let mut targets = Vec::with_capacity(pre_order.len());
        targets.extend_from_slice(&pre_order[rot..]);
        targets.extend_from_slice(&pre_order[..rot]);
        let reachable_now: std::collections::HashSet<ObjectId> =
            pre_order.iter().copied().collect();
        let garbage: Vec<ObjectId> =
            scratch.iter_live().filter(|id| !reachable_now.contains(id)).collect();
        let dirty_seed = scratch.iter_live().find(|&id| scratch.is_modified(id).unwrap_or(false));
        let probe = MutationProbe {
            roots,
            targets: &targets,
            garbage: &garbage,
            seed: dirty_seed,
            salt: splitmix(&mut rng) | 1,
        };
        spec.apply(&mut scratch, &probe)?;
        report.ops_applied += 1;

        let post = capture(&scratch);
        let post_order = reachable_from(&scratch, roots)?;

        // Journal ⊇ truth: byte diffs must be flagged and journaled.
        for (id, snap) in &post {
            let changed = match pre.get(id) {
                None => true,
                Some(was) => {
                    !was.fields.iter().zip(snap.fields.iter()).all(|(&a, &b)| value_eq(a, b))
                }
            };
            if changed && !(snap.modified && snap.journaled) {
                report.under_journaled += 1;
                report.violation(step, spec.name(), "byte change left unjournaled".into());
            }
            if snap.modified && !snap.journaled {
                report.under_journaled += 1;
                report.violation(step, spec.name(), "modified object missing from journal".into());
            }
        }

        // Version-bump exactness.
        let order_changed = pre_order != post_order;
        let version_changed = scratch.structure_version() != pre_version;
        if order_changed && !version_changed {
            report.missed_version_bumps += 1;
            report.violation(step, spec.name(), "traversal order changed, version did not".into());
        }
        if !order_changed && version_changed {
            report.conservative_bumps += 1;
        }

        // Epoch discipline.
        let epoch_moved = scratch.journal_epoch() != pre_epoch;
        let cleared = post.iter().any(|(id, snap)| {
            !snap.modified && pre.get(id).map(|was| was.modified).unwrap_or(false)
        });
        if (epoch_moved || cleared) && !effect.checkpoint_protocol {
            report.epoch_violations += 1;
            report.violation(step, spec.name(), "dirty state cleared outside protocol".into());
        }

        // The O(1) counter vs a ground-truth scan.
        let truth_dirty = post.values().filter(|s| s.modified).count();
        if scratch.live_dirty() != truth_dirty || scratch.journal_has_dirty() != (truth_dirty > 0) {
            report.counter_mismatches += 1;
            report.violation(
                step,
                spec.name(),
                format!("live_dirty {} != ground truth {truth_dirty}", scratch.live_dirty()),
            );
        }

        // Close the epoch window the way a checkpointer does.
        if step % 8 == 7 {
            let recorded: Vec<ObjectId> = journal_dirty_set(&scratch)
                .into_iter()
                .filter(|id| post_order.contains(id))
                .collect();
            for id in recorded {
                scratch.reset_modified(id)?;
            }
            scratch.finish_journal_epoch();
            report.windows_closed += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType};

    fn world() -> (Heap, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("w", FieldType::Double), ("next", FieldType::Ref(None))],
            )
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut next = None;
        let mut head = None;
        for i in 0..6 {
            let id = heap.alloc(node).unwrap();
            heap.set_field(id, 0, Value::Int(i)).unwrap();
            heap.set_field(id, 2, Value::Ref(next)).unwrap();
            next = Some(id);
            head = Some(id);
        }
        (heap, vec![head.unwrap()])
    }

    #[test]
    fn the_real_catalog_audits_clean() {
        let (heap, roots) = world();
        let audit = audit_barriers(&heap, &roots, &MutationCatalog::of_heap()).unwrap();
        assert!(!audit.report.has_errors(), "{}", audit.report.render());
        assert_eq!(audit.probes.len(), PUBLIC_MUTATORS.len());
        // The unconditional barrier is linted, quantified, and that is all.
        assert!(audit
            .report
            .diagnostics()
            .iter()
            .all(|d| d.code == DiagCode::BarrierOverJournaling));
        assert!(audit.report.count(Severity::PerfLint) >= 2, "set_field + set_field_named");
    }

    #[test]
    fn a_pruned_catalog_trips_aud306_and_nothing_else_new() {
        let (heap, roots) = world();
        let pruned = MutationCatalog::of_heap().without("set_modified");
        let audit = audit_barriers(&heap, &roots, &pruned).unwrap();
        assert!(audit.report.has_errors());
        let offenders: Vec<_> =
            audit.report.diagnostics().iter().filter(|d| d.severity == Severity::Error).collect();
        assert_eq!(offenders.len(), 1);
        assert_eq!(offenders[0].code, DiagCode::BarrierUncataloged);
        assert_eq!(offenders[0].location, Location::Mutator("set_modified".into()));
    }

    #[test]
    fn cross_validation_confirms_the_real_catalog() {
        let (heap, roots) = world();
        let catalog = MutationCatalog::of_heap();
        let specs: Vec<&dyn MutatorSpec> =
            catalog.entries().iter().map(|e| e as &dyn MutatorSpec).collect();
        let report = cross_validate_barriers(&heap, &roots, &specs, 64, 0xFEED).unwrap();
        assert!(report.is_consistent(), "{}", report.render());
        assert!(report.ops_applied > 0);
        assert!(report.windows_closed > 0, "epoch transitions must be exercised");
    }
}
