//! The plan verifier: proves a compiled [`Plan`] sound against the
//! [`SpecShape`] it claims to implement.
//!
//! Four passes, each feeding structured diagnostics into an
//! [`AuditReport`]:
//!
//! 1. **Structural** — register indices inside the register file, record
//!    template indices in bounds, template layouts matching the class
//!    registry, skip targets inside the plan, and the `has_dynamic` flag
//!    agreeing with the instruction stream. Violations here are executor
//!    panics or stream corruption waiting to happen, so later passes only
//!    run on structurally sound plans.
//! 2. **Must-defined dataflow** — an edge-sensitive forward analysis over
//!    the plan's (acyclic, forward-skip) control flow proving every
//!    register read is dominated by a definition on *every* path.
//!    `LoadDyn` defines its destination only on the non-null fallthrough
//!    edge — the subtlety that makes edge-sensitivity necessary.
//! 3. **Clobber** — no conditionally-executed instruction may redefine a
//!    register that is live across its skip region (the two executions of
//!    the region's tail would then see different objects).
//! 4. **Coverage equivalence** — symbolic execution of the plan along the
//!    maximal path (every flag dirty, every dynamic edge non-null),
//!    tracking the shape-path each register holds, and comparison of the
//!    resulting event stream against [`expected_events`]. Record-level
//!    divergence (missing, extra, or reordered records; misplaced guards)
//!    is an error — the checkpoint stream would be wrong; visit-level
//!    divergence is a warning — the stream is right but the traversal is
//!    not the one the compiler would emit.

use crate::coverage::{expected_events, fmt_path, Event, Path, Step};
use crate::diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};
use ickp_heap::{ClassId, ClassRegistry};
use ickp_spec::{Op, Plan, SpecShape};

/// Verifies `plan` against the declaration it was (claimed to be)
/// compiled from. See the module docs for the pass pipeline.
pub fn verify_plan(plan: &Plan, shape: &SpecShape, registry: &ClassRegistry) -> AuditReport {
    let mut diags: Vec<Diagnostic> = Vec::new();

    if let Err(e) = shape.validate(registry) {
        diags.push(Diagnostic::new(
            Severity::Error,
            DiagCode::InvalidShape,
            Location::General,
            format!("declaration fails validation: {e}"),
        ));
        return AuditReport::from_diagnostics(diags);
    }

    structural(plan, registry, &mut diags);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return AuditReport::from_diagnostics(diags);
    }

    let ins = must_defined(plan, &mut diags);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return AuditReport::from_diagnostics(diags);
    }

    clobber(plan, &ins, &mut diags);

    let before = diags.len();
    let actual = symbolic_exec(plan, shape, registry, &mut diags);
    let nav_errors = diags[before..].iter().any(|d| d.severity == Severity::Error);
    if !nav_errors {
        // Navigation agreed with the declaration; now the streams must too.
        compare_events(&expected_events(shape), &actual, &mut diags);
    }

    AuditReport::from_diagnostics(diags)
}

fn class_name(registry: &ClassRegistry, id: ClassId) -> String {
    registry.class(id).map(|d| d.name().to_string()).unwrap_or_else(|_| id.to_string())
}

// ------------------------------------------------------------- structural

fn structural(plan: &Plan, registry: &ClassRegistry, diags: &mut Vec<Diagnostic>) {
    let n = plan.ops().len();
    let num_regs = plan.num_regs();
    let mut has_generic = false;

    let check_reg = |r: u32, pc: usize, diags: &mut Vec<Diagnostic>| {
        if r >= num_regs {
            diags.push(Diagnostic::new(
                Severity::Error,
                DiagCode::RegisterOutOfRange,
                Location::PlanOp(pc),
                format!("register r{r} outside the plan's register file of {num_regs}"),
            ));
        }
    };
    let check_skip = |skip: u32, pc: usize, diags: &mut Vec<Diagnostic>| {
        if pc + 1 + skip as usize > n {
            diags.push(Diagnostic::new(
                Severity::Warning,
                DiagCode::SkipPastEnd,
                Location::PlanOp(pc),
                format!("skip of {skip} jumps past the end of the {n}-op plan"),
            ));
        }
    };

    for (pc, op) in plan.ops().iter().enumerate() {
        match op {
            Op::LoadRoot { dst, .. } => check_reg(*dst, pc, diags),
            Op::LoadRef { dst, src, .. } => {
                check_reg(*dst, pc, diags);
                check_reg(*src, pc, diags);
            }
            Op::LoadDyn { dst, src, skip, .. } => {
                check_reg(*dst, pc, diags);
                check_reg(*src, pc, diags);
                check_skip(*skip, pc, diags);
            }
            Op::TestModified { obj, skip } => {
                check_reg(*obj, pc, diags);
                check_skip(*skip, pc, diags);
            }
            Op::Record { obj, template } => {
                check_reg(*obj, pc, diags);
                if *template as usize >= plan.templates().len() {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::TemplateOutOfRange,
                        Location::PlanOp(pc),
                        format!(
                            "record template {template} out of bounds ({} templates)",
                            plan.templates().len()
                        ),
                    ));
                }
            }
            Op::Generic { obj } => {
                check_reg(*obj, pc, diags);
                has_generic = true;
            }
            Op::GuardListEnd { obj, .. } => check_reg(*obj, pc, diags),
        }
    }

    if has_generic && !plan.has_dynamic() {
        diags.push(Diagnostic::new(
            Severity::Error,
            DiagCode::DynamicFlagMismatch,
            Location::General,
            "plan contains a generic fallback but has_dynamic is false: executing it \
             without a method table panics",
        ));
    } else if !has_generic && plan.has_dynamic() {
        diags.push(Diagnostic::new(
            Severity::Warning,
            DiagCode::DynamicFlagMismatch,
            Location::General,
            "has_dynamic is set but no instruction uses the generic fallback",
        ));
    }

    for (i, t) in plan.templates().iter().enumerate() {
        match registry.class(t.class()) {
            Err(e) => diags.push(Diagnostic::new(
                Severity::Error,
                DiagCode::TemplateLayoutMismatch,
                Location::General,
                format!("record template {i} names an unknown class: {e}"),
            )),
            Ok(def) => {
                let layout: Vec<_> = def.layout().iter().map(|f| f.ty()).collect();
                if layout != t.kinds() {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::TemplateLayoutMismatch,
                        Location::General,
                        format!(
                            "record template {i} disagrees with the layout of {}: \
                             records would fail or write wrong field kinds",
                            def.name()
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------- must-defined dataflow

fn defined_reg(op: &Op) -> Option<u32> {
    match op {
        Op::LoadRoot { dst, .. } | Op::LoadRef { dst, .. } | Op::LoadDyn { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn used_regs(op: &Op) -> Vec<u32> {
    match op {
        Op::LoadRoot { .. } => vec![],
        Op::LoadRef { src, .. } | Op::LoadDyn { src, .. } => vec![*src],
        Op::TestModified { obj, .. }
        | Op::Record { obj, .. }
        | Op::Generic { obj }
        | Op::GuardListEnd { obj, .. } => vec![*obj],
    }
}

/// Forward must-defined analysis. All skips jump forward, so one pass in
/// instruction order reaches the fixpoint: a program point's in-set is the
/// intersection of the out-sets of every incoming edge. Returns the in-set
/// per instruction for reuse by the clobber pass.
fn must_defined(plan: &Plan, diags: &mut Vec<Diagnostic>) -> Vec<Vec<bool>> {
    let ops = plan.ops();
    let n = ops.len();
    let nregs = plan.num_regs() as usize;
    // `ins[pc]` = registers definitely defined on entry; None = no edge
    // reaches pc yet. Entry starts with nothing defined.
    let mut ins: Vec<Option<Vec<bool>>> = vec![None; n + 1];
    ins[0] = Some(vec![false; nregs]);

    let merge = |slot: &mut Option<Vec<bool>>, incoming: &[bool]| match slot {
        None => *slot = Some(incoming.to_vec()),
        Some(cur) => {
            for (c, i) in cur.iter_mut().zip(incoming) {
                *c = *c && *i;
            }
        }
    };

    for pc in 0..n {
        let at = match ins[pc].clone() {
            Some(s) => s,
            None => continue, // unreachable instruction
        };
        for r in used_regs(&ops[pc]) {
            if !at[r as usize] {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::UseBeforeDef,
                    Location::PlanOp(pc),
                    format!(
                        "register r{r} is read but not defined on every path reaching this \
                         instruction"
                    ),
                ));
            }
        }
        let mut fall = at.clone();
        if let Some(d) = defined_reg(&ops[pc]) {
            // LoadDyn defines dst only on the non-null fallthrough edge;
            // LoadRoot/LoadRef have no other edge, so this is uniform.
            fall[d as usize] = true;
        }
        merge(&mut ins[pc + 1], &fall);
        match &ops[pc] {
            Op::TestModified { skip, .. } | Op::LoadDyn { skip, .. } => {
                let target = (pc + 1 + *skip as usize).min(n);
                // The skip edge carries the *pre-definition* state.
                merge(&mut ins[target], &at);
            }
            _ => {}
        }
    }

    (0..n).map(|pc| ins[pc].clone().unwrap_or_else(|| vec![false; nregs])).collect()
}

// --------------------------------------------------------------- clobber

/// Flags conditional redefinitions of live registers: an instruction
/// inside a skip region that redefines either (a) the region's tested
/// register while a later in-region instruction still reads it, or (b) a
/// register that was defined before the region and is read after it. In
/// both cases the two paths through the region disagree about which
/// object the register holds.
fn clobber(plan: &Plan, ins: &[Vec<bool>], diags: &mut Vec<Diagnostic>) {
    let ops = plan.ops();
    let n = ops.len();
    for (pc, op) in ops.iter().enumerate() {
        let (guard_reg, skip) = match op {
            Op::TestModified { obj, skip } => (Some(*obj), *skip),
            Op::LoadDyn { skip, .. } => (None, *skip),
            _ => continue,
        };
        let end = (pc + 1 + skip as usize).min(n);
        for q in pc + 1..end {
            let Some(d) = defined_reg(&ops[q]) else { continue };
            if Some(d) == guard_reg && (q + 1..end).any(|r| used_regs(&ops[r]).contains(&d)) {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::ClobberedLiveRegister,
                    Location::PlanOp(q),
                    format!(
                        "r{d} is the register tested at op {pc} but is redefined inside the \
                         guarded region before being read again"
                    ),
                ));
            }
            if ins[pc][d as usize] && (end..n).any(|r| used_regs(&ops[r]).contains(&d)) {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::ClobberedLiveRegister,
                    Location::PlanOp(q),
                    format!(
                        "r{d} is live across the skip region starting at op {pc} but is \
                         conditionally redefined inside it: the two paths disagree about \
                         its contents"
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------- symbolic execution

/// Where a register points within the declaration.
#[derive(Clone)]
enum NodeRef<'s> {
    /// An `Object` declaration node.
    Obj(&'s SpecShape),
    /// Element `pos` of a `List` declaration node.
    Elem {
        list: &'s SpecShape,
        pos: usize,
    },
    Dyn,
}

#[derive(Clone)]
struct SymVal<'s> {
    path: Path,
    node: NodeRef<'s>,
}

impl<'s> SymVal<'s> {
    fn class(&self) -> Option<ClassId> {
        match &self.node {
            NodeRef::Obj(s) | NodeRef::Elem { list: s, .. } => s.root_class(),
            NodeRef::Dyn => None,
        }
    }
}

/// Executes the plan along the maximal path — every modified-flag test
/// falls through (all dirty) and every *declared* dynamic edge is
/// non-null — while tracking the shape-path each register holds. Emits
/// the actual event stream; navigation that contradicts the declaration
/// becomes diagnostics.
fn symbolic_exec<'s>(
    plan: &Plan,
    shape: &'s SpecShape,
    registry: &ClassRegistry,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Event> {
    let ops = plan.ops();
    let n = ops.len();
    let mut regs: Vec<Option<SymVal<'s>>> = vec![None; plan.num_regs() as usize];
    let mut events = Vec::new();

    // Which instructions are dominated by a modified-flag test.
    let mut guarded = vec![false; n];
    for (pc, op) in ops.iter().enumerate() {
        if let Op::TestModified { skip, .. } = op {
            for g in guarded.iter_mut().take((pc + 1 + *skip as usize).min(n)).skip(pc + 1) {
                *g = true;
            }
        }
    }

    let mut pc = 0usize;
    while pc < n {
        match &ops[pc] {
            Op::LoadRoot { dst, class } => {
                let (node, path) = match shape {
                    SpecShape::Object { .. } => (NodeRef::Obj(shape), Vec::new()),
                    SpecShape::List { .. } => {
                        (NodeRef::Elem { list: shape, pos: 0 }, vec![Step::Elem(0)])
                    }
                    SpecShape::Dynamic => {
                        diags.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::InvalidShape,
                            Location::PlanOp(pc),
                            "a fully dynamic root has no specialized plan to verify against",
                        ));
                        return events;
                    }
                };
                if let Some(declared) = shape.root_class() {
                    if declared != *class {
                        diags.push(class_guard_diag(pc, registry, *class, declared, &[]));
                    }
                }
                events.push(Event::Visit(path.clone()));
                regs[*dst as usize] = Some(SymVal { path, node });
            }
            Op::LoadRef { dst, src, slot, class } => {
                let Some(srcv) = regs[*src as usize].clone() else {
                    return events; // dataflow already reported this
                };
                match follow_edge(&srcv, *slot as usize, pc, registry, *class, diags) {
                    Some(val) => {
                        events.push(Event::Visit(val.path.clone()));
                        regs[*dst as usize] = Some(val);
                    }
                    None => return events, // unrecoverable navigation error
                }
            }
            Op::LoadDyn { dst, src, slot, skip } => {
                let Some(srcv) = regs[*src as usize].clone() else {
                    return events;
                };
                match &srcv.node {
                    NodeRef::Obj(SpecShape::Object { children, .. }) => {
                        match children.iter().find(|(s, _)| *s == *slot as usize) {
                            Some((_, SpecShape::Dynamic)) => {
                                let path = joined(&srcv.path, Step::Child(*slot as usize));
                                regs[*dst as usize] = Some(SymVal { path, node: NodeRef::Dyn });
                            }
                            Some((_, child)) => {
                                diags.push(Diagnostic::new(
                                    Severity::Warning,
                                    DiagCode::DynamicLoadOnStaticEdge,
                                    Location::PlanOp(pc),
                                    format!(
                                        "dynamic load of slot {slot}, but the declaration gives \
                                         it a static shape: class guards are skipped here",
                                    ),
                                ));
                                let path = child_path(&srcv.path, *slot as usize, child);
                                events.push(Event::Visit(path.clone()));
                                regs[*dst as usize] =
                                    Some(SymVal { path, node: node_for_child(child) });
                            }
                            None => {
                                // Declared null: the maximal path consistent
                                // with the declaration takes the skip.
                                diags.push(Diagnostic::new(
                                    Severity::Warning,
                                    DiagCode::UndeclaredEdge,
                                    Location::PlanOp(pc),
                                    format!(
                                        "dynamic load of slot {slot}, which the declaration \
                                         assumes null: the fallback in its shadow never runs",
                                    ),
                                ));
                                pc += *skip as usize;
                            }
                        }
                    }
                    _ => {
                        diags.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::UndeclaredEdge,
                            Location::PlanOp(pc),
                            format!(
                                "dynamic load of slot {slot} from {}, which is not a declared \
                                 object node",
                                fmt_path(&srcv.path)
                            ),
                        ));
                        return events;
                    }
                }
            }
            Op::TestModified { .. } => {
                // Maximal path: the flag is dirty, fall through.
            }
            Op::Record { obj, template } => {
                let Some(objv) = regs[*obj as usize].clone() else {
                    return events;
                };
                let tclass = plan.templates()[*template as usize].class();
                match objv.class() {
                    Some(declared) if declared == tclass => {
                        events.push(Event::TestRecord { path: objv.path.clone(), class: declared });
                        if !guarded[pc] {
                            diags.push(Diagnostic::new(
                                Severity::Warning,
                                DiagCode::UnguardedRecord,
                                Location::PlanOp(pc),
                                format!(
                                    "{} is recorded without a modified-flag test: clean \
                                     objects would be re-recorded every checkpoint",
                                    fmt_path(&objv.path)
                                ),
                            ));
                        }
                    }
                    Some(declared) => {
                        diags.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::TemplateClassMismatch,
                            Location::PlanOp(pc),
                            format!(
                                "record template is for {} but the declaration puts a {} at {}",
                                class_name(registry, tclass),
                                class_name(registry, declared),
                                fmt_path(&objv.path)
                            ),
                        ));
                        return events;
                    }
                    None => {
                        diags.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::TemplateClassMismatch,
                            Location::PlanOp(pc),
                            format!(
                                "static record of {}, whose shape the declaration leaves \
                                 dynamic",
                                fmt_path(&objv.path)
                            ),
                        ));
                        return events;
                    }
                }
            }
            Op::Generic { obj } => {
                let Some(objv) = regs[*obj as usize].clone() else {
                    return events;
                };
                if !matches!(objv.node, NodeRef::Dyn) {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        DiagCode::DynamicLoadOnStaticEdge,
                        Location::PlanOp(pc),
                        format!(
                            "generic fallback over {}, which the declaration shapes \
                             statically: dispatch the specializer promised to remove",
                            fmt_path(&objv.path)
                        ),
                    ));
                }
                events.push(Event::Generic { path: objv.path.clone() });
            }
            Op::GuardListEnd { obj, slot } => {
                let Some(objv) = regs[*obj as usize].clone() else {
                    return events;
                };
                let ok = match &objv.node {
                    NodeRef::Elem { list: SpecShape::List { next_slot, len, .. }, pos } => {
                        *pos == len - 1 && *slot as usize == *next_slot
                    }
                    _ => false,
                };
                if ok {
                    events.push(Event::ListEnd { path: objv.path.clone() });
                } else {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::MisplacedListGuard,
                        Location::PlanOp(pc),
                        format!(
                            "list-end guard at {}, which the declaration does not mark as a \
                             list tail: on a conforming heap this guard fails",
                            fmt_path(&objv.path)
                        ),
                    ));
                    return events;
                }
            }
        }
        pc += 1;
    }
    events
}

fn joined(base: &[Step], step: Step) -> Path {
    let mut p = base.to_vec();
    p.push(step);
    p
}

fn child_path(base: &[Step], slot: usize, child: &SpecShape) -> Path {
    let mut p = joined(base, Step::Child(slot));
    if matches!(child, SpecShape::List { .. }) {
        p.push(Step::Elem(0));
    }
    p
}

fn node_for_child(child: &SpecShape) -> NodeRef<'_> {
    match child {
        SpecShape::Object { .. } => NodeRef::Obj(child),
        SpecShape::List { .. } => NodeRef::Elem { list: child, pos: 0 },
        SpecShape::Dynamic => NodeRef::Dyn,
    }
}

fn class_guard_diag(
    pc: usize,
    registry: &ClassRegistry,
    op_class: ClassId,
    declared: ClassId,
    path: &[Step],
) -> Diagnostic {
    Diagnostic::new(
        Severity::Error,
        DiagCode::ClassGuardMismatch,
        Location::PlanOp(pc),
        format!(
            "plan expects {} at {} but the declaration puts a {} there: the plan is stale",
            class_name(registry, op_class),
            fmt_path(path),
            class_name(registry, declared),
        ),
    )
    .with_suggestion("recompile the plan from the current declaration")
}

/// Follows a static load from `src` through `slot`, producing the new
/// symbolic value or an unrecoverable diagnostic.
fn follow_edge<'s>(
    src: &SymVal<'s>,
    slot: usize,
    pc: usize,
    registry: &ClassRegistry,
    op_class: ClassId,
    diags: &mut Vec<Diagnostic>,
) -> Option<SymVal<'s>> {
    match &src.node {
        NodeRef::Obj(SpecShape::Object { children, .. }) => {
            match children.iter().find(|(s, _)| *s == slot) {
                None => {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::UndeclaredEdge,
                        Location::PlanOp(pc),
                        format!(
                            "static load of slot {slot} of {}, which the declaration assumes \
                             null: on a conforming heap this load fails",
                            fmt_path(&src.path)
                        ),
                    ));
                    None
                }
                Some((_, SpecShape::Dynamic)) => {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        DiagCode::StaticLoadOnDynamicEdge,
                        Location::PlanOp(pc),
                        format!(
                            "static load of slot {slot} of {}, which the declaration leaves \
                             dynamic: a null here fails instead of being skipped",
                            fmt_path(&src.path)
                        ),
                    ));
                    Some(SymVal { path: joined(&src.path, Step::Child(slot)), node: NodeRef::Dyn })
                }
                Some((_, child)) => {
                    if let Some(declared) = child.root_class() {
                        if declared != op_class {
                            let path = joined(&src.path, Step::Child(slot));
                            diags.push(class_guard_diag(pc, registry, op_class, declared, &path));
                            return None;
                        }
                    }
                    Some(SymVal {
                        path: child_path(&src.path, slot, child),
                        node: node_for_child(child),
                    })
                }
            }
        }
        NodeRef::Elem { list, pos } => {
            let SpecShape::List { elem_class, next_slot, len, .. } = list else { unreachable!() };
            if slot != *next_slot {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::UndeclaredEdge,
                    Location::PlanOp(pc),
                    format!(
                        "load of slot {slot} from list element {}, but the declared link \
                         slot is {next_slot}",
                        fmt_path(&src.path)
                    ),
                ));
                return None;
            }
            if pos + 1 >= *len {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    DiagCode::ListOverrun,
                    Location::PlanOp(pc),
                    format!(
                        "load past the declared tail: {} is the last of {len} elements, so \
                         its next link is null on a conforming heap",
                        fmt_path(&src.path)
                    ),
                ));
                return None;
            }
            if *elem_class != op_class {
                let mut path = src.path.clone();
                path.pop();
                path.push(Step::Elem(pos + 1));
                diags.push(class_guard_diag(pc, registry, op_class, *elem_class, &path));
                return None;
            }
            let mut path = src.path.clone();
            path.pop();
            path.push(Step::Elem(pos + 1));
            Some(SymVal { path, node: NodeRef::Elem { list, pos: pos + 1 } })
        }
        NodeRef::Obj(_) => unreachable!("Obj always wraps the Object variant"),
        NodeRef::Dyn => {
            diags.push(Diagnostic::new(
                Severity::Warning,
                DiagCode::StaticLoadOnDynamicEdge,
                Location::PlanOp(pc),
                format!(
                    "static load from {}, whose shape the declaration leaves dynamic",
                    fmt_path(&src.path)
                ),
            ));
            Some(SymVal { path: joined(&src.path, Step::Child(slot)), node: NodeRef::Dyn })
        }
    }
}

// ------------------------------------------------------------- comparison

fn compare_events(expected: &[Event], actual: &[Event], diags: &mut Vec<Diagnostic>) {
    let e_stream: Vec<&Event> = expected.iter().filter(|e| e.is_stream_event()).collect();
    let a_stream: Vec<&Event> = actual.iter().filter(|e| e.is_stream_event()).collect();
    compare_seq(&e_stream, &a_stream, true, diags);

    let e_visit: Vec<&Event> = expected.iter().filter(|e| !e.is_stream_event()).collect();
    let a_visit: Vec<&Event> = actual.iter().filter(|e| !e.is_stream_event()).collect();
    compare_seq(&e_visit, &a_visit, false, diags);
}

fn compare_seq(expected: &[&Event], actual: &[&Event], stream: bool, diags: &mut Vec<Diagnostic>) {
    let mismatch = expected.iter().zip(actual.iter()).position(|(e, a)| e != a).or(
        if expected.len() != actual.len() { Some(expected.len().min(actual.len())) } else { None },
    );
    let Some(i) = mismatch else { return };

    let at = |events: &[&Event], i: usize| {
        events.get(i).map(|e| e.to_string()).unwrap_or_else(|| "<end>".into())
    };
    let loc = |events: &[&Event], i: usize| {
        Location::Shape(
            events.get(i).map(|e| fmt_path(e.path())).unwrap_or_else(|| "$".to_string()),
        )
    };
    let d = if !stream {
        Diagnostic::new(
            Severity::Warning,
            DiagCode::VisitMismatch,
            loc(expected, i),
            format!(
                "traversal diverges from the declaration at visit {i}: declared {}, plan \
                 performs {} ({} vs {} visits total)",
                at(expected, i),
                at(actual, i),
                expected.len(),
                actual.len(),
            ),
        )
    } else if i >= actual.len() {
        Diagnostic::new(
            Severity::Error,
            DiagCode::MissingCoverage,
            loc(expected, i),
            format!(
                "plan never performs declared `{}` ({} declared, {} emitted): modifications \
                 there are silently dropped from the checkpoint",
                at(expected, i),
                expected.len(),
                actual.len(),
            ),
        )
        .with_suggestion("recompile the plan, or weaken the declared modification pattern")
    } else if i >= expected.len() {
        Diagnostic::new(
            Severity::Error,
            DiagCode::ExtraCoverage,
            loc(actual, i),
            format!(
                "plan performs `{}` beyond the declared traversal ({} declared, {} emitted)",
                at(actual, i),
                expected.len(),
                actual.len(),
            ),
        )
    } else {
        Diagnostic::new(
            Severity::Error,
            DiagCode::CoverageMismatch,
            loc(expected, i),
            format!(
                "stream diverges from the declared pre-order at event {i}: declared `{}`, \
                 plan performs `{}`",
                at(expected, i),
                at(actual, i),
            ),
        )
    };
    diags.push(d);
}
