//! Coverage derivation: the traversal a declaration *promises*.
//!
//! [`expected_events`] replays the static part of the plan compiler over a
//! [`SpecShape`] and emits the **maximal-path event stream**: the sequence
//! of object visits, test/record sites, generic fallbacks, and list-end
//! guards the compiled plan must perform when every flag is dirty and
//! every dynamic edge is non-null. Two invariants make this the right
//! oracle for coverage equivalence:
//!
//! 1. every object/field the generic traversal would visit *under the
//!    declared pattern* appears exactly once, in depth-first pre-order
//!    (the stream format is order-sensitive); and
//! 2. subtrees the pattern proves unmodified appear not at all — their
//!    absence is the specialization, not a gap.
//!
//! The plan verifier ([`crate::verify_plan`]) symbolically executes the
//! compiled ops along the same maximal path and compares the two streams;
//! any divergence is a structured diagnostic.

use ickp_heap::ClassId;
use ickp_spec::{ListPattern, NodePattern, SpecShape};
use std::fmt;

/// One step of a path into a declared shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Descend into the child declared at this slot.
    Child(usize),
    /// The list element at this 0-based position.
    Elem(usize),
}

/// A path from the declaration root to a node, e.g. `$.s3[2]` for "the
/// element at position 2 of the list declared at slot 3 of the root".
pub type Path = Vec<Step>;

/// Renders a path in the `$.s<slot>[<pos>]` notation used by diagnostics.
pub fn fmt_path(path: &[Step]) -> String {
    let mut out = String::from("$");
    for step in path {
        match step {
            Step::Child(slot) => out.push_str(&format!(".s{slot}")),
            Step::Elem(pos) => out.push_str(&format!("[{pos}]")),
        }
    }
    out
}

/// One event of the maximal-path traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The traversal binds the object at this path (a load).
    Visit(Path),
    /// The traversal tests the object's modified flag and records it when
    /// set. `class` is the statically declared class being recorded.
    TestRecord {
        /// Path of the tested object.
        path: Path,
        /// Declared class at that path.
        class: ClassId,
    },
    /// The traversal hands the subtree under this dynamic edge to the
    /// generic checkpointer.
    Generic {
        /// Path of the dynamic edge (parent path plus child slot).
        path: Path,
    },
    /// The traversal verifies the declared list really ends at this tail.
    ListEnd {
        /// Path of the declared tail element.
        path: Path,
    },
}

impl Event {
    /// The event's path.
    pub fn path(&self) -> &[Step] {
        match self {
            Event::Visit(p) => p,
            Event::TestRecord { path, .. } => path,
            Event::Generic { path } => path,
            Event::ListEnd { path } => path,
        }
    }

    /// `true` for events that affect the checkpoint stream or guards
    /// (everything except pure visits).
    pub fn is_stream_event(&self) -> bool {
        !matches!(self, Event::Visit(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Visit(p) => write!(f, "visit {}", fmt_path(p)),
            Event::TestRecord { path, class } => {
                write!(f, "test+record {} ({class})", fmt_path(path))
            }
            Event::Generic { path } => write!(f, "generic fallback {}", fmt_path(path)),
            Event::ListEnd { path } => write!(f, "list-end guard {}", fmt_path(path)),
        }
    }
}

/// Derives the maximal-path event stream a plan compiled from `shape`
/// must produce. Mirrors the compiler's emission order exactly:
/// pre-order, children in declaration order, fully-unmodified subtrees
/// skipped, list dead-loads eliminated past the deepest dirty position.
pub fn expected_events(shape: &SpecShape) -> Vec<Event> {
    let mut ev = Vec::new();
    match shape {
        // A fully dynamic root never compiles; no events.
        SpecShape::Dynamic => {}
        SpecShape::Object { class, pattern, children } => {
            ev.push(Event::Visit(Vec::new()));
            object_events(&mut ev, &[], *class, *pattern, children);
        }
        SpecShape::List { elem_class, len, pattern, .. } => {
            // A bare list root: the checkpoint root is element 0, bound
            // unconditionally even when the pattern prunes everything.
            ev.push(Event::Visit(vec![Step::Elem(0)]));
            list_events(&mut ev, &[], *elem_class, *len, pattern);
        }
    }
    ev
}

fn join(base: &[Step], step: Step) -> Path {
    let mut p = base.to_vec();
    p.push(step);
    p
}

fn object_events(
    ev: &mut Vec<Event>,
    path: &[Step],
    class: ClassId,
    pattern: NodePattern,
    children: &[(usize, SpecShape)],
) {
    match pattern {
        NodePattern::MayModify => {
            ev.push(Event::TestRecord { path: path.to_vec(), class });
        }
        NodePattern::FrozenHere => {}
        // An unmodified object root binds but descends nowhere.
        NodePattern::Unmodified => return,
    }
    for (slot, child) in children {
        child_events(ev, path, *slot, child);
    }
}

fn child_events(ev: &mut Vec<Event>, base: &[Step], slot: usize, shape: &SpecShape) {
    // Modification-pattern specialization: a statically-unmodified child
    // subtree generates no loads, tests, or records at all.
    if shape.is_fully_unmodified() {
        return;
    }
    match shape {
        SpecShape::Object { class, pattern, children } => {
            let p = join(base, Step::Child(slot));
            ev.push(Event::Visit(p.clone()));
            object_events(ev, &p, *class, *pattern, children);
        }
        SpecShape::List { elem_class, len, pattern, .. } => {
            let list_base = join(base, Step::Child(slot));
            ev.push(Event::Visit(join(&list_base, Step::Elem(0))));
            list_events(ev, &list_base, *elem_class, *len, pattern);
        }
        SpecShape::Dynamic => {
            ev.push(Event::Generic { path: join(base, Step::Child(slot)) });
        }
    }
}

fn list_events(
    ev: &mut Vec<Event>,
    base: &[Step],
    elem_class: ClassId,
    len: usize,
    pattern: &ListPattern,
) {
    let elem = |i: usize| join(base, Step::Elem(i));
    match pattern {
        ListPattern::Unmodified => {}
        ListPattern::MayModify => {
            for i in 0..len {
                ev.push(Event::TestRecord { path: elem(i), class: elem_class });
                if i + 1 < len {
                    ev.push(Event::Visit(elem(i + 1)));
                }
            }
            ev.push(Event::ListEnd { path: elem(len - 1) });
        }
        ListPattern::LastOnly => {
            for i in 1..len {
                ev.push(Event::Visit(elem(i)));
            }
            ev.push(Event::TestRecord { path: elem(len - 1), class: elem_class });
            ev.push(Event::ListEnd { path: elem(len - 1) });
        }
        ListPattern::Positions(ps) => {
            let mut positions: Vec<usize> = ps.clone();
            positions.sort_unstable();
            positions.dedup();
            let Some(&max_pos) = positions.last() else {
                return;
            };
            // Dead-load elimination: the traversal stops at the deepest
            // possibly-dirty position.
            for i in 0..=max_pos {
                if positions.binary_search(&i).is_ok() {
                    ev.push(Event::TestRecord { path: elem(i), class: elem_class });
                }
                if i < max_pos {
                    ev.push(Event::Visit(elem(i + 1)));
                }
            }
            if max_pos == len - 1 {
                ev.push(Event::ListEnd { path: elem(max_pos) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType};

    fn classes() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg
            .define(
                "Holder",
                None,
                &[("l0", FieldType::Ref(Some(elem))), ("l1", FieldType::Ref(Some(elem)))],
            )
            .unwrap();
        (reg, elem, holder)
    }

    #[test]
    fn path_formatting() {
        assert_eq!(fmt_path(&[]), "$");
        assert_eq!(fmt_path(&[Step::Child(3), Step::Elem(2)]), "$.s3[2]");
    }

    #[test]
    fn unmodified_subtrees_vanish_from_the_stream() {
        let (_, elem, holder) = classes();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![
                (0, SpecShape::list(elem, 1, 4, ListPattern::Unmodified)),
                (1, SpecShape::list(elem, 1, 2, ListPattern::MayModify)),
            ],
        );
        let ev = expected_events(&shape);
        // Root visit, list-1 head visit, 2 test/records, 1 inter-element
        // visit, 1 end guard. Nothing for list 0 at all.
        assert_eq!(ev.len(), 6);
        assert!(ev.iter().all(|e| e.path().first() != Some(&Step::Child(0))));
        assert_eq!(ev.iter().filter(|e| matches!(e, Event::TestRecord { .. })).count(), 2);
        assert_eq!(ev.iter().filter(|e| matches!(e, Event::ListEnd { .. })).count(), 1);
    }

    #[test]
    fn positions_stop_at_the_deepest_position() {
        let (_, elem, holder) = classes();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 5, ListPattern::Positions(vec![2, 0, 2])))],
        );
        let ev = expected_events(&shape);
        // $: visit; [0]: visit + test; [1]: visit; [2]: visit + test.
        // No visit past position 2, no end guard (2 != len-1).
        assert_eq!(ev.iter().filter(|e| matches!(e, Event::Visit(_))).count(), 4);
        assert_eq!(ev.iter().filter(|e| matches!(e, Event::TestRecord { .. })).count(), 2);
        assert!(!ev.iter().any(|e| matches!(e, Event::ListEnd { .. })));
        let deepest = ev.iter().map(|e| e.path().to_vec()).max_by_key(|p| p.len()).unwrap();
        assert_eq!(deepest, vec![Step::Child(0), Step::Elem(2)]);
    }

    #[test]
    fn last_only_visits_every_link_but_tests_only_the_tail() {
        let (_, elem, _) = classes();
        let shape = SpecShape::list(elem, 1, 3, ListPattern::LastOnly);
        let ev = expected_events(&shape);
        assert_eq!(
            ev,
            vec![
                Event::Visit(vec![Step::Elem(0)]),
                Event::Visit(vec![Step::Elem(1)]),
                Event::Visit(vec![Step::Elem(2)]),
                Event::TestRecord { path: vec![Step::Elem(2)], class: elem },
                Event::ListEnd { path: vec![Step::Elem(2)] },
            ]
        );
    }

    #[test]
    fn dynamic_children_become_generic_events() {
        let (_, _, holder) = classes();
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(0, SpecShape::Dynamic)]);
        let ev = expected_events(&shape);
        assert_eq!(
            ev,
            vec![
                Event::Visit(vec![]),
                Event::TestRecord { path: vec![], class: holder },
                Event::Generic { path: vec![Step::Child(0)] },
            ]
        );
    }

    #[test]
    fn unmodified_root_is_visit_only() {
        let (_, elem, holder) = classes();
        let shape = SpecShape::object(
            holder,
            NodePattern::Unmodified,
            vec![(0, SpecShape::list(elem, 1, 3, ListPattern::MayModify))],
        );
        assert_eq!(expected_events(&shape), vec![Event::Visit(vec![])]);
    }
}
