//! The dynamic cross-validator: a debug-only oracle backing the static
//! verdicts.
//!
//! Where [`crate::verify_plan`] reasons about a plan symbolically,
//! [`cross_validate`] runs it: on a scratch clone of the heap, over the
//! given roots, into a real checkpoint stream — then compares what got
//! recorded against the heap journal's dirty set, bucketed by what the
//! declaration claims about each object:
//!
//! * **missed** — dirty, covered by the declaration (a test/record site
//!   or inside a dynamic subtree), yet absent from the stream. A sound
//!   plan never produces these; one missed object is a bug in either the
//!   plan or the declaration.
//! * **spurious** — recorded though its modified flag was clear. Also
//!   never expected: every record site is flag-guarded.
//! * **declared-clean** dirty objects — dirty, but the declaration says
//!   this phase cannot touch them. The specializer *trusts* declarations
//!   (the paper's contract), so these are not plan bugs; they are exactly
//!   what the static pattern checker (`AUD101`) exists to catch. The
//!   oracle counts them so tests can assert both halves of the story.

use ickp_core::{
    decode, journal_dirty_set, CheckpointKind, CoreError, MethodTable, StreamWriter, TraversalStats,
};
use ickp_heap::{Heap, ObjectId, StableId, Value};
use ickp_spec::{GuardMode, ListPattern, NodePattern, Plan, SpecShape};
use std::collections::{HashMap, HashSet};

/// How the declaration covers one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Coverage {
    /// A static test/record site: recorded iff dirty.
    Recordable,
    /// Inside a declared-dynamic subtree: the generic fallback records it
    /// iff dirty.
    DynamicCovered,
}

/// The oracle's verdict for one plan execution. See the module docs for
/// the bucket semantics.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Objects the executed plan actually recorded.
    pub recorded: usize,
    /// Dirty objects in the journal at validation time.
    pub dirty: usize,
    /// Dirty, declaration-covered, yet unrecorded objects (bugs).
    pub missed: Vec<ObjectId>,
    /// Recorded objects whose modified flag was clear (bugs).
    pub spurious: Vec<StableId>,
    /// Dirty objects the declaration claims this phase cannot write.
    pub declared_clean_dirty: usize,
}

impl OracleReport {
    /// `true` when the run and the declaration agree: nothing covered was
    /// missed and nothing clean was recorded.
    pub fn is_consistent(&self) -> bool {
        self.missed.is_empty() && self.spurious.is_empty()
    }
}

/// Executes `plan` from each of `roots` on a scratch clone of `heap` and
/// reconciles the resulting checkpoint stream against the journal's dirty
/// set, classified under `shape`.
///
/// `heap` itself is untouched (flag resets happen on the clone), so the
/// oracle can run repeatedly and alongside static passes.
///
/// # Errors
///
/// Propagates executor failures — a guard failure here means the heap no
/// longer conforms to the declaration — and stream decode errors.
pub fn cross_validate(
    heap: &Heap,
    plan: &Plan,
    shape: &SpecShape,
    roots: &[ObjectId],
    mode: GuardMode,
) -> Result<OracleReport, CoreError> {
    // 1. Classify every declaration-covered object reachable from a root.
    let mut coverage: HashMap<ObjectId, Coverage> = HashMap::new();
    for &root in roots {
        classify(heap, root, shape, &mut coverage)?;
    }

    // 2. Execute the plan for real, on a clone, into one stream.
    let mut scratch = heap.clone();
    let table = plan.has_dynamic().then(|| MethodTable::derive(heap.registry()));
    let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
    let mut stats = TraversalStats::default();
    let mut executor = plan.executor();
    for &root in roots {
        executor.run(&mut scratch, root, &mut writer, mode, table.as_ref(), &mut stats)?;
    }
    let decoded = decode(&writer.finish(), heap.registry())?;
    let recorded: HashSet<StableId> = decoded.objects.iter().map(|o| o.stable).collect();

    // 3. Reconcile against the journal of the *original* heap.
    let mut report = OracleReport { recorded: recorded.len(), ..OracleReport::default() };
    let mut dirty_stables: HashSet<StableId> = HashSet::new();
    for id in journal_dirty_set(heap) {
        let stable = heap.stable_id(id)?;
        dirty_stables.insert(stable);
        report.dirty += 1;
        match coverage.get(&id) {
            Some(_) if !recorded.contains(&stable) => report.missed.push(id),
            Some(_) => {}
            None => report.declared_clean_dirty += 1,
        }
    }
    report.spurious = recorded.iter().filter(|s| !dirty_stables.contains(s)).copied().collect();
    Ok(report)
}

/// Walks the declaration over the live heap, recording which objects the
/// specialized checkpointer is responsible for.
fn classify(
    heap: &Heap,
    obj: ObjectId,
    shape: &SpecShape,
    out: &mut HashMap<ObjectId, Coverage>,
) -> Result<(), CoreError> {
    match shape {
        SpecShape::Object { pattern, children, .. } => {
            match pattern {
                NodePattern::MayModify => {
                    out.insert(obj, Coverage::Recordable);
                }
                NodePattern::FrozenHere => {}
                // The declaration asserts the whole subtree clean: nothing
                // below is covered.
                NodePattern::Unmodified => return Ok(()),
            }
            for (slot, child) in children {
                if let Value::Ref(Some(id)) = heap.field(obj, *slot)? {
                    classify(heap, id, child, out)?;
                }
            }
        }
        SpecShape::List { next_slot, len, pattern, .. } => {
            let mut cur = Some(obj);
            for pos in 0..*len {
                let Some(id) = cur else { break };
                let covered = match pattern {
                    ListPattern::Unmodified => false,
                    ListPattern::MayModify => true,
                    ListPattern::LastOnly => pos == len - 1,
                    ListPattern::Positions(ps) => ps.contains(&pos),
                };
                if covered {
                    out.insert(id, Coverage::Recordable);
                }
                cur = match heap.field(id, *next_slot)? {
                    Value::Ref(r) => r,
                    _ => None,
                };
            }
        }
        SpecShape::Dynamic => {
            // The generic fallback records any dirty object in the whole
            // reachable subtree.
            let mut queue = vec![obj];
            while let Some(id) = queue.pop() {
                if out.insert(id, Coverage::DynamicCovered).is_some() {
                    continue;
                }
                let nslots = heap.registry().class(heap.class_of(id)?)?.num_slots();
                for slot in 0..nslots {
                    if let Value::Ref(Some(child)) = heap.field(id, slot)? {
                        queue.push(child);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType};
    use ickp_spec::Specializer;

    /// holder -> e0 -> e1 -> e2, with the phase declared LastOnly.
    /// Returns (heap, holder id, elements, shape, elem class, holder class).
    #[allow(clippy::type_complexity)]
    fn world() -> (Heap, ObjectId, Vec<ObjectId>, SpecShape, ickp_heap::ClassId, ickp_heap::ClassId)
    {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let mut heap = Heap::new(reg);
        let e2 = heap.alloc(elem).unwrap();
        let e1 = heap.alloc(elem).unwrap();
        heap.set_field(e1, 1, Value::Ref(Some(e2))).unwrap();
        let e0 = heap.alloc(elem).unwrap();
        heap.set_field(e0, 1, Value::Ref(Some(e1))).unwrap();
        let h = heap.alloc(holder).unwrap();
        heap.set_field(h, 0, Value::Ref(Some(e0))).unwrap();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 3, ListPattern::LastOnly))],
        );
        (heap, h, vec![e0, e1, e2], shape, elem, holder)
    }

    #[test]
    fn faithful_plan_and_declaration_reconcile() {
        let (mut heap, h, elems, shape, _, _) = world();
        let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
        heap.reset_all_modified();
        heap.set_field(elems[2], 0, Value::Int(9)).unwrap(); // dirty the tail
        let r = cross_validate(&heap, &plan, &shape, &[h], GuardMode::Checked).unwrap();
        assert!(r.is_consistent(), "{r:?}");
        assert_eq!(r.recorded, 1);
        assert_eq!(r.dirty, 1);
        assert_eq!(r.declared_clean_dirty, 0);
    }

    #[test]
    fn out_of_declaration_writes_are_trusted_not_missed() {
        let (mut heap, h, elems, shape, _, _) = world();
        let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
        heap.reset_all_modified();
        // Dirty the head, which LastOnly declares clean.
        heap.set_field(elems[0], 0, Value::Int(9)).unwrap();
        let r = cross_validate(&heap, &plan, &shape, &[h], GuardMode::Checked).unwrap();
        assert!(r.is_consistent(), "declarations are trusted: {r:?}");
        assert_eq!(r.recorded, 0);
        assert_eq!(r.declared_clean_dirty, 1);
    }

    #[test]
    fn a_plan_for_the_wrong_pattern_misses_covered_objects() {
        let (mut heap, h, elems, shape, elem, holder) = world();
        // Compile for LastOnly but *declare* MayModify: every element is
        // covered, so dirtying the head must surface as a miss.
        let broad = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 3, ListPattern::MayModify))],
        );
        let plan = Specializer::new(heap.registry()).compile(&shape).unwrap();
        heap.reset_all_modified();
        heap.set_field(elems[0], 0, Value::Int(9)).unwrap();
        let r = cross_validate(&heap, &plan, &broad, &[h], GuardMode::Checked).unwrap();
        assert_eq!(r.missed, vec![elems[0]]);
        assert!(!r.is_consistent());
    }
}
