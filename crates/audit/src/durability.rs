//! Pass 6: the durability-ordering auditor (`AUD401`–`AUD408`).
//!
//! The crash and failover matrices prove the storage protocols correct
//! *dynamically* — by replaying recovery at every injected fault index.
//! This pass proves the same acked-prefix contract *statically*, from a
//! recorded [`TraceEvent`] stream (see `ickp_durable::trace`): it walks
//! the typed op stream under the explicit persistence model, tracking
//! per-node volatile/durable state, and checks that every
//! client-acknowledgement marker rests on a fully durable, fully
//! published commit. It also computes the crash-state equivalence
//! classes ([`crash_classes`]) — the same classes the pruned crash
//! matrix replays one representative of.
//!
//! ## The persistence model (normative, see `docs/FORMAT.md`)
//!
//! * Written bytes are **volatile** until a covering fsync on the file.
//! * A rename is atomic but — like creations and removals — **unordered
//!   with respect to a crash** until the parent directory is fsynced.
//! * A batch is acknowledged at its manifest swap: write-temp → fsync →
//!   rename over the manifest → directory fsync. Only the completed
//!   sequence makes the new frontier reachable by recovery.
//! * A replicated batch is client-acknowledged only after it is durable
//!   on **both** nodes and the follower's acknowledgement arrived.
//!
//! ## Error codes
//!
//! | Code | Severity | Finding |
//! |------|----------|---------|
//! | AUD401 | error | un-fsynced write (or no completed manifest publish) reachable from an acked state |
//! | AUD402 | error | rename before the source file's fsync |
//! | AUD403 | error | manifest publish missing its parent-directory fsync |
//! | AUD404 | error | write into a committed region after its swap |
//! | AUD405 | error | replication ack sent before durable-on-both |
//! | AUD406 | error | op outside the shared `OpCounter` space |
//! | AUD407 | perf | redundant fsync (nothing pending) |
//! | AUD408 | perf | consecutive single-record commits group commit would merge |
//!
//! Like [`audit_shards`](crate::audit_shards) and
//! [`audit_barriers`](crate::audit_barriers), the pass is generic over a
//! spec trait ([`OpTraceSpec`]) so injection tests can express broken
//! protocols the sound [`DurableStore`](ickp_durable::DurableStore)
//! cannot produce; [`cross_validate_durability`] backs the static
//! verdicts by replaying sampled crash classes through the real
//! [`MemFs`](ickp_durable::MemFs) crash machinery.

use std::collections::BTreeMap;

use ickp_durable::{
    crash_classes, CrashClass, DurableConfig, DurableStore, FailFs, FaultPlan, OpTrace, TraceEvent,
    TraceNode, TraceOp, MANIFEST,
};
use ickp_heap::ClassRegistry;

use crate::diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};

/// The input contract of the durability auditor: a typed op stream plus
/// the size of the `OpCounter` space it was recorded against.
///
/// [`OpTrace`] (what `TraceLog::snapshot` returns) implements this;
/// injection tests implement it by hand to express protocols the sound
/// store cannot produce.
pub trait OpTraceSpec {
    /// The recorded events, in execution order.
    fn events(&self) -> &[TraceEvent];

    /// Operation indices claimed on the shared counter while recording.
    /// A sound trace's op events tile `0..counted_ops()` exactly.
    fn counted_ops(&self) -> u64;

    /// The manifest name whose atomic replacement is the commit point.
    fn manifest_path(&self) -> &str {
        MANIFEST
    }
}

impl OpTraceSpec for OpTrace {
    fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn counted_ops(&self) -> u64 {
        self.counted
    }
}

/// Per-file symbolic state: current and durable (fsynced) length.
#[derive(Debug, Clone, Copy, Default)]
struct FileState {
    len: u64,
    synced: u64,
}

/// Per-node symbolic state under the persistence model.
#[derive(Debug, Default)]
struct NodeState {
    files: BTreeMap<String, FileState>,
    /// Committed frontier per path: the durable lengths the manifest
    /// referenced at the last completed commit.
    committed: BTreeMap<String, u64>,
    /// Event position of a rename onto the manifest whose directory
    /// fsync has not happened yet.
    manifest_rename_at: Option<usize>,
    /// Event position of the last *completed* commit (directory fsync
    /// sealing a manifest rename).
    last_commit_pos: Option<usize>,
    /// Whether any namespace mutation (create/rename/remove) happened
    /// since the last directory fsync.
    names_dirty: bool,
    commits: usize,
}

/// What the durability audit established, beyond the diagnostics.
#[derive(Debug)]
pub struct DurabilityAudit {
    /// The findings.
    pub report: AuditReport,
    /// Crash-state equivalence classes of the trace (what the pruned
    /// crash matrix replays one representative of, and what
    /// [`cross_validate_durability`] samples).
    pub classes: Vec<CrashClass>,
    /// Completed manifest commits, across all nodes.
    pub commits: usize,
    /// Watermark-advancing client acknowledgements.
    pub acks: usize,
    /// Primary → follower data frames.
    pub wire_sends: usize,
    /// Follower → primary acknowledgement frames.
    pub wire_acks: usize,
    /// The trace's counted op space.
    pub counted_ops: u64,
}

impl DurabilityAudit {
    /// `true` if no error-severity finding was produced.
    pub fn is_sound(&self) -> bool {
        !self.report.has_errors()
    }
}

/// How many diagnostics AUD406 emits for individual bad indices before
/// summarizing the remainder.
const UNCOUNTED_DETAIL_CAP: usize = 8;

/// Statically audits a recorded op trace against the persistence model.
///
/// Walks the event stream once, tracking each node's volatile/durable
/// file state, the pending namespace set, and the committed frontier;
/// every client-acknowledgement marker is checked against the state it
/// rests on. See the module docs for the code table. The sound
/// [`DurableStore`](ickp_durable::DurableStore) and
/// `ReplicaPair` protocols audit error-clean; the perf lints (AUD407,
/// AUD408) may fire on legitimately wasteful workloads (e.g. a stream
/// of single-record commits).
pub fn audit_durability(spec: &impl OpTraceSpec) -> DurabilityAudit {
    let events = spec.events();
    let counted = spec.counted_ops();
    let manifest = spec.manifest_path().to_string();
    let mut report = AuditReport::new();

    let replicated = events
        .iter()
        .any(|e| matches!(e, TraceEvent::Op { op: TraceOp::WireSend | TraceOp::WireAck, .. }));

    let mut nodes: BTreeMap<TraceNode, NodeState> = BTreeMap::new();
    let mut watermark = 0u64;
    let mut prev_ack_pos: Option<usize> = None;
    let mut acks = 0usize;
    let mut wire_sends = 0usize;
    let mut wire_acks = 0usize;
    let mut last_send_pos: Option<usize> = None;
    let mut last_wire_ack_pos: Option<usize> = None;
    let mut last_index: Option<u64> = None;
    let mut ack_deltas: Vec<u64> = Vec::new();
    let mut index_claims: Vec<u32> = vec![0; counted as usize];
    let mut out_of_range = 0usize;

    for (pos, event) in events.iter().enumerate() {
        match event {
            TraceEvent::Op { index, node, op } => {
                if *index < counted {
                    index_claims[*index as usize] += 1;
                } else {
                    out_of_range += 1;
                    if out_of_range <= UNCOUNTED_DETAIL_CAP {
                        report.push(Diagnostic::new(
                            Severity::Error,
                            DiagCode::DurabilityUncountedOp,
                            Location::TraceOp(*index),
                            format!(
                                "op index {index} lies outside the counted space 0..{counted}: \
                                 {op} was never claimable by the shared OpCounter"
                            ),
                        ));
                    }
                }
                last_index = Some(*index);
                let state = nodes.entry(*node).or_default();
                apply_op(
                    state,
                    &mut report,
                    &manifest,
                    pos,
                    *index,
                    *node,
                    op,
                    &mut wire_sends,
                    &mut wire_acks,
                    &mut last_send_pos,
                    &mut last_wire_ack_pos,
                );
            }
            TraceEvent::ClientAck { records } => {
                if *records <= watermark {
                    continue; // retransmitted/no-op marker: nothing new claimed
                }
                ack_deltas.push(records - watermark);
                acks += 1;
                check_ack(
                    &nodes,
                    &mut report,
                    replicated,
                    *records,
                    prev_ack_pos,
                    last_send_pos,
                    last_wire_ack_pos,
                    last_index,
                );
                watermark = *records;
                prev_ack_pos = Some(pos);
            }
        }
    }

    // AUD406: the counted space must be tiled exactly once each.
    let mut bad = 0usize;
    for (index, &claims) in index_claims.iter().enumerate() {
        if claims == 1 {
            continue;
        }
        bad += 1;
        if bad <= UNCOUNTED_DETAIL_CAP {
            let what = if claims == 0 {
                "claimed by the shared OpCounter but never traced: an uncounted op \
                 performed I/O invisible to the crash matrices"
                    .to_string()
            } else {
                format!("traced {claims} times: duplicate claims corrupt the fault space")
            };
            report.push(Diagnostic::new(
                Severity::Error,
                DiagCode::DurabilityUncountedOp,
                Location::TraceOp(index as u64),
                format!("op index {index} {what}"),
            ));
        }
    }
    if bad + out_of_range > UNCOUNTED_DETAIL_CAP {
        report.push(Diagnostic::new(
            Severity::Error,
            DiagCode::DurabilityUncountedOp,
            Location::General,
            format!(
                "{} op indices violate the shared-counter contract in total",
                bad + out_of_range
            ),
        ));
    }

    // AUD408: maximal runs of consecutive single-record commits.
    let mut run = 0usize;
    let mut runs: Vec<usize> = Vec::new();
    for &delta in ack_deltas.iter().chain(std::iter::once(&u64::MAX)) {
        if delta == 1 {
            run += 1;
        } else {
            if run >= 2 {
                runs.push(run);
            }
            run = 0;
        }
    }
    for run in runs {
        let saved = 3 * (run as u64 - 1);
        report.push(
            Diagnostic::new(
                Severity::PerfLint,
                DiagCode::DurabilityMissedCoalescing,
                Location::General,
                format!(
                    "{run} consecutive single-record commits: group commit would merge \
                     them into one manifest swap, saving ~{saved} fsync-class syscalls"
                ),
            )
            .with_suggestion("batch the appends (append_batch / append_records)"),
        );
    }

    let trace = OpTrace { events: events.to_vec(), counted };
    DurabilityAudit {
        report,
        classes: crash_classes(&trace),
        commits: nodes.values().map(|n| n.commits).sum(),
        acks,
        wire_sends,
        wire_acks,
        counted_ops: counted,
    }
}

/// Applies one op to its node's symbolic state, emitting op-anchored
/// diagnostics (AUD402, AUD404, AUD405 at the wire ack, AUD407).
#[allow(clippy::too_many_arguments)]
fn apply_op(
    state: &mut NodeState,
    report: &mut AuditReport,
    manifest: &str,
    pos: usize,
    index: u64,
    node: TraceNode,
    op: &TraceOp,
    wire_sends: &mut usize,
    wire_acks: &mut usize,
    last_send_pos: &mut Option<usize>,
    last_wire_ack_pos: &mut Option<usize>,
) {
    let at = Location::TraceOp(index);
    match op {
        TraceOp::Create { path, len } => {
            if state.committed.contains_key(path) {
                report.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagCode::DurabilityCommittedOverwrite,
                        at,
                        format!(
                            "write_file over committed {path:?}: replacing acknowledged \
                             history in place, volatile until the next directory fsync"
                        ),
                    )
                    .with_suggestion("write a temp file, fsync it, then rename atomically"),
                );
            }
            state.files.insert(path.clone(), FileState { len: *len, synced: 0 });
            state.names_dirty = true;
        }
        TraceOp::Write { path, offset, len } => {
            if let Some(&frontier) = state.committed.get(path) {
                if *offset < frontier {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::DurabilityCommittedOverwrite,
                        at,
                        format!(
                            "write into {path:?} at offset {offset}, inside the committed \
                             region 0..{frontier} the manifest already references"
                        ),
                    ));
                }
            }
            let file = state.files.entry(path.clone()).or_insert_with(|| {
                state.names_dirty = true; // a fresh name, volatile until dir fsync
                FileState::default()
            });
            file.len = file.len.max(*offset + *len);
        }
        TraceOp::Fsync { path } => {
            let file = state.files.entry(path.clone()).or_default();
            if file.len == file.synced {
                report.push(Diagnostic::new(
                    Severity::PerfLint,
                    DiagCode::DurabilityRedundantFsync,
                    at,
                    format!("fsync of {path:?} with no pending bytes: one wasted syscall"),
                ));
            }
            file.synced = file.len;
        }
        TraceOp::Rename { from, to } => {
            if let Some(file) = state.files.remove(from) {
                if file.len > file.synced {
                    report.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagCode::DurabilityRenameBeforeSync,
                            at,
                            format!(
                                "rename {from:?} -> {to:?} publishes {} un-fsynced byte(s): \
                                 the name can become durable ahead of the data",
                                file.len - file.synced
                            ),
                        )
                        .with_suggestion("fsync the source file before renaming it"),
                    );
                }
                state.files.insert(to.clone(), file);
            }
            if to == manifest {
                state.manifest_rename_at = Some(pos);
            }
            state.names_dirty = true;
        }
        TraceOp::DirFsync => {
            if !state.names_dirty {
                report.push(Diagnostic::new(
                    Severity::PerfLint,
                    DiagCode::DurabilityRedundantFsync,
                    at,
                    "directory fsync with no namespace changes pending: one wasted syscall"
                        .to_string(),
                ));
            }
            state.names_dirty = false;
            if state.manifest_rename_at.take().is_some() {
                // Commit completes: snapshot the frontier the manifest
                // now durably references.
                state.committed = state.files.iter().map(|(p, f)| (p.clone(), f.synced)).collect();
                state.last_commit_pos = Some(pos);
                state.commits += 1;
            }
        }
        TraceOp::Truncate { path, len } => {
            if let Some(&frontier) = state.committed.get(path) {
                if *len < frontier {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::DurabilityCommittedOverwrite,
                        at,
                        format!(
                            "truncate of {path:?} to {len} cuts into the committed region \
                             0..{frontier} the manifest already references"
                        ),
                    ));
                }
            }
            if let Some(file) = state.files.get_mut(path) {
                file.len = file.len.min(*len);
                file.synced = file.synced.min(*len);
            }
        }
        TraceOp::Remove { path } => {
            // Removing a de-referenced file (retention) is legal; a crash
            // merely resurrects it and recovery ignores unreferenced
            // files. The frontier entry goes with it.
            state.files.remove(path);
            state.committed.remove(path);
            state.names_dirty = true;
        }
        TraceOp::WireSend => {
            *wire_sends += 1;
            *last_send_pos = Some(pos);
        }
        TraceOp::WireAck => {
            *wire_acks += 1;
            *last_wire_ack_pos = Some(pos);
            // The follower's acknowledgement claims its durable state
            // covers the shipped batch: volatile state refutes it.
            if node == TraceNode::Follower {
                if let Some((path, file)) = state.files.iter().find(|(_, f)| f.len > f.synced) {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::DurabilityEarlyReplicationAck,
                        at,
                        format!(
                            "follower acknowledges while {path:?} holds {} un-fsynced \
                             byte(s): the ack outruns the follower's disk",
                            file.len - file.synced
                        ),
                    ));
                } else if state.manifest_rename_at.is_some() {
                    report.push(Diagnostic::new(
                        Severity::Error,
                        DiagCode::DurabilityEarlyReplicationAck,
                        at,
                        "follower acknowledges with its manifest publish still missing the \
                         directory fsync"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// Checks one watermark-advancing client acknowledgement against the
/// state it rests on (AUD401, AUD403, AUD405).
#[allow(clippy::too_many_arguments)]
fn check_ack(
    nodes: &BTreeMap<TraceNode, NodeState>,
    report: &mut AuditReport,
    replicated: bool,
    records: u64,
    prev_ack_pos: Option<usize>,
    last_send_pos: Option<usize>,
    last_wire_ack_pos: Option<usize>,
    last_index: Option<u64>,
) {
    let at = || match last_index {
        Some(index) => Location::TraceOp(index),
        None => Location::General,
    };
    let since_prev = |pos: Option<usize>| match (pos, prev_ack_pos) {
        (Some(p), Some(prev)) => p > prev,
        (Some(_), None) => true,
        (None, _) => false,
    };
    let acking = if replicated { TraceNode::Primary } else { TraceNode::Local };
    let Some(state) = nodes.get(&acking) else {
        report.push(Diagnostic::new(
            Severity::Error,
            DiagCode::DurabilityUnsyncedAck,
            at(),
            format!("acknowledgement of {records} record(s) with no I/O performed at all"),
        ));
        return;
    };

    // AUD401a: volatile bytes reachable from the acked state.
    if let Some((path, file)) = state.files.iter().find(|(_, f)| f.len > f.synced) {
        report.push(
            Diagnostic::new(
                Severity::Error,
                DiagCode::DurabilityUnsyncedAck,
                at(),
                format!(
                    "acknowledgement of {records} record(s) while {path:?} holds {} \
                     un-fsynced byte(s): a crash now loses acknowledged data",
                    file.len - file.synced
                ),
            )
            .with_suggestion("fsync every touched file before the manifest swap"),
        );
    }

    // AUD403 / AUD401b: the acknowledgement must be backed by a manifest
    // publish completed since the previous acknowledgement.
    if since_prev(state.manifest_rename_at) {
        report.push(
            Diagnostic::new(
                Severity::Error,
                DiagCode::DurabilityMissingDirFsync,
                at(),
                format!(
                    "acknowledgement of {records} record(s) rests on a manifest rename \
                     with no parent-directory fsync: the publish can vanish at a crash"
                ),
            )
            .with_suggestion("fsync the directory after renaming over the manifest"),
        );
    } else if !since_prev(state.last_commit_pos) {
        report.push(
            Diagnostic::new(
                Severity::Error,
                DiagCode::DurabilityUnsyncedAck,
                at(),
                format!(
                    "acknowledgement of {records} record(s) not backed by any completed \
                     manifest publish: recovery returns the previous frontier"
                ),
            )
            .with_suggestion("swap the manifest (write-temp, fsync, rename, dir-fsync) first"),
        );
    }

    // AUD405: a replicated acknowledgement additionally requires the
    // round trip — data shipped, follower committed, follower ack
    // received — since the previous acknowledgement.
    if replicated {
        let follower_commit = nodes.get(&TraceNode::Follower).and_then(|f| f.last_commit_pos);
        if !since_prev(last_send_pos) {
            report.push(Diagnostic::new(
                Severity::Error,
                DiagCode::DurabilityEarlyReplicationAck,
                at(),
                format!(
                    "acknowledgement of {records} record(s) with no data frame shipped to \
                     the follower since the previous acknowledgement"
                ),
            ));
        } else if !since_prev(last_wire_ack_pos)
            || last_wire_ack_pos < last_send_pos
            || follower_commit < last_send_pos
        {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagCode::DurabilityEarlyReplicationAck,
                    at(),
                    format!(
                        "acknowledgement of {records} record(s) before the batch was durable \
                         on both nodes (shipped, follower-committed, follower-acked)"
                    ),
                )
                .with_suggestion("absorb the follower's ack before acknowledging the client"),
            );
        }
    }
}

/// What the dynamic oracle established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOracleReport {
    /// Total crash classes in the audited trace.
    pub classes: usize,
    /// Classes sampled (every `stride`-th).
    pub sampled: usize,
    /// Crash replays executed (first and last member of each sampled
    /// class).
    pub replays: usize,
}

/// Replays a sampled subset of crash classes through the real
/// [`MemFs`](ickp_durable::MemFs) crash machinery and reconciles each
/// class's static `recovers_to` verdict with what recovery actually
/// returns.
///
/// `drive` must rebuild the identical deterministic single-node workload
/// on every call (the one whose traced baseline produced `classes`,
/// with client-acknowledgement markers recorded after each commit).
/// Every `stride`-th class is sampled; for each, the **first and last**
/// member index are replayed with an injected crash, recovered with
/// [`DurableStore::open`], and required to hold exactly
/// `recovers_to` records — so both ends of each equivalence range are
/// pinned to the static verdict.
///
/// # Errors
///
/// A description of the first disagreement (or of a replay that failed
/// to crash/recover), naming the class and crash index.
pub fn cross_validate_durability<D>(
    registry: &ClassRegistry,
    config: DurableConfig,
    classes: &[CrashClass],
    stride: usize,
    mut drive: D,
) -> Result<DurabilityOracleReport, String>
where
    D: FnMut(&mut FailFs) -> Result<(), String>,
{
    let mut sampled = 0usize;
    let mut replays = 0usize;
    for class in classes.iter().step_by(stride.max(1)) {
        let rep = class.representative;
        let last = *class.indices.last().unwrap_or(&rep);
        let mut points = vec![rep];
        if last != rep {
            points.push(last);
        }
        for k in points {
            let mut fs = FailFs::new(FaultPlan::crash_at(k));
            match drive(&mut fs) {
                Err(_) if fs.crashed() => {}
                Err(e) => {
                    return Err(format!(
                        "class at op {rep}: replay {k} errored without the crash firing: {e}"
                    ));
                }
                Ok(()) => {
                    return Err(format!("class at op {rep}: crash point {k} was never reached"));
                }
            }
            let mut disk = fs.into_recovered();
            let (_, recovered) = DurableStore::open(&mut disk, config, registry)
                .map_err(|e| format!("class at op {rep}: recovery at crash {k} failed: {e}"))?;
            if recovered.len() as u64 != class.recovers_to {
                return Err(format!(
                    "class at op {rep} disagrees with the MemFs oracle: crash {k} recovered \
                     {} record(s), the static verdict says {}",
                    recovered.len(),
                    class.recovers_to
                ));
            }
            replays += 1;
        }
        sampled += 1;
    }
    Ok(DurabilityOracleReport { classes: classes.len(), sampled, replays })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct RawTrace {
        events: Vec<TraceEvent>,
        counted: u64,
    }

    impl OpTraceSpec for RawTrace {
        fn events(&self) -> &[TraceEvent] {
            &self.events
        }

        fn counted_ops(&self) -> u64 {
            self.counted
        }
    }

    fn op(index: u64, op: TraceOp) -> TraceEvent {
        TraceEvent::Op { index, node: TraceNode::Local, op }
    }

    fn codes(audit: &DurabilityAudit) -> Vec<&'static str> {
        audit.report.diagnostics().iter().map(|d| d.code.code()).collect()
    }

    /// The canonical sound commit: append, fsync, write-temp, fsync,
    /// rename, dir-fsync, ack.
    fn sound_commit(base: u64, seg: &str, records: u64) -> Vec<TraceEvent> {
        vec![
            op(base, TraceOp::Write { path: seg.into(), offset: 0, len: 64 }),
            op(base + 1, TraceOp::Fsync { path: seg.into() }),
            op(base + 2, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            op(base + 3, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
            op(base + 4, TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() }),
            op(base + 5, TraceOp::DirFsync),
            TraceEvent::ClientAck { records },
        ]
    }

    #[test]
    fn a_sound_commit_audits_error_clean() {
        let trace = RawTrace { events: sound_commit(0, "seg-000000.ickd", 1), counted: 6 };
        let audit = audit_durability(&trace);
        assert!(audit.is_sound(), "{}", audit.report.render());
        assert_eq!(audit.commits, 1);
        assert_eq!(audit.acks, 1);
    }

    #[test]
    fn an_ack_without_a_manifest_publish_is_aud401() {
        let events = vec![
            op(0, TraceOp::Write { path: "seg".into(), offset: 0, len: 8 }),
            op(1, TraceOp::Fsync { path: "seg".into() }),
            TraceEvent::ClientAck { records: 1 },
        ];
        let audit = audit_durability(&RawTrace { events, counted: 2 });
        assert_eq!(codes(&audit), vec!["AUD401"], "{}", audit.report.render());
    }

    #[test]
    fn a_rename_of_unsynced_data_is_aud402() {
        let events = vec![
            op(0, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            // The fsync lands *after* the publish — the name can become
            // durable ahead of the bytes it points at.
            op(1, TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() }),
            op(2, TraceOp::Fsync { path: MANIFEST.into() }),
            op(3, TraceOp::DirFsync),
            TraceEvent::ClientAck { records: 1 },
        ];
        let audit = audit_durability(&RawTrace { events, counted: 4 });
        assert_eq!(codes(&audit), vec!["AUD402"], "{}", audit.report.render());
    }

    #[test]
    fn uncounted_and_duplicate_indices_are_aud406() {
        let events = vec![
            op(0, TraceOp::Write { path: "seg".into(), offset: 0, len: 8 }),
            op(0, TraceOp::Fsync { path: "seg".into() }), // duplicate claim
        ];
        // counted = 3: index 1 and 2 claimed but never traced.
        let audit = audit_durability(&RawTrace { events, counted: 3 });
        assert_eq!(codes(&audit), vec!["AUD406", "AUD406", "AUD406"]);
    }

    #[test]
    fn single_record_commit_runs_are_aud408() {
        let mut events = Vec::new();
        for i in 0..3u64 {
            events.extend(sound_commit(i * 6, &format!("seg-{i}"), i + 1));
        }
        let audit = audit_durability(&RawTrace { events, counted: 18 });
        assert!(audit.is_sound(), "{}", audit.report.render());
        let lints = codes(&audit);
        assert!(lints.contains(&"AUD408"), "{lints:?}");
    }
}
