//! # ickp-audit — static soundness verifier for checkpoint specialization
//!
//! The specializer in `ickp-spec` is only as good as what it is told: the
//! paper's contract is that declarations of structure and per-phase
//! modification patterns are *trusted*, and a wrong declaration silently
//! produces checkpoints that miss modifications. This crate closes that
//! gap with six cooperating passes:
//!
//! 1. **Plan verifier** ([`verify_plan`]) — an abstract interpreter over
//!    compiled [`Plan`](ickp_spec::Plan) ops that, given the
//!    [`SpecShape`](ickp_spec::SpecShape) the plan was compiled from,
//!    proves register well-formedness (no use-before-def on any path, no
//!    clobbered live register), class-guard consistency, and **coverage
//!    equivalence**: every object and field the generic traversal would
//!    visit under the declared pattern is emitted exactly once, in
//!    pre-order. Any divergence is a structured [`Diagnostic`].
//! 2. **Pattern soundness checker** ([`audit_phase_patterns`]) — lowers
//!    the write-set inference of `ickp-analysis` into per-phase
//!    [`PhaseFootprint`]s and cross-checks them against declared
//!    [`PhasePlans`](ickp_spec::PhasePlans): under-declarations are
//!    errors (`AUD101`), over-declarations are perf lints quantified in
//!    statically skippable record bytes (`AUD102`).
//! 3. **Dynamic cross-validator** ([`cross_validate`]) — a debug-only
//!    oracle that executes the audited plan on a scratch heap and
//!    reconciles the stream against the journal's dirty set, backing the
//!    static verdicts in tests.
//! 4. **Shard-interference pass** ([`audit_shards`]) — a static race
//!    detector for the parallel engine: per-shard object/field footprints
//!    by abstract interpretation, proved pairwise disjoint (`AUD201`),
//!    complete against the sequential coverage (`AUD202`/`AUD203`), and
//!    first-touch deterministic (`AUD204`), plus a byte-imbalance perf
//!    lint (`AUD205`); [`cross_validate_shards`] backs the verdicts by
//!    tracing the real engine.
//! 5. **Barrier-coverage pass** ([`audit_barriers`]) — proves the dirty-set
//!    journal itself sound: every mutator in the heap's
//!    [`MutationCatalog`](ickp_heap::MutationCatalog) is abstract-interpreted
//!    (declaration consistency) and probed (observed footprint) against the
//!    journal/epoch/version protocol. Unjournaled byte changes (`AUD301`),
//!    missed `structure_version` bumps (`AUD302`), and epoch tampering
//!    (`AUD304`) are errors, as is a public mutator missing from the
//!    catalog (`AUD306`); over-journaling (`AUD303`) and over-declared
//!    effects (`AUD305`) are quantified lints.
//!    [`cross_validate_barriers`] backs the verdicts dynamically with
//!    randomized mutation sequences diffed against ground-truth snapshots,
//!    and the `barrier-sanitize` feature of `ickp-backend` shadow-verifies
//!    every real checkpoint against a full-traversal state digest.
//! 6. **Durability-ordering pass** ([`audit_durability`]) — a static
//!    crash-consistency prover over recorded `Vfs`/wire op traces
//!    (`ickp-durable`'s `TraceVfs`): walks the typed op stream under the
//!    explicit persistence model, proves every client acknowledgement
//!    rests on a fully fsynced, fully published manifest commit
//!    (`AUD401`–`AUD406` are ordering errors, `AUD407`/`AUD408` perf
//!    lints), and computes the crash-state equivalence classes the
//!    pruned crash matrix replays one representative of.
//!    [`cross_validate_durability`] backs the verdicts by replaying
//!    sampled classes through the real `MemFs` crash machinery.
//!
//! Diagnostics carry stable `AUDnnn` codes, severities, locations, and
//! suggestions; [`AuditReport::render`] prints them one per line and
//! [`AuditReport::has_errors`] is the CI gate (`repro audit`).
//!
//! ## Example
//!
//! ```
//! use ickp_audit::audit_plan;
//! use ickp_heap::{ClassRegistry, FieldType};
//! use ickp_spec::{ListPattern, NodePattern, SpecShape, Specializer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let elem = reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
//! let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))])?;
//! let shape = SpecShape::object(
//!     holder,
//!     NodePattern::FrozenHere,
//!     vec![(0, SpecShape::list(elem, 1, 3, ListPattern::LastOnly))],
//! );
//! let plan = Specializer::new(&reg).compile(&shape)?;
//!
//! // A freshly compiled plan audits clean against its own declaration…
//! assert!(audit_plan(&plan, &shape, &reg).is_clean());
//!
//! // …but not against a declaration it was not compiled from.
//! let stale = SpecShape::object(
//!     holder,
//!     NodePattern::FrozenHere,
//!     vec![(0, SpecShape::list(elem, 1, 4, ListPattern::MayModify))],
//! );
//! assert!(audit_plan(&plan, &stale, &reg).has_errors());
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barriers;
mod coverage;
mod diag;
mod durability;
mod oracle;
mod shards;
mod soundness;
mod verify;

pub use barriers::{
    audit_barriers, audit_barriers_with, cross_validate_barriers, BarrierAudit,
    BarrierOracleReport, BarrierProbe, MutatorSpec,
};
pub use coverage::{expected_events, fmt_path, Event, Path, Step};
pub use diag::{AuditReport, DiagCode, Diagnostic, Location, Severity};
pub use durability::{
    audit_durability, cross_validate_durability, DurabilityAudit, DurabilityOracleReport,
    OpTraceSpec,
};
pub use oracle::{cross_validate, OracleReport};
pub use shards::{
    audit_shards, audit_shards_with, cross_validate_shards, shard_footprints, ShardAudit,
    ShardAuditConfig, ShardFootprint, ShardOracleReport, ShardSpec,
};
pub use soundness::{
    audit_phase_patterns, engine_footprints, recordable_bytes, PhaseFootprint, RECORD_HEADER_BYTES,
};
pub use verify::verify_plan;

/// Convenience alias for [`verify_plan`]: audits one compiled plan against
/// the declaration it claims to implement.
pub fn audit_plan(
    plan: &ickp_spec::Plan,
    shape: &ickp_spec::SpecShape,
    registry: &ickp_heap::ClassRegistry,
) -> AuditReport {
    verify_plan(plan, shape, registry)
}
