//! The diagnostic model shared by every audit pass.
//!
//! A [`Diagnostic`] is one verdict: a severity, a stable machine-readable
//! code (`AUD0xx` for plan-verifier findings, `AUD1xx` for pattern
//! soundness findings, `AUD2xx` for shard-interference findings, `AUD3xx`
//! for barrier-coverage findings, `AUD4xx` for durability-ordering
//! findings), the location it anchors to (a plan instruction, a shape
//! path, a phase, a shard, a mutator, a trace op), a human message, and
//! an optional suggestion.
//! Passes append diagnostics to an [`AuditReport`], which callers render
//! or query for error-severity findings (the CI gate).

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth money, not correctness: the declaration is sound but leaves
    /// statically provable pruning on the table.
    PerfLint,
    /// Suspicious but not unsound: the plan deviates from the idiomatic
    /// compiled form (extra loads, unguarded records, over-claimed
    /// dynamism) without corrupting the checkpoint stream.
    Warning,
    /// Unsound: executing the plan can panic, fail a guard on a conforming
    /// heap, or silently produce a checkpoint that misses modifications.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::PerfLint => "perf",
        })
    }
}

/// Stable diagnostic codes. `AUD0xx` come from the plan verifier, `AUD1xx`
/// from the pattern soundness checker, `AUD2xx` from the shard-interference
/// pass, `AUD3xx` from the barrier-coverage pass, `AUD4xx` from the
/// durability-ordering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// A register index is outside the plan's register file (`AUD001`).
    RegisterOutOfRange,
    /// A register is read on some path before any instruction defines it
    /// (`AUD002`).
    UseBeforeDef,
    /// A skip target lies beyond the end of the plan (`AUD003`).
    SkipPastEnd,
    /// A record template index is out of bounds (`AUD004`).
    TemplateOutOfRange,
    /// The plan's `has_dynamic` flag disagrees with its instructions
    /// (`AUD005`).
    DynamicFlagMismatch,
    /// A conditionally-executed instruction redefines a register that is
    /// live across the skip region (`AUD006`).
    ClobberedLiveRegister,
    /// A `Record` executes without a dominating modified-flag test
    /// (`AUD007`).
    UnguardedRecord,
    /// The plan never records an object the declaration marks recordable
    /// (`AUD010`).
    MissingCoverage,
    /// The plan records an object the declaration never marks recordable
    /// (`AUD011`).
    ExtraCoverage,
    /// The plan's record stream diverges from the declared pre-order
    /// (`AUD012`).
    CoverageMismatch,
    /// The plan's traversal visits different objects than the declaration
    /// implies (`AUD013`).
    VisitMismatch,
    /// A record template's class disagrees with the declared class at that
    /// point of the traversal (`AUD020`).
    TemplateClassMismatch,
    /// A load's class guard disagrees with the declared class (`AUD021`).
    ClassGuardMismatch,
    /// A load follows an edge the declaration does not declare (`AUD022`).
    UndeclaredEdge,
    /// A record template's field kinds disagree with the class layout
    /// (`AUD023`).
    TemplateLayoutMismatch,
    /// A static (`LoadRef`) load follows a declared-dynamic edge
    /// (`AUD024`).
    StaticLoadOnDynamicEdge,
    /// A list traversal loads past the declared length (`AUD025`).
    ListOverrun,
    /// A dynamic (`LoadDyn`) load follows a statically-shaped edge
    /// (`AUD026`).
    DynamicLoadOnStaticEdge,
    /// A list-end guard sits somewhere other than a declared list tail
    /// (`AUD027`).
    MisplacedListGuard,
    /// The declaration itself fails validation (`AUD030`).
    InvalidShape,
    /// A phase writes a subtree its declaration freezes: the specialized
    /// checkpoint silently misses those modifications (`AUD101`).
    UnderDeclaredPattern,
    /// A declaration leaves a subtree modifiable for a phase that provably
    /// never writes it (`AUD102`).
    OverDeclaredPattern,
    /// A phase performs writes but has no declared plan, forcing the
    /// generic checkpointer (`AUD103`).
    UndeclaredPhase,
    /// Two shards both emit the same object — a data race under parallel
    /// execution (`AUD201`).
    ShardOverlap,
    /// An object in the sequential coverage is emitted by no shard: the
    /// merged parallel stream silently drops it (`AUD202`).
    ShardMissingCoverage,
    /// A shard emits an object outside the sequential coverage, so the
    /// merged stream carries records the sequential engine would not
    /// (`AUD203`).
    ShardDoubleEmit,
    /// An object's emitting shard is not the first-touch owner predicted
    /// from root order, or the plan's root chunks are stale — the merged
    /// stream ceases to be byte-identical to sequential (`AUD204`).
    ShardOwnershipMismatch,
    /// The statically estimated record bytes of the heaviest shard exceed
    /// the imbalance threshold: the parallel speedup is bounded by one
    /// straggler (`AUD205`).
    ShardImbalance,
    /// A mutator can change an object's encoded bytes without leaving it
    /// modified and journaled: the journal fast path (and the incremental
    /// slow path) silently ships a stale stream (`AUD301`).
    BarrierUnjournaledWrite,
    /// A mutator can change reachability or traversal order without
    /// bumping `structure_version`: a cached `JournalCache` replays a
    /// stale pre-order (`AUD302`).
    BarrierMissedVersionBump,
    /// The write barrier journals byte-identical writes — sound but
    /// wasteful, quantified in fast-path records an all-identical-write
    /// epoch would re-encode (`AUD303`).
    BarrierOverJournaling,
    /// Dirty flags or the journal epoch are cleared outside the checkpoint
    /// protocol: modifications recorded by no checkpoint are marked clean
    /// (`AUD304`).
    BarrierEpochTamper,
    /// A mutator's declared effect is wider than the footprint its probe
    /// demonstrates — over-declaration, mirroring `AUD102` (`AUD305`).
    BarrierOverDeclaredEffect,
    /// A public heap mutator is absent from the audited `MutationCatalog`,
    /// so nothing proves its barrier obligations (`AUD306`).
    BarrierUncataloged,
    /// A reachable crash state contains un-fsynced bytes the client was
    /// already acknowledged for: a crash loses an acknowledged record
    /// (`AUD401`).
    DurabilityUnsyncedAck,
    /// A rename publishes a file whose content was never fsynced: the
    /// filesystem may reorder the data behind the visible name
    /// (`AUD402`).
    DurabilityRenameBeforeSync,
    /// An acknowledgement rests on namespace operations (create, rename,
    /// remove) with no covering parent-directory fsync (`AUD403`).
    DurabilityMissingDirFsync,
    /// A write lands inside a region the committed manifest already
    /// references — mutating acknowledged history in place (`AUD404`).
    DurabilityCommittedOverwrite,
    /// A replication acknowledgement reached the client before the batch
    /// was durable on both nodes (`AUD405`).
    DurabilityEarlyReplicationAck,
    /// The trace's operation indices do not tile the shared `OpCounter`
    /// space: some layer performed I/O outside the counted op stream, so
    /// the crash matrices cannot see it (`AUD406`).
    DurabilityUncountedOp,
    /// An fsync with nothing pending (or a directory fsync with no
    /// namespace changes) — a wasted syscall on the commit path
    /// (`AUD407`).
    DurabilityRedundantFsync,
    /// Consecutive single-record commits that group commit would merge,
    /// priced in the fsyncs a batch would save (`AUD408`).
    DurabilityMissedCoalescing,
}

impl DiagCode {
    /// The stable `AUDnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::RegisterOutOfRange => "AUD001",
            DiagCode::UseBeforeDef => "AUD002",
            DiagCode::SkipPastEnd => "AUD003",
            DiagCode::TemplateOutOfRange => "AUD004",
            DiagCode::DynamicFlagMismatch => "AUD005",
            DiagCode::ClobberedLiveRegister => "AUD006",
            DiagCode::UnguardedRecord => "AUD007",
            DiagCode::MissingCoverage => "AUD010",
            DiagCode::ExtraCoverage => "AUD011",
            DiagCode::CoverageMismatch => "AUD012",
            DiagCode::VisitMismatch => "AUD013",
            DiagCode::TemplateClassMismatch => "AUD020",
            DiagCode::ClassGuardMismatch => "AUD021",
            DiagCode::UndeclaredEdge => "AUD022",
            DiagCode::TemplateLayoutMismatch => "AUD023",
            DiagCode::StaticLoadOnDynamicEdge => "AUD024",
            DiagCode::ListOverrun => "AUD025",
            DiagCode::DynamicLoadOnStaticEdge => "AUD026",
            DiagCode::MisplacedListGuard => "AUD027",
            DiagCode::InvalidShape => "AUD030",
            DiagCode::UnderDeclaredPattern => "AUD101",
            DiagCode::OverDeclaredPattern => "AUD102",
            DiagCode::UndeclaredPhase => "AUD103",
            DiagCode::ShardOverlap => "AUD201",
            DiagCode::ShardMissingCoverage => "AUD202",
            DiagCode::ShardDoubleEmit => "AUD203",
            DiagCode::ShardOwnershipMismatch => "AUD204",
            DiagCode::ShardImbalance => "AUD205",
            DiagCode::BarrierUnjournaledWrite => "AUD301",
            DiagCode::BarrierMissedVersionBump => "AUD302",
            DiagCode::BarrierOverJournaling => "AUD303",
            DiagCode::BarrierEpochTamper => "AUD304",
            DiagCode::BarrierOverDeclaredEffect => "AUD305",
            DiagCode::BarrierUncataloged => "AUD306",
            DiagCode::DurabilityUnsyncedAck => "AUD401",
            DiagCode::DurabilityRenameBeforeSync => "AUD402",
            DiagCode::DurabilityMissingDirFsync => "AUD403",
            DiagCode::DurabilityCommittedOverwrite => "AUD404",
            DiagCode::DurabilityEarlyReplicationAck => "AUD405",
            DiagCode::DurabilityUncountedOp => "AUD406",
            DiagCode::DurabilityRedundantFsync => "AUD407",
            DiagCode::DurabilityMissedCoalescing => "AUD408",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What a diagnostic anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// An instruction of the audited plan, by index.
    PlanOp(usize),
    /// A path into the declared shape (see `coverage::fmt_path`).
    Shape(String),
    /// A phase of a phase-plan registry, by key.
    Phase(String),
    /// A shard of an audited shard plan, by index.
    Shard(usize),
    /// A heap mutator of an audited mutation catalog, by name.
    Mutator(String),
    /// An operation of an audited durability trace, by its `OpCounter`
    /// index.
    TraceOp(u64),
    /// No finer location applies.
    General,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::PlanOp(pc) => write!(f, "op {pc}"),
            Location::Shape(path) => write!(f, "shape {path}"),
            Location::Phase(key) => write!(f, "phase `{key}`"),
            Location::Shard(index) => write!(f, "shard {index}"),
            Location::Mutator(name) => write!(f, "mutator `{name}`"),
            Location::TraceOp(index) => write!(f, "trace op {index}"),
            Location::General => f.write_str("plan"),
        }
    }
}

/// One finding of one audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The finding's severity.
    pub severity: Severity,
    /// The stable code.
    pub code: DiagCode,
    /// Where the finding anchors.
    pub location: Location,
    /// What went wrong (or what is wasteful), in one sentence.
    pub message: String,
    /// An optional remedy.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no suggestion.
    pub fn new(
        severity: Severity,
        code: DiagCode,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { severity, code, location, message: message.into(), suggestion: None }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] at {}: {}", self.severity, self.code, self.location, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

/// The accumulated findings of one or more audit passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// Wraps a list of findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> AuditReport {
        AuditReport { diagnostics }
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn extend(&mut self, other: AuditReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` if any finding is [`Severity::Error`] — the CI gate.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// `true` if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Renders the report as one line per finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} perf lint(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::PerfLint),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_gates_on_errors() {
        let mut r = AuditReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(
            Severity::Warning,
            DiagCode::VisitMismatch,
            Location::PlanOp(3),
            "extra load",
        ));
        assert!(!r.has_errors());
        r.push(
            Diagnostic::new(
                Severity::Error,
                DiagCode::MissingCoverage,
                Location::Shape("$.s3[1]".into()),
                "never recorded",
            )
            .with_suggestion("declare the element position"),
        );
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        let rendered = r.render();
        assert!(rendered.contains("AUD010"));
        assert!(rendered.contains("1 error(s), 1 warning(s), 0 perf lint(s)"));
    }

    #[test]
    fn display_formats_are_stable() {
        let d = Diagnostic::new(
            Severity::Error,
            DiagCode::UseBeforeDef,
            Location::PlanOp(7),
            "r2 unbound",
        );
        assert_eq!(d.to_string(), "error[AUD002] at op 7: r2 unbound");
        assert_eq!(Location::Phase("bta".into()).to_string(), "phase `bta`");
        assert_eq!(Location::General.to_string(), "plan");
    }
}
