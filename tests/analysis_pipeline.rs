//! Integration of the analysis engine with every checkpointing layer:
//! the Table 1 pipeline as a correctness (not performance) test.

use ickp::analysis::{AnalysisEngine, Division, Phase};
use ickp::core::{
    restore, verify_restore, CheckpointConfig, CheckpointRecord, CheckpointStore, Checkpointer,
    MethodTable, RestorePolicy,
};
use ickp::minic::parse;
use ickp::minic::programs::image_program_source;
use ickp::spec::{render, GuardMode, SpecializedCheckpointer};

fn engine() -> AnalysisEngine {
    let program = parse(&image_program_source(4)).expect("program parses");
    AnalysisEngine::new(program, Division { dynamic_globals: vec!["image".into(), "work".into()] })
        .expect("engine builds")
}

#[test]
fn full_three_phase_run_with_per_iteration_checkpoints_recovers_exactly() {
    let mut engine = engine();
    let roots = engine.roots().to_vec();
    let table = MethodTable::derive(engine.heap().registry());
    let mut store = CheckpointStore::new();
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

    store.push(ckp.checkpoint(engine.heap_mut(), &table, &roots).unwrap()).unwrap();
    let mut recs: Vec<CheckpointRecord> = Vec::new();
    for phase in [Phase::SideEffect, Phase::BindingTime, Phase::EvalTime] {
        engine
            .run_phase(phase, |heap, roots, _| {
                let roots = roots.to_vec();
                recs.push(ckp.checkpoint(heap, &table, &roots)?);
                Ok(())
            })
            .unwrap();
    }
    for rec in recs {
        store.push(rec).unwrap();
    }

    let rebuilt = restore(&store, engine.heap().registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(engine.heap(), &roots, &rebuilt).unwrap(), None);

    // The restored heap carries the final analysis results.
    let schema = *engine.schema();
    let live_bt: Vec<i32> =
        roots.iter().map(|&a| schema.bt_ann(engine.heap(), a).unwrap()).collect();
    let restored_bt: Vec<i32> = roots
        .iter()
        .map(|&a| {
            let sid = engine.heap().stable_id(a).unwrap();
            let handle = rebuilt.lookup(sid).unwrap();
            schema.bt_ann(rebuilt.heap(), handle).unwrap()
        })
        .collect();
    assert_eq!(live_bt, restored_bt);
    assert!(live_bt.iter().any(|&b| b != 0), "some statements are dynamic");
    assert!(live_bt.contains(&0), "some statements are static");
}

#[test]
fn phase_plans_and_generic_agree_on_every_iteration_of_every_phase() {
    // Run two engines in lock-step over BTA + ETA; per iteration compare
    // the object sets recorded by the generic and phase-specialized
    // checkpointers.
    let mut e_generic = engine();
    let mut e_spec = engine();
    e_generic.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
    e_spec.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
    e_generic.heap_mut().reset_all_modified();
    e_spec.heap_mut().reset_all_modified();

    let table = MethodTable::derive(e_generic.heap().registry());
    let plans = e_spec.compile_phase_plans().unwrap();

    for phase in [Phase::BindingTime, Phase::EvalTime] {
        let mut generic_sizes = Vec::new();
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        e_generic
            .run_phase(phase, |heap, roots, _| {
                let roots = roots.to_vec();
                generic_sizes.push(ckp.checkpoint(heap, &table, &roots)?.len_bytes());
                Ok(())
            })
            .unwrap();

        let plan = plans.plan(phase.key()).unwrap();
        let mut spec_sizes = Vec::new();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        e_spec
            .run_phase(phase, |heap, roots, _| {
                let roots = roots.to_vec();
                spec_sizes.push(sc.checkpoint(heap, plan, &roots, None)?.len_bytes());
                Ok(())
            })
            .unwrap();

        assert_eq!(generic_sizes, spec_sizes, "{phase:?}");
        assert!(
            spec_sizes.iter().rev().skip(1).all(|&s| s >= *spec_sizes.last().unwrap()),
            "sizes shrink towards the fixpoint: {spec_sizes:?}"
        );
    }
}

#[test]
fn residual_code_for_the_analysis_attributes_matches_the_paper_shape() {
    let engine = engine();
    let schema = engine.schema();
    let registry = engine.heap().registry();

    let fig5 = render(registry, &schema.shape_structure_only(), "checkpoint_attr");
    assert!(fig5.contains("Attributes attributes = (Attributes)o;"));
    assert!(fig5.contains("BTEntry btEntry = attributes.bt;"));
    assert!(fig5.contains("c.checkpoint(attributes.se);"), "se lists stay generic");

    let fig6 = render(registry, &schema.shape_bta_phase(), "checkpoint_attr_btmodif");
    assert!(fig6.contains("btEntry"));
    assert!(!fig6.contains("etEntry"), "et subtree elided in the BTA phase");
    assert!(fig6.matches(".modified()").count() < fig5.matches(".modified()").count());
}

#[test]
fn iteration_checkpoints_shrink_as_the_fixpoint_converges() {
    let mut engine = engine();
    let roots = engine.roots().to_vec();
    let table = MethodTable::derive(engine.heap().registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    ckp.checkpoint(engine.heap_mut(), &table, &roots).unwrap();

    let mut recorded = Vec::new();
    engine
        .run_phase(Phase::SideEffect, |heap, roots, _| {
            let roots = roots.to_vec();
            recorded.push(ckp.checkpoint(heap, &table, &roots)?.stats().objects_recorded);
            Ok(())
        })
        .unwrap();
    assert!(recorded.len() >= 2);
    assert_eq!(*recorded.last().unwrap(), 0, "converged iteration records nothing: {recorded:?}");
    assert!(recorded[0] > 0);
}
