//! Cross-crate integration: the full pipeline from workload construction
//! through specialized checkpointing to verified recovery.

use ickp::backend::{Engine, GenericBackend, SpecializedBackend};
use ickp::core::{
    decode, restore, verify_restore, CheckpointConfig, CheckpointRecord, CheckpointStore,
    Checkpointer, MethodTable, RestorePolicy,
};
use ickp::heap::HeapSnapshot;
use ickp::spec::{GuardMode, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};

fn small_world() -> SynthWorld {
    SynthWorld::build(SynthConfig {
        structures: 25,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 2,
        seed: 31,
    })
    .expect("world builds")
}

#[test]
fn specialized_checkpoint_stream_restores_across_many_rounds() {
    let mut world = small_world();
    let roots = world.roots().to_vec();
    let plan = Specializer::new(world.heap().registry())
        .compile(&world.shape_structure_only())
        .expect("plan compiles");

    let mut store = CheckpointStore::new();
    let mut base = Checkpointer::new(CheckpointConfig::incremental());
    world.heap_mut().mark_all_modified();
    let table = MethodTable::derive(world.heap().registry());
    store.push(base.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();

    let mut spec = SpecializedCheckpointer::new(GuardMode::Checked);
    spec.set_next_seq(store.len() as u64);
    for pct in [100u8, 50, 25, 50, 100] {
        world.apply_modifications(&ModificationSpec::uniform(pct));
        let rec = spec.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap();
        store.push(rec).unwrap();
    }

    let rebuilt = restore(&store, world.heap().registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None);
}

#[test]
fn mixed_generic_and_specialized_records_interoperate_in_one_store() {
    let mut world = small_world();
    let roots = world.roots().to_vec();
    let table = MethodTable::derive(world.heap().registry());
    let plan = Specializer::new(world.heap().registry())
        .compile(&world.shape_structure_only())
        .expect("plan compiles");

    let mut store = CheckpointStore::new();
    let mut generic = Checkpointer::new(CheckpointConfig::incremental());
    let mut spec = SpecializedCheckpointer::new(GuardMode::Checked);

    world.heap_mut().mark_all_modified();
    let rec = generic.checkpoint(world.heap_mut(), &table, &roots).unwrap();
    store.push(rec).unwrap();

    for (i, pct) in [50u8, 25, 50].into_iter().enumerate() {
        world.apply_modifications(&ModificationSpec::uniform(pct));
        let rec = if i % 2 == 0 {
            spec.set_next_seq(store.len() as u64);
            spec.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap()
        } else {
            generic.set_next_seq(store.len() as u64);
            generic.checkpoint(world.heap_mut(), &table, &roots).unwrap()
        };
        store.push(rec).unwrap();
    }

    let rebuilt = restore(&store, world.heap().registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None);
}

#[test]
fn every_backend_engine_feeds_the_same_restore_path() {
    for engine in Engine::ALL {
        let mut world = small_world();
        let roots = world.roots().to_vec();

        let mut store = CheckpointStore::new();
        let mut gb = GenericBackend::new(engine, world.heap().registry());
        world.heap_mut().mark_all_modified();
        store.push(gb.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();

        let plan = Specializer::new(world.heap().registry())
            .compile(&world.shape_last_only(2))
            .expect("plan compiles");
        let mut sb = SpecializedBackend::new(engine, plan);
        for i in 0..3 {
            world.apply_modifications(&ModificationSpec {
                pct_modified: 60,
                modified_lists: 2,
                last_only: true,
            });
            let rec = sb.checkpoint(world.heap_mut(), &roots, None).unwrap();
            // Backends number their own records from 0; renumber for the
            // shared store (in-memory only — persisted stores should use
            // one driver's contiguous numbering instead).
            store
                .push(CheckpointRecord::from_parts(
                    1 + i,
                    rec.kind(),
                    rec.roots().to_vec(),
                    rec.bytes().to_vec(),
                    rec.stats(),
                ))
                .unwrap();
        }

        let rebuilt = restore(&store, world.heap().registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "{engine}");
    }
}

#[test]
fn all_variants_emit_identical_record_sets_for_the_same_dirty_state() {
    // Freeze one dirty state, then checkpoint it with every implementation
    // on clones of the heap: the decoded record sets must be identical.
    let mut world = small_world();
    world.apply_modifications(&ModificationSpec {
        pct_modified: 40,
        modified_lists: 3,
        last_only: false,
    });
    let roots = world.roots().to_vec();
    let registry = world.heap().registry().clone();
    let table = MethodTable::derive(&registry);
    let plan_structure =
        Specializer::new(&registry).compile(&world.shape_structure_only()).unwrap();
    let plan_lists = Specializer::new(&registry).compile(&world.shape_modified_lists(3)).unwrap();

    let mut record_sets: Vec<Vec<u64>> = Vec::new();

    // Generic.
    {
        let mut heap = world.heap().clone();
        let mut c = Checkpointer::new(CheckpointConfig::incremental());
        let rec = c.checkpoint(&mut heap, &table, &roots).unwrap();
        let d = decode(rec.bytes(), &registry).unwrap();
        let mut ids: Vec<u64> = d.objects.iter().map(|o| o.stable.raw()).collect();
        ids.sort_unstable();
        record_sets.push(ids);
    }
    // Specialized plans (structure / lists) and engine backends.
    for plan in [&plan_structure, &plan_lists] {
        let mut heap = world.heap().clone();
        let mut c = SpecializedCheckpointer::new(GuardMode::Checked);
        let rec = c.checkpoint(&mut heap, plan, &roots, None).unwrap();
        let d = decode(rec.bytes(), &registry).unwrap();
        let mut ids: Vec<u64> = d.objects.iter().map(|o| o.stable.raw()).collect();
        ids.sort_unstable();
        record_sets.push(ids);
    }
    for engine in Engine::ALL {
        let mut heap = world.heap().clone();
        let mut b = GenericBackend::new(engine, &registry);
        let rec = b.checkpoint(&mut heap, &roots).unwrap();
        let d = decode(rec.bytes(), &registry).unwrap();
        let mut ids: Vec<u64> = d.objects.iter().map(|o| o.stable.raw()).collect();
        ids.sort_unstable();
        record_sets.push(ids);
    }

    for (i, set) in record_sets.iter().enumerate().skip(1) {
        assert_eq!(set, &record_sets[0], "variant {i} diverged");
    }
    assert!(!record_sets[0].is_empty());
}

#[test]
fn garbage_collection_checkpointing_and_compaction_compose() {
    use ickp::core::compact;
    use ickp::heap::{ClassRegistry, FieldType, Heap, Value};

    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    let head = heap.alloc(node).unwrap();

    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut store = CheckpointStore::new();
    store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();

    // Churn: repeatedly replace the tail; superseded tails become garbage.
    for i in 0..5 {
        let tail = heap.alloc(node).unwrap();
        heap.set_field(tail, 0, Value::Int(i)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();
    }
    assert_eq!(heap.len(), 6, "head + 5 tails, 4 of them garbage");

    // Collect, then keep checkpointing: GC is invisible to the stream.
    let stats = heap.collect(&[head]).unwrap();
    assert_eq!(stats.freed, 4);
    heap.set_field(head, 0, Value::Int(99)).unwrap();
    store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();

    // Restore: old records resurrect garbage as unreachable extras; the
    // reachable state matches the live heap exactly.
    let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&heap, &[head], &rebuilt).unwrap(), None);
    assert!(rebuilt.len() > heap.len(), "restore materializes dead records too");

    // Compaction sheds them from the store for good.
    let compacted = compact(&store, heap.registry()).unwrap();
    let rebuilt2 = restore(&compacted, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
    assert_eq!(verify_restore(&heap, &[head], &rebuilt2).unwrap(), None);
    assert_eq!(rebuilt2.len(), heap.len(), "compacted store holds only the live set");
}

#[test]
fn snapshots_certify_checkpoint_transparency() {
    // Checkpointing must not change program-visible state: the logical
    // snapshot before and after a checkpoint is identical (only the
    // modified flags, which are checkpoint metadata, change).
    let mut world = small_world();
    let roots = world.roots().to_vec();
    world.apply_modifications(&ModificationSpec::uniform(50));
    let before = HeapSnapshot::capture(world.heap(), &roots).unwrap();

    let table = MethodTable::derive(world.heap().registry());
    let mut c = Checkpointer::new(CheckpointConfig::incremental());
    c.checkpoint(world.heap_mut(), &table, &roots).unwrap();

    let after = HeapSnapshot::capture(world.heap(), &roots).unwrap();
    assert_eq!(before, after);
    assert_eq!(before.state_hash(), after.state_hash());
}
