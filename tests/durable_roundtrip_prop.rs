//! Randomized round-trip property: for random worlds, random
//! modification sequences and every execution engine, a checkpoint run
//! survives *both* persistence paths — the in-memory ICKS container
//! (`save_store`/`load_store`) and the crash-safe segmented durable
//! store — and restores to exactly the live state, including after
//! `compact`.
//!
//! Driven by the in-repo seeded PRNG; each case is fully determined by
//! its seed, named in the assertion message for replay.

use ickp::backend::{Engine, GenericBackend};
use ickp::core::{
    compact, load_store, restore, save_store, verify_restore, CheckpointStore, RestorePolicy,
};
use ickp::durable::{DurableConfig, DurableStore, MemFs};
use ickp::heap::ClassRegistry;
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};
use ickp_prng::Prng;

fn random_config(rng: &mut Prng) -> SynthConfig {
    SynthConfig {
        structures: 1 + rng.index(6),
        lists_per_structure: 1 + rng.index(3),
        list_len: 1 + rng.index(4),
        ints_per_element: 1 + rng.index(2),
        seed: rng.next_u64(),
    }
}

/// Writes `store` through a durable store over a fresh in-memory
/// filesystem, reopens it, and returns the recovered store.
fn through_durable(
    store: &CheckpointStore,
    registry: &ClassRegistry,
    segment_target_bytes: u64,
) -> CheckpointStore {
    let config = DurableConfig { segment_target_bytes };
    let mut fs = MemFs::new();
    let mut durable = DurableStore::create(&mut fs, config).unwrap();
    for record in store.records() {
        durable.append(record).unwrap();
    }
    drop(durable);
    let (_, recovered) = DurableStore::open(&mut fs, config, registry).unwrap();
    recovered
}

#[test]
fn random_runs_round_trip_through_both_persistence_paths() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x00d0_7ab1_e000 ^ (case << 16));
        let config = random_config(&mut rng);
        let rounds = 1 + rng.index(4);
        let pcts: Vec<u8> = (0..rounds).map(|_| rng.below(101) as u8).collect();
        // Random segment target: from "roll on every append" to "never".
        let segment_target = 1u64 << (6 + rng.index(16));

        for engine in Engine::ALL {
            let mut world = SynthWorld::build(config).unwrap();
            let registry = world.heap().registry().clone();
            let roots = world.roots().to_vec();
            let mut backend = GenericBackend::new(engine, &registry);
            let mut store = CheckpointStore::new();

            world.heap_mut().mark_all_modified();
            store.push(backend.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();
            for &pct in &pcts {
                world.apply_modifications(&ModificationSpec::uniform(pct));
                store.push(backend.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();
            }

            // Path 1: the ICKS container.
            let mut disk = Vec::new();
            save_store(&store, &mut disk).unwrap();
            let loaded = load_store(disk.as_slice(), &registry).unwrap();
            let rebuilt = restore(&loaded, &registry, RestorePolicy::Lenient).unwrap();
            assert_eq!(
                verify_restore(world.heap(), &roots, &rebuilt).unwrap(),
                None,
                "case {case} engine {engine} via ICKS"
            );

            // Path 2: the durable segmented store.
            let recovered = through_durable(&store, &registry, segment_target);
            assert_eq!(recovered.len(), store.len(), "case {case} engine {engine}");
            for (a, b) in store.records().iter().zip(recovered.records()) {
                assert_eq!(a.bytes(), b.bytes(), "case {case} engine {engine} seq {}", a.seq());
            }
            let rebuilt = restore(&recovered, &registry, RestorePolicy::Lenient).unwrap();
            assert_eq!(
                verify_restore(world.heap(), &roots, &rebuilt).unwrap(),
                None,
                "case {case} engine {engine} via durable"
            );

            // Compaction commutes with durable persistence.
            let compacted = compact(&store, &registry).unwrap();
            let recovered = through_durable(&compacted, &registry, segment_target);
            let rebuilt = restore(&recovered, &registry, RestorePolicy::Lenient).unwrap();
            assert_eq!(
                verify_restore(world.heap(), &roots, &rebuilt).unwrap(),
                None,
                "case {case} engine {engine} via compact+durable"
            );
        }
    }
}
