//! Program evolution end to end: a specialized plan goes stale, the
//! guarded driver falls back safely, and re-profiling produces a fresh
//! plan for the new shape — the full maintenance story the paper's §6
//! contrasts against hand-written specialized routines.

use ickp::core::{restore, verify_restore, CheckpointStore, MethodTable, RestorePolicy};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp::spec::{GuardMode, ProfileRecorder, SpecializedCheckpointer, Specializer};

struct App {
    heap: Heap,
    roots: Vec<ObjectId>,
    elem: ickp::heap::ClassId,
}

/// Builds `n` holders each with a list of `len` elements.
fn app(n: usize, len: usize) -> App {
    let mut reg = ClassRegistry::new();
    let elem =
        reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    for _ in 0..n {
        let mut next = None;
        for _ in 0..len {
            let e = heap.alloc(elem).unwrap();
            heap.set_field(e, 1, Value::Ref(next)).unwrap();
            next = Some(e);
        }
        let h = heap.alloc(holder).unwrap();
        heap.set_field(h, 0, Value::Ref(next)).unwrap();
        roots.push(h);
    }
    App { heap, roots, elem }
}

fn dirty_tails(app: &mut App, round: i32) {
    for &root in &app.roots.clone() {
        let mut cur = app.heap.field(root, 0).unwrap().as_ref_id();
        let mut last = None;
        while let Some(e) = cur {
            last = Some(e);
            cur = app.heap.field(e, 1).unwrap().as_ref_id();
        }
        app.heap.set_field(last.unwrap(), 0, Value::Int(round)).unwrap();
    }
}

#[test]
fn evolve_fall_back_reprofile_respecialize() {
    let mut app = app(10, 3);
    let registry = app.heap.registry().clone();
    let table = MethodTable::derive(&registry);
    let mut store = CheckpointStore::new();
    let mut driver = SpecializedCheckpointer::new(GuardMode::Trusting);

    // Phase A: profile two rounds, infer, specialize.
    let mut recorder = ProfileRecorder::new();
    app.heap.mark_all_modified();
    recorder.observe(&app.heap, &app.roots).unwrap();
    app.heap.reset_all_modified();
    dirty_tails(&mut app, 1);
    recorder.observe(&app.heap, &app.roots).unwrap();
    let plan_v1 = Specializer::new(&registry).compile(&recorder.infer().unwrap()).unwrap();

    // Base checkpoint via fallback driver (everything is dirty at base).
    app.heap.mark_all_modified();
    let out =
        driver.checkpoint_or_fallback(&mut app.heap, &plan_v1, &app.roots.clone(), &table).unwrap();
    assert!(!out.fell_back);
    store.push(out.record).unwrap();

    // Steady state under plan v1.
    dirty_tails(&mut app, 2);
    let out =
        driver.checkpoint_or_fallback(&mut app.heap, &plan_v1, &app.roots.clone(), &table).unwrap();
    assert!(!out.fell_back);
    store.push(out.record).unwrap();

    // Phase B: the program evolves — every list grows by one element, so
    // plan v1's compiled length is stale.
    for &root in &app.roots.clone() {
        let old_head = app.heap.field(root, 0).unwrap();
        let e = app.heap.alloc(app.elem).unwrap();
        app.heap.set_field(e, 0, Value::Int(-7)).unwrap();
        app.heap.set_field(e, 1, old_head).unwrap();
        app.heap.set_field(root, 0, Value::Ref(Some(e))).unwrap();
    }
    let out =
        driver.checkpoint_or_fallback(&mut app.heap, &plan_v1, &app.roots.clone(), &table).unwrap();
    assert!(out.fell_back, "grown lists must trip the guards");
    store.push(out.record).unwrap();

    // Phase C: re-profile the new shape and specialize again.
    let mut recorder = ProfileRecorder::new();
    dirty_tails(&mut app, 3);
    recorder.observe(&app.heap, &app.roots).unwrap();
    let plan_v2 =
        Specializer::new(&registry).compile_optimized(&recorder.infer().unwrap()).unwrap();
    let out =
        driver.checkpoint_or_fallback(&mut app.heap, &plan_v2, &app.roots.clone(), &table).unwrap();
    assert!(!out.fell_back, "fresh plan matches the evolved shape");
    assert_eq!(out.record.stats().objects_recorded, 10, "one tail per structure");
    store.push(out.record).unwrap();

    // The whole history — specialized, fallback, re-specialized — recovers.
    let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&app.heap, &app.roots, &rebuilt).unwrap(), None);
}
