//! Integration of profile-guided specialization-class inference (the
//! paper's §7 future work) with the synthetic workload: profile a few
//! rounds, infer the declaration, compile it, and show the inferred plan
//! is as good as — and equivalent to — the hand-written one.

use ickp::core::{decode, MethodTable};
use ickp::spec::{GuardMode, ProfileRecorder, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};

fn world() -> SynthWorld {
    SynthWorld::build(SynthConfig {
        structures: 20,
        lists_per_structure: 4,
        list_len: 5,
        ints_per_element: 1,
        seed: 2024,
    })
    .expect("world builds")
}

#[test]
fn inferred_plan_matches_the_hand_written_declaration() {
    let mut w = world();
    let mods = ModificationSpec { pct_modified: 100, modified_lists: 2, last_only: true };

    // Profile three rounds of the phase.
    let mut recorder = ProfileRecorder::new();
    for _ in 0..3 {
        w.apply_modifications(&mods);
        recorder.observe(w.heap(), w.roots()).expect("observe");
        w.reset_modified();
    }

    let inferred = recorder.infer().expect("infer");
    let handwritten = w.shape_last_only(2);
    let spec = Specializer::new(w.heap().registry());
    let plan_inferred = spec.compile(&inferred).expect("inferred compiles");
    let plan_manual = spec.compile(&handwritten).expect("manual compiles");

    // The inferred declaration is exactly the one a programmer would
    // write for this phase, so the compiled plans coincide.
    assert_eq!(plan_inferred, plan_manual);
}

#[test]
fn inferred_plan_checkpoints_the_phase_correctly() {
    let mut w = world();
    // A quirkier phase: positions 0 and 3 of list 1 only. Inference must
    // discover it without being told.
    let dirty = |w: &mut SynthWorld, round: i32| {
        for s in 0..20 {
            for p in [0usize, 3] {
                let e = w.element(s, 1, p);
                w.heap_mut().set_field(e, 0, ickp::heap::Value::Int(round)).unwrap();
            }
        }
    };

    let mut recorder = ProfileRecorder::new();
    for round in 0..2 {
        dirty(&mut w, round);
        recorder.observe(w.heap(), w.roots()).expect("observe");
        w.reset_modified();
    }
    let plan = Specializer::new(w.heap().registry())
        .compile(&recorder.infer().expect("infer"))
        .expect("compiles");

    // Run the phase once more; the inferred plan must capture exactly the
    // generic checkpointer's records.
    dirty(&mut w, 99);
    let mut generic_heap = w.heap().clone();
    let roots = w.roots().to_vec();

    let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
    let spec_rec = sc.checkpoint(w.heap_mut(), &plan, &roots, None).expect("spec checkpoint");

    let table = MethodTable::derive(generic_heap.registry());
    let mut gc = ickp::core::Checkpointer::new(ickp::core::CheckpointConfig::incremental());
    let gen_rec = gc.checkpoint(&mut generic_heap, &table, &roots).expect("generic checkpoint");

    let ds = decode(spec_rec.bytes(), w.heap().registry()).unwrap();
    let dg = decode(gen_rec.bytes(), generic_heap.registry()).unwrap();
    assert_eq!(ds.objects, dg.objects);
    assert_eq!(ds.objects.len(), 20 * 2, "two records per structure");

    // And it does radically less work: 2 tests per structure instead of
    // a walk over all 21 objects.
    assert_eq!(spec_rec.stats().flag_tests, 20 * 2);
    assert_eq!(gen_rec.stats().flag_tests as usize, 20 * 21);
}

#[test]
fn inference_over_shifting_patterns_widens_the_declaration() {
    let mut w = world();
    let mut recorder = ProfileRecorder::new();
    // Round 1 dirties list 0's tails; round 2 dirties list 2's heads. The
    // union must survive in the inferred pattern.
    w.apply_modifications(&ModificationSpec {
        pct_modified: 100,
        modified_lists: 1,
        last_only: true,
    });
    recorder.observe(w.heap(), w.roots()).unwrap();
    w.reset_modified();
    for s in 0..20 {
        let e = w.element(s, 2, 0);
        w.heap_mut().set_field(e, 0, ickp::heap::Value::Int(5)).unwrap();
    }
    recorder.observe(w.heap(), w.roots()).unwrap();
    w.reset_modified();

    let plan = Specializer::new(w.heap().registry()).compile(&recorder.infer().unwrap()).unwrap();

    // Both phases' modifications are now visible to one plan.
    w.apply_modifications(&ModificationSpec {
        pct_modified: 100,
        modified_lists: 1,
        last_only: true,
    });
    for s in 0..20 {
        let e = w.element(s, 2, 0);
        w.heap_mut().set_field(e, 0, ickp::heap::Value::Int(9)).unwrap();
    }
    let roots = w.roots().to_vec();
    let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
    let rec = sc.checkpoint(w.heap_mut(), &plan, &roots, None).unwrap();
    assert_eq!(rec.stats().objects_recorded, 20 * 2);
}
