//! Markdown link checker: every relative link in the repo's operator-
//! facing documentation must point at a file that exists. Runs as a
//! tier-1 test and as the CI `lifecycle` job's link gate — docs that
//! reference `docs/LIFECYCLE.md` or an example keep working when files
//! move.

use std::path::{Path, PathBuf};

/// The documents whose links are part of the repo's contract.
const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/FORMAT.md",
    "docs/LIFECYCLE.md",
];

/// Extracts `](target)` link targets from one markdown document,
/// skipping code fences (markdown inside ``` blocks is illustrative,
/// not navigational).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            targets.push(rest[..close].to_string());
            rest = &rest[close + 1..];
        }
    }
    targets
}

/// `true` for targets the checker verifies: relative file paths. URLs
/// and in-page anchors are out of scope.
fn checkable(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty())
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc} must exist and be readable: {e}"));
        let base = path.parent().expect("doc has a parent dir").to_path_buf();
        for target in link_targets(&text) {
            if !checkable(&target) {
                continue;
            }
            // Strip a trailing anchor: `FORMAT.md#manifest` checks FORMAT.md.
            let file = target.split('#').next().expect("split yields at least one part");
            let resolved: PathBuf = base.join(file);
            if !resolved.exists() {
                broken.push(format!("{doc}: `{target}` -> {}", resolved.display()));
            }
            checked += 1;
        }
    }
    assert!(broken.is_empty(), "broken doc links:\n  {}", broken.join("\n  "));
    // The checker must actually be checking something; an accidentally
    // link-free doc set would make this test vacuous.
    assert!(checked >= 10, "only {checked} links found — did the docs lose their cross-links?");
}

#[test]
fn readme_examples_table_covers_every_example() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README exists");
    for entry in std::fs::read_dir(root.join("examples")).expect("examples dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_suffix(".rs") {
            assert!(
                readme.contains(stem),
                "examples/{name} is not mentioned in README.md — add it to the Examples table"
            );
        }
    }
}
