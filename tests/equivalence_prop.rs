//! Randomized cross-crate invariants, driven by synthetic worlds and
//! modification patterns.
//!
//! Previously written with `proptest`; rewritten over the in-repo seeded
//! PRNG so the suite builds with no network access. Each case is fully
//! determined by its seed, named in the assertion message for replay.

use ickp::core::{
    decode, restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp::spec::{GuardMode, ListPattern, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};
use ickp_prng::Prng;

fn random_config(rng: &mut Prng) -> SynthConfig {
    SynthConfig {
        structures: 1 + rng.index(11),
        lists_per_structure: 1 + rng.index(3),
        list_len: 1 + rng.index(5),
        ints_per_element: 1 + rng.index(3),
        seed: rng.next_u64(),
    }
}

fn random_mods(rng: &mut Prng, lists: usize) -> ModificationSpec {
    ModificationSpec {
        pct_modified: rng.below(101) as u8,
        modified_lists: rng.index(lists + 1),
        last_only: rng.next_bool(),
    }
}

/// For any world and any modification pattern, the structure-only
/// specialized checkpointer records exactly the objects the generic
/// incremental checkpointer records.
#[test]
fn spec_structure_equals_generic() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0xe9a1_0000 + case);
        let config = random_config(&mut rng);
        let pcts: Vec<u8> = (0..1 + rng.index(3)).map(|_| rng.below(101) as u8).collect();

        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let plan = Specializer::new(&registry).compile(&world.shape_structure_only()).unwrap();

        for pct in pcts {
            world.apply_modifications(&ModificationSpec::uniform(pct));
            let mut generic_heap = world.heap().clone();

            let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
            let spec_rec = sc.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap();

            let mut gc = Checkpointer::new(CheckpointConfig::incremental());
            let gen_rec = gc.checkpoint(&mut generic_heap, &table, &roots).unwrap();

            let ds = decode(spec_rec.bytes(), &registry).unwrap();
            let dg = decode(gen_rec.bytes(), &registry).unwrap();
            assert_eq!(ds.objects, dg.objects, "case {case}");
        }
    }
}

/// Any sequence of modification rounds, each followed by an incremental
/// checkpoint, restores to exactly the live state.
#[test]
fn incremental_sequences_restore_exactly() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x1c8e_0000 + case);
        let config = random_config(&mut rng);
        let lists = config.lists_per_structure;
        let rounds: Vec<ModificationSpec> =
            (0..1 + rng.index(4)).map(|_| random_mods(&mut rng, lists)).collect();

        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut store = CheckpointStore::new();
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

        world.heap_mut().mark_all_modified();
        store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();
        for mods in rounds {
            world.apply_modifications(&mods);
            let rec = ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap();
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, world.heap().registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "case {case}");
    }
}

/// A pattern-narrowed plan whose declaration covers all performed
/// modifications is interchangeable with the generic checkpointer in a
/// store (restore still exact).
#[test]
fn narrowed_plans_preserve_recoverability() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x9a88_0000 + case);
        let config = random_config(&mut rng);
        let lists = config.lists_per_structure;
        let k = 1 + rng.index(lists);
        let last_only = rng.next_bool();
        let pcts: Vec<u8> = (0..1 + rng.index(3)).map(|_| rng.below(101) as u8).collect();

        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let shape = world.shape_with_patterns(|l| {
            if l >= k {
                ListPattern::Unmodified
            } else if last_only {
                ListPattern::LastOnly
            } else {
                ListPattern::MayModify
            }
        });
        let plan = Specializer::new(&registry).compile(&shape).unwrap();

        let mut store = CheckpointStore::new();
        let mut base = Checkpointer::new(CheckpointConfig::incremental());
        world.heap_mut().mark_all_modified();
        store.push(base.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();

        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        sc.set_next_seq(store.len() as u64);
        for pct in pcts {
            // Modifications strictly within the declared pattern.
            world.apply_modifications(&ModificationSpec {
                pct_modified: pct,
                modified_lists: k,
                last_only,
            });
            let rec = sc.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap();
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "case {case}");
    }
}

/// Decoding never panics on arbitrary bytes — it returns an error.
#[test]
fn decode_is_total_on_garbage() {
    let world = SynthWorld::build(SynthConfig::small()).unwrap();
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0xdeca_0000 + case);
        let len = rng.index(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = decode(&bytes, world.heap().registry());
    }
}

/// Decoding is total even on streams with a valid header prefix.
#[test]
fn decode_is_total_on_corrupted_valid_streams() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0xf11b_0000 + case);
        let flip_at = rng.index(4096);
        let flip_to = rng.below(256) as u8;

        let mut world = SynthWorld::build(SynthConfig::small()).unwrap();
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        world.heap_mut().mark_all_modified();
        let rec = ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap();
        let mut bytes = rec.bytes().to_vec();
        if !bytes.is_empty() {
            let i = flip_at % bytes.len();
            bytes[i] = flip_to;
        }
        let _ = decode(&bytes, world.heap().registry());
    }
}
