//! Property-based cross-crate invariants, driven by randomized synthetic
//! worlds and modification patterns.

use ickp::core::{
    decode, restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp::spec::{GuardMode, ListPattern, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (1usize..12, 1usize..4, 1usize..6, 1usize..4, any::<u64>()).prop_map(
        |(structures, lists, len, ints, seed)| SynthConfig {
            structures,
            lists_per_structure: lists,
            list_len: len,
            ints_per_element: ints,
            seed,
        },
    )
}

fn arb_mods(lists: usize) -> impl Strategy<Value = ModificationSpec> {
    (0u8..=100, 0usize..=lists, any::<bool>()).prop_map(|(pct, k, last_only)| ModificationSpec {
        pct_modified: pct,
        modified_lists: k,
        last_only,
    })
}


proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any world and any modification pattern, the structure-only
    /// specialized checkpointer records exactly the objects the generic
    /// incremental checkpointer records.
    #[test]
    fn spec_structure_equals_generic((config, pcts) in arb_config().prop_flat_map(|c| {
        (Just(c), proptest::collection::vec(0u8..=100, 1..4))
    })) {
        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let plan = Specializer::new(&registry)
            .compile(&world.shape_structure_only())
            .unwrap();

        for pct in pcts {
            world.apply_modifications(&ModificationSpec::uniform(pct));
            let mut generic_heap = world.heap().clone();

            let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
            let spec_rec = sc.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap();

            let mut gc = Checkpointer::new(CheckpointConfig::incremental());
            let gen_rec = gc.checkpoint(&mut generic_heap, &table, &roots).unwrap();

            let ds = decode(spec_rec.bytes(), &registry).unwrap();
            let dg = decode(gen_rec.bytes(), &registry).unwrap();
            prop_assert_eq!(ds.objects, dg.objects);
        }
    }

    /// Any sequence of modification rounds, each followed by an
    /// incremental checkpoint, restores to exactly the live state.
    #[test]
    fn incremental_sequences_restore_exactly(
        (config, rounds) in arb_config().prop_flat_map(|c| {
            let lists = c.lists_per_structure;
            (Just(c), proptest::collection::vec(arb_mods(lists), 1..5))
        })
    ) {
        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut store = CheckpointStore::new();
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

        world.heap_mut().mark_all_modified();
        store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();
        for mods in rounds {
            world.apply_modifications(&mods);
            let rec = ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap();
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, world.heap().registry(), RestorePolicy::Lenient).unwrap();
        prop_assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None);
    }

    /// A pattern-narrowed plan whose declaration covers all performed
    /// modifications is interchangeable with the generic checkpointer in
    /// a store (restore still exact).
    #[test]
    fn narrowed_plans_preserve_recoverability(
        (config, k, last_only, pcts) in arb_config().prop_flat_map(|c| {
            let lists = c.lists_per_structure;
            (Just(c), 1..=lists, any::<bool>(), proptest::collection::vec(0u8..=100, 1..4))
        })
    ) {
        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let shape = world.shape_with_patterns(|l| {
            if l >= k {
                ListPattern::Unmodified
            } else if last_only {
                ListPattern::LastOnly
            } else {
                ListPattern::MayModify
            }
        });
        let plan = Specializer::new(&registry).compile(&shape).unwrap();

        let mut store = CheckpointStore::new();
        let mut base = Checkpointer::new(CheckpointConfig::incremental());
        world.heap_mut().mark_all_modified();
        store.push(base.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();

        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        sc.set_next_seq(store.len() as u64);
        for pct in pcts {
            // Modifications strictly within the declared pattern.
            world.apply_modifications(&ModificationSpec {
                pct_modified: pct,
                modified_lists: k,
                last_only,
            });
            let rec = sc.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap();
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
        prop_assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None);
    }

    /// Decoding never panics on arbitrary bytes — it returns an error.
    #[test]
    fn decode_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let world = SynthWorld::build(SynthConfig::small()).unwrap();
        let _ = decode(&bytes, world.heap().registry());
    }

    /// Decoding is total even on streams with a valid header prefix.
    #[test]
    fn decode_is_total_on_corrupted_valid_streams(
        (flip_at, flip_to) in (0usize..4096, any::<u8>())
    ) {
        let mut world = SynthWorld::build(SynthConfig::small()).unwrap();
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        world.heap_mut().mark_all_modified();
        let rec = ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap();
        let mut bytes = rec.bytes().to_vec();
        if !bytes.is_empty() {
            let i = flip_at % bytes.len();
            bytes[i] = flip_to;
        }
        let _ = decode(&bytes, world.heap().registry());
    }
}
