//! Stable storage across "process restarts": save a store to disk,
//! reload it in a fresh context, and resume the run.

use ickp::core::{
    load_store, restore, save_store, verify_restore, CheckpointConfig, CheckpointStore,
    Checkpointer, MethodTable, RestorePolicy,
};
use ickp::spec::{GuardMode, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ickp-int-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn a_run_survives_a_full_process_restart() {
    let path = temp_path("restart.icks");

    // ---- "Process 1": run, checkpoint, persist, crash. -----------------
    let registry = {
        let mut world = SynthWorld::build(SynthConfig {
            structures: 12,
            lists_per_structure: 3,
            list_len: 4,
            ints_per_element: 2,
            seed: 77,
        })
        .unwrap();
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        world.heap_mut().mark_all_modified();
        store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();
        for pct in [60u8, 30] {
            world.apply_modifications(&ModificationSpec::uniform(pct));
            store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();
        }
        save_store(&store, std::fs::File::create(&path).unwrap()).unwrap();
        world.heap().registry().clone()
        // world dropped: the "process" dies here.
    };

    // ---- "Process 2": reload, restore, resume with specialization. -----
    let loaded = load_store(std::fs::File::open(&path).unwrap(), &registry).unwrap();
    assert_eq!(loaded.len(), 3);
    let rebuilt = restore(&loaded, &registry, RestorePolicy::Lenient).unwrap();
    let roots = rebuilt.roots().to_vec();
    let mut heap = rebuilt.into_heap();

    // Resume: mutate and take a specialized checkpoint that appends to
    // the reloaded store.
    let spec = Specializer::new(&registry);
    // Rebuild the declaration from the live (restored) structures.
    let mut recorder = ickp::spec::ProfileRecorder::new();
    heap.mark_all_modified();
    recorder.observe(&heap, &roots).unwrap();
    heap.reset_all_modified();
    let plan = spec.compile(&recorder.infer().unwrap()).unwrap();

    // Dirty one structure's subtree and checkpoint with the inferred plan.
    let first_list_head = heap.field(roots[0], 0).unwrap().as_ref_id().unwrap();
    heap.set_field(first_list_head, 0, ickp::heap::Value::Int(123)).unwrap();
    let mut store = loaded;
    let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
    sc.set_next_seq(store.latest().unwrap().seq() + 1);
    let rec = sc.checkpoint(&mut heap, &plan, &roots, None).unwrap();
    store.push(rec).unwrap();
    save_store(&store, std::fs::File::create(&path).unwrap()).unwrap();

    // ---- "Process 3": final recovery equals the resumed state. ---------
    let reloaded = load_store(std::fs::File::open(&path).unwrap(), &registry).unwrap();
    let final_rebuild = restore(&reloaded, &registry, RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(&heap, &roots, &final_rebuild).unwrap(), None);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn loading_with_the_wrong_registry_is_detected() {
    let path = temp_path("wrong-registry.icks");
    let mut world = SynthWorld::build(SynthConfig::small()).unwrap();
    let roots = world.roots().to_vec();
    let table = MethodTable::derive(world.heap().registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut store = CheckpointStore::new();
    world.heap_mut().mark_all_modified();
    store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).unwrap()).unwrap();
    save_store(&store, std::fs::File::create(&path).unwrap()).unwrap();

    // A registry with different layouts cannot decode the records.
    let mut other = ickp::heap::ClassRegistry::new();
    other.define("X", None, &[("a", ickp::heap::FieldType::Bool)]).unwrap();
    assert!(load_store(std::fs::File::open(&path).unwrap(), &other).is_err());

    let _ = std::fs::remove_file(&path);
}
