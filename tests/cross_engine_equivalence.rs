//! Cross-engine equivalence: every checkpoint producer in the workspace —
//! generic sequential, specialized (interpreted, both guard modes),
//! threaded-code, and the parallel sharded engine — must be
//! restore-equivalent on the same heap states, and their records must be
//! freely mixable within one store.
//!
//! Randomized over synthetic worlds with the in-repo seeded PRNG; each
//! case is fully determined by its seed, named in the assertion message.

use ickp::analysis::{AnalysisEngine, Division, Phase};
use ickp::backend::{Engine, ParallelBackend, SpecializedBackend};
use ickp::core::{
    compact, decode, restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer,
    MethodTable, RestorePolicy,
};
use ickp::minic::{parse, programs::image_program_source};
use ickp::spec::{GuardMode, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};
use ickp_prng::Prng;

fn random_config(rng: &mut Prng) -> SynthConfig {
    SynthConfig {
        structures: 1 + rng.index(11),
        lists_per_structure: 1 + rng.index(3),
        list_len: 1 + rng.index(5),
        ints_per_element: 1 + rng.index(3),
        seed: rng.next_u64(),
    }
}

/// On identical heap states, every engine emits a stream decoding to the
/// same object records — and the parallel engine's stream is byte-for-byte
/// the generic sequential one's.
#[test]
fn all_engines_record_the_same_objects() {
    for case in 0..32u64 {
        let mut rng = Prng::seed_from_u64(0x5ead_0000 + case);
        let config = random_config(&mut rng);
        let pct = rng.below(101) as u8;
        let workers = 1 + rng.index(6);

        let mut world = SynthWorld::build(config).unwrap();
        world.apply_modifications(&ModificationSpec::uniform(pct));
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let plan = Specializer::new(&registry).compile(&world.shape_structure_only()).unwrap();

        let mut generic_heap = world.heap().clone();
        let reference = Checkpointer::new(CheckpointConfig::incremental())
            .checkpoint(&mut generic_heap, &table, &roots)
            .unwrap();
        let expect = decode(reference.bytes(), &registry).unwrap();

        // Parallel: byte-identical, not merely record-equivalent.
        let mut par_heap = world.heap().clone();
        let par =
            ParallelBackend::new(workers, &registry).checkpoint(&mut par_heap, &roots).unwrap();
        assert_eq!(par.bytes(), reference.bytes(), "case {case} (parallel, {workers} workers)");

        // Specialized interpreter under both guard modes.
        for mode in [GuardMode::Trusting, GuardMode::Checked] {
            let mut heap = world.heap().clone();
            let rec = SpecializedCheckpointer::new(mode)
                .checkpoint(&mut heap, &plan, &roots, None)
                .unwrap();
            let got = decode(rec.bytes(), &registry).unwrap();
            assert_eq!(got.objects, expect.objects, "case {case} ({mode:?})");
        }

        // Threaded code (Jdk12 runs the plan threaded on every round).
        let mut heap = world.heap().clone();
        let rec = SpecializedBackend::new(Engine::Jdk12, plan.clone())
            .checkpoint(&mut heap, &roots, None)
            .unwrap();
        let got = decode(rec.bytes(), &registry).unwrap();
        assert_eq!(got.objects, expect.objects, "case {case} (threaded)");
    }
}

/// A single store fed by rotating producers — parallel base, then
/// generic / specialized / threaded / parallel increments — restores to
/// exactly the live state.
#[test]
fn mixed_engine_stores_restore_exactly() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x3713_0000 + case);
        let config = random_config(&mut rng);
        let lists = config.lists_per_structure;
        let rounds = 2 + rng.index(5);
        let workers = 1 + rng.index(6);

        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(&registry);
        let plan = Specializer::new(&registry).compile(&world.shape_structure_only()).unwrap();

        let mut store = CheckpointStore::new();
        let mut parallel = ParallelBackend::new(workers, &registry);
        let mut generic = Checkpointer::new(CheckpointConfig::incremental());
        let mut spec = SpecializedCheckpointer::new(GuardMode::Checked);
        let mut threaded = SpecializedBackend::new(Engine::Jdk12, plan.clone());

        world.heap_mut().mark_all_modified();
        store.push(parallel.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();

        for round in 0..rounds {
            world.apply_modifications(&ModificationSpec {
                pct_modified: rng.below(101) as u8,
                modified_lists: lists,
                last_only: false,
            });
            let seq = store.len() as u64;
            let rec = match round % 4 {
                0 => {
                    generic.set_next_seq(seq);
                    generic.checkpoint(world.heap_mut(), &table, &roots).unwrap()
                }
                1 => {
                    spec.set_next_seq(seq);
                    spec.checkpoint(world.heap_mut(), &plan, &roots, None).unwrap()
                }
                2 => {
                    threaded.set_next_seq(seq);
                    threaded.checkpoint(world.heap_mut(), &roots, None).unwrap()
                }
                _ => {
                    parallel.set_next_seq(seq);
                    parallel.checkpoint(world.heap_mut(), &roots).unwrap()
                }
            };
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "case {case}");
    }
}

/// Compacting a store produced by the parallel engine preserves the
/// recoverable state, and the compacted store satisfies the strict
/// full-base restore policy.
#[test]
fn compaction_after_parallel_checkpoints_preserves_state() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0xc0de_ca11 + case);
        let config = random_config(&mut rng);
        let lists = config.lists_per_structure;
        let rounds = 1 + rng.index(4);
        let workers = 1 + rng.index(6);

        let mut world = SynthWorld::build(config).unwrap();
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let mut backend = ParallelBackend::new(workers, &registry);

        let mut store = CheckpointStore::new();
        world.heap_mut().mark_all_modified();
        store.push(backend.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();
        for _ in 0..rounds {
            world.apply_modifications(&ModificationSpec {
                pct_modified: rng.below(101) as u8,
                modified_lists: lists,
                last_only: rng.next_bool(),
            });
            store.push(backend.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();
        }

        let compacted = compact(&store, &registry).unwrap();
        assert_eq!(compacted.len(), 1, "case {case}");
        let rebuilt = restore(&compacted, &registry, RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "case {case}");

        // And the run can continue: one more parallel increment on top of
        // the compacted base still restores exactly.
        let mut continued = compacted;
        world.apply_modifications(&ModificationSpec::uniform(40));
        backend.set_next_seq(continued.latest().unwrap().seq() + 1);
        continued.push(backend.checkpoint(world.heap_mut(), &roots).unwrap()).unwrap();
        let rebuilt = restore(&continued, &registry, RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(world.heap(), &roots, &rebuilt).unwrap(), None, "case {case}");
    }
}

/// The realistic workload: the program-analysis engine's attribute heap,
/// checkpointed in parallel across binding-time iterations, restores to
/// exactly the live analysis state.
#[test]
fn analysis_workload_restores_exactly_under_the_parallel_engine() {
    let program = parse(&image_program_source(6)).expect("program parses");
    let mut engine = AnalysisEngine::new(
        program,
        Division { dynamic_globals: vec!["image".into(), "work".into()] },
    )
    .expect("engine builds");
    engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).expect("SE");
    engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).expect("BTA");

    let roots = engine.roots().to_vec();
    let registry = engine.heap().registry().clone();
    let schema = *engine.schema();
    let mut backend = ParallelBackend::new(4, &registry);
    let mut store = CheckpointStore::new();

    engine.heap_mut().mark_all_modified();
    store.push(backend.checkpoint(engine.heap_mut(), &roots).unwrap()).unwrap();

    // Simulated further iterations dirtying slices of the annotations.
    for round in 0..3i32 {
        for (i, &attrs) in roots.clone().iter().enumerate() {
            if i % 7 == round as usize % 7 {
                schema.set_bt_ann(engine.heap_mut(), attrs, 200 + round).expect("set ann");
            }
        }
        store.push(backend.checkpoint(engine.heap_mut(), &roots).unwrap()).unwrap();
    }

    let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
    assert_eq!(verify_restore(engine.heap(), &roots, &rebuilt).unwrap(), None);
}
