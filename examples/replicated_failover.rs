//! Lose the primary machine mid-batch, promote the standby, same answer.
//!
//! ```text
//! cargo run --release --example replicated_failover
//! ```
//!
//! `durable_recovery` survives a process crash because the bytes are
//! still on the local disk. This example survives losing the *disk*: a
//! computation checkpoints through a [`ReplicaPair`], which group-commits
//! batches on the primary and ships every committed batch to a follower
//! before acknowledging it. The fault-injection filesystem then kills
//! the primary in the middle of a batch commit — machine gone, disk and
//! all. The follower's directory is promoted into an ordinary
//! single-node store, the computation resumes from the last *replicated*
//! checkpoint, and finishes with exactly the reference answer.

use ickp::core::{
    restore, verify_restore, CheckpointConfig, Checkpointer, MethodTable, RestorePolicy,
};
use ickp::durable::{DurableConfig, FailFs, FaultPlan, MemFs, OpCounter};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp::replicate::{promote, ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan};

const CELLS: usize = 48;
const ROUNDS: u64 = 40;
const CHECKPOINT_EVERY: u64 = 5;

fn build_world() -> Result<(Heap, Vec<ObjectId>), Box<dyn std::error::Error>> {
    let mut registry = ClassRegistry::new();
    let cell =
        registry.define("Cell", None, &[("id", FieldType::Int), ("acc", FieldType::Long)])?;
    let mut heap = Heap::new(registry);
    let mut cells = Vec::with_capacity(CELLS);
    for i in 0..CELLS {
        let c = heap.alloc(cell)?;
        heap.set_field(c, 0, Value::Int(i as i32))?;
        heap.set_field(c, 1, Value::Long(0))?;
        cells.push(c);
    }
    Ok((heap, cells))
}

/// One round of "work": deterministic, so two runs agree iff no update
/// was lost.
fn work(heap: &mut Heap, cells: &[ObjectId], round: u64) -> Result<(), Box<dyn std::error::Error>> {
    for (i, &c) in cells.iter().enumerate() {
        let acc = match heap.field(c, 1)? {
            Value::Long(v) => v,
            other => panic!("acc is a Long, got {other:?}"),
        };
        let term = (round as i64).wrapping_mul(37).wrapping_add(i as i64 * 11 + 1);
        heap.set_field(c, 1, Value::Long(acc.wrapping_add(term)))?;
    }
    Ok(())
}

fn accs(heap: &Heap, cells: &[ObjectId]) -> Vec<i64> {
    cells
        .iter()
        .map(|&c| match heap.field(c, 1).expect("live cell") {
            Value::Long(v) => v,
            other => panic!("acc is a Long, got {other:?}"),
        })
        .collect()
}

/// Runs the replicated computation until the primary dies (or the end).
/// Returns the round the run died in and how many records were
/// acknowledged — i.e. durable on *both* nodes.
fn replicated_run(
    pfs: &mut FailFs,
    ffs: &mut FailFs,
    link: &mut ChannelTransport,
    config: ReplicateConfig,
) -> Result<(Option<u64>, u64), Box<dyn std::error::Error>> {
    let (mut heap, cells) = build_world()?;
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let registry = heap.registry().clone();
    let mut pair = ReplicaPair::create(pfs, ffs, link, config, &registry)?;

    heap.mark_all_modified();
    let mut died_at_round = None;
    if pair.append(ckp.checkpoint(&mut heap, &table, &cells)?).is_err() {
        died_at_round = Some(0);
    }
    if died_at_round.is_none() {
        for round in 1..=ROUNDS {
            work(&mut heap, &cells, round)?;
            if round % CHECKPOINT_EVERY == 0 {
                let record = ckp.checkpoint(&mut heap, &table, &cells)?;
                let outcome = if round == ROUNDS {
                    pair.append(record).and_then(|()| pair.commit())
                } else {
                    pair.append(record)
                };
                if outcome.is_err() {
                    died_at_round = Some(round);
                    break;
                }
            }
        }
    }
    let acked = pair.acked_records();
    if died_at_round.is_none() {
        let stats = pair.stats();
        println!(
            "baseline: {} records in {} shipped batches, {} wire bytes",
            acked, stats.batches_shipped, stats.wire_bytes
        );
    }
    Ok((died_at_round, acked))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Reference: the uninterrupted, unreplicated run.
    // ------------------------------------------------------------------
    let (mut heap, cells) = build_world()?;
    for round in 1..=ROUNDS {
        work(&mut heap, &cells, round)?;
    }
    let expected = accs(&heap, &cells);
    let registry = heap.registry().clone();
    println!("reference run: {ROUNDS} rounds, no interruption");

    let config = ReplicateConfig {
        durable: DurableConfig { segment_target_bytes: 4 * 1024 },
        batch_records: 2,
        ..ReplicateConfig::default()
    };

    // ------------------------------------------------------------------
    // Fault-free replicated baseline: counts the interleaved operations
    // (primary I/O, follower I/O, wire sends) so the kill lands at a
    // reproducible spot — two thirds in, mid-run, mid-batch.
    // ------------------------------------------------------------------
    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
    let (died, total_records) = replicated_run(&mut pfs, &mut ffs, &mut link, config)?;
    assert_eq!(died, None, "the fault-free baseline must complete");
    let kill_at = counter.count() * 2 / 3;

    // ------------------------------------------------------------------
    // The failover run: the primary machine dies at operation {kill_at}.
    // ------------------------------------------------------------------
    let counter = OpCounter::new();
    let mut pfs = FailFs::with_counter(MemFs::new(), FaultPlan::crash_at(kill_at), counter.clone());
    let mut ffs = FailFs::with_counter(MemFs::new(), FaultPlan::none(), counter.clone());
    let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter);
    let (died_at_round, acked) = replicated_run(&mut pfs, &mut ffs, &mut link, config)?;
    let died_at_round = died_at_round.expect("the fault plan kills the primary");
    assert!(pfs.crashed());
    println!(
        "primary died at interleaved op {kill_at} (round {died_at_round}); \
         {acked} of {total_records} checkpoints were replicated"
    );

    // The primary and everything on it is gone. Only the follower's
    // durable image survives; promote it into a standalone store.
    drop(pfs);
    let mut standby_disk = ffs.into_recovered();
    let (mut store, recovered) = promote(&mut standby_disk, config.durable, &registry)?;
    assert_eq!(recovered.len() as u64, acked, "the standby holds exactly the acknowledged prefix");
    let durable_round = (recovered.len() as u64 - 1) * CHECKPOINT_EVERY;
    println!(
        "promoted the standby: {} checkpoints on disk, resuming after round {durable_round}",
        recovered.len()
    );
    assert!(durable_round < died_at_round || died_at_round == 0);

    // Redo the lost rounds on the promoted node; sequence numbers
    // continue where the replicated log left off.
    let rebuilt = restore(&recovered, &registry, RestorePolicy::Lenient)?;
    let cells = rebuilt.roots().to_vec();
    let mut heap = rebuilt.into_heap();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    ckp.set_next_seq(recovered.latest().expect("non-empty").seq() + 1);
    for round in durable_round + 1..=ROUNDS {
        work(&mut heap, &cells, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            store.append(&ckp.checkpoint(&mut heap, &table, &cells)?)?;
        }
    }

    // ------------------------------------------------------------------
    // The verdict: same answer, and the promoted disk tells the story.
    // ------------------------------------------------------------------
    let got = accs(&heap, &cells);
    assert_eq!(got, expected, "failover run diverged from the reference");
    drop(store);
    let (_, finished) = promote(&mut standby_disk, config.durable, &registry)?;
    let rebuilt = restore(&finished, &registry, RestorePolicy::Lenient)?;
    assert_eq!(verify_restore(&heap, &cells, &rebuilt)?, None);
    println!(
        "failover run matches the reference ({} cells, checksum {})",
        CELLS,
        got.iter().fold(0i64, |a, v| a.wrapping_mul(31).wrapping_add(*v))
    );
    Ok(())
}
