//! Fault-tolerance end to end: a long-running computation checkpoints
//! periodically, "crashes", recovers from the checkpoint store, and
//! finishes — producing the same answer an uninterrupted run produces.
//!
//! The computation is a bank of accumulators that evolve over many
//! rounds; a crash destroys the heap between two rounds.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use ickp::core::{
    restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable, RestorePolicy,
};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

const CELLS: usize = 64;
const ROUNDS: i64 = 40;
const CRASH_AT: i64 = 25;
const CHECKPOINT_EVERY: i64 = 5;

/// One round of "work": every third cell accumulates.
fn step(heap: &mut Heap, cells: &[ObjectId], round: i64) -> Result<(), Box<dyn std::error::Error>> {
    for (i, &cell) in cells.iter().enumerate() {
        if (i as i64 + round) % 3 == 0 {
            let old = heap.field(cell, 0)?.as_long().unwrap_or(0);
            heap.set_field(cell, 0, Value::Long(old + round * i as i64))?;
        }
    }
    Ok(())
}

fn build(registry: ClassRegistry) -> Result<(Heap, Vec<ObjectId>), Box<dyn std::error::Error>> {
    let mut heap = Heap::new(registry);
    let cell_class = heap.registry().id_of("Cell")?;
    let cells: Vec<ObjectId> =
        (0..CELLS).map(|_| heap.alloc(cell_class)).collect::<Result<_, _>>()?;
    Ok((heap, cells))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = ClassRegistry::new();
    registry.define("Cell", None, &[("acc", FieldType::Long)])?;

    // ---- Reference run: no crash. -------------------------------------
    let (mut ref_heap, ref_cells) = build(registry.clone())?;
    for round in 1..=ROUNDS {
        step(&mut ref_heap, &ref_cells, round)?;
    }
    let expected: Vec<i64> =
        ref_cells.iter().map(|&c| ref_heap.field(c, 0).unwrap().as_long().unwrap()).collect();

    // ---- Fault-tolerant run. -------------------------------------------
    let (mut heap, mut cells) = build(registry.clone())?;
    let methods = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut store = CheckpointStore::new();

    // Base checkpoint, then checkpoint every CHECKPOINT_EVERY rounds.
    store.push(ckp.checkpoint(&mut heap, &methods, &cells)?)?;
    let mut last_checkpointed_round = 0i64;
    let mut round = 1i64;
    let mut crashed = false;

    while round <= ROUNDS {
        if round == CRASH_AT && !crashed {
            crashed = true;
            println!(
                "CRASH at round {round} (last checkpoint covered round {last_checkpointed_round})"
            );
            // The heap is gone. Recover from stable storage.
            let rebuilt = restore(&store, &registry, RestorePolicy::Lenient)?;
            let recovered_cells = rebuilt.roots().to_vec();
            let recovered_heap = rebuilt.into_heap();
            println!(
                "recovered {} cells; replaying from round {}",
                recovered_cells.len(),
                last_checkpointed_round + 1
            );
            // Resume from the round after the last checkpoint.
            round = last_checkpointed_round + 1;
            heap = recovered_heap;
            cells = recovered_cells;
            continue;
        }
        step(&mut heap, &cells, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            let rec = ckp.checkpoint(&mut heap, &methods, &cells)?;
            println!(
                "round {round}: checkpoint {} ({} objects, {} bytes)",
                rec.seq(),
                rec.stats().objects_recorded,
                rec.len_bytes()
            );
            store.push(rec)?;
            last_checkpointed_round = round;
        }
        round += 1;
    }

    let actual: Vec<i64> =
        cells.iter().map(|&c| heap.field(c, 0).unwrap().as_long().unwrap()).collect();
    assert_eq!(expected, actual, "recovered run must equal uninterrupted run");
    println!("\nrecovered run matches the uninterrupted run on all {CELLS} cells ✓");
    println!("store held {} checkpoints, {} bytes total", store.len(), store.total_bytes());
    Ok(())
}
