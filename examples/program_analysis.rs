//! The paper's realistic application: checkpointing a program-analysis
//! engine, with a phase-specialized checkpointer per analysis phase.
//!
//! Analyzes the generated ≈750-line image-manipulation mini-C program,
//! checkpoints after every fixpoint iteration of every phase, and prints
//! the per-iteration incremental checkpoint sizes — watch them shrink as
//! each analysis converges, and watch the specialized plans do the same
//! work with no virtual dispatch and almost no flag tests.
//!
//! ```text
//! cargo run --release --example program_analysis
//! ```

use ickp::analysis::{AnalysisEngine, Division, Phase};
use ickp::core::{
    restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp::minic::programs::image_program;
use ickp::spec::{GuardMode, SpecializedCheckpointer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = image_program();
    println!(
        "analyzing generated image program: {} functions, {} statements",
        program.functions.len(),
        program.stmt_count
    );

    let mut engine = AnalysisEngine::new(
        program,
        Division { dynamic_globals: vec!["image".into(), "work".into()] },
    )?;
    println!("attributes structures allocated: {}\n", engine.roots().len());

    let plans = engine.compile_phase_plans()?;
    let methods = MethodTable::derive(engine.heap().registry());
    let mut store = CheckpointStore::new();
    let mut generic = Checkpointer::new(CheckpointConfig::incremental());

    // Base checkpoint: the recovery line before any analysis runs.
    let roots = engine.roots().to_vec();
    let base = generic.checkpoint(engine.heap_mut(), &methods, &roots)?;
    println!(
        "base checkpoint: {} objects, {} bytes\n",
        base.stats().objects_recorded,
        base.len_bytes()
    );
    store.push(base)?;

    // Side-effect analysis: its results are variable-length lists, so the
    // generic (virtual-dispatch) checkpointer handles this phase.
    let mut recs = Vec::new();
    let report = engine.run_phase(Phase::SideEffect, |heap, roots, iter| {
        let roots = roots.to_vec();
        let rec = generic.checkpoint(heap, &methods, &roots)?;
        println!(
            "  seffect iter {iter}: {:>7} bytes, {:>4} objects recorded (generic)",
            rec.len_bytes(),
            rec.stats().objects_recorded
        );
        recs.push(rec);
        Ok(())
    })?;
    for rec in recs.drain(..) {
        store.push(rec)?;
    }
    println!("side-effect analysis: {} iterations\n", report.iterations);

    // Binding-time and evaluation-time phases: the Figure 6 specialized
    // plans, which skip the other phases' subtrees outright.
    for phase in [Phase::BindingTime, Phase::EvalTime] {
        let plan = plans.plan(phase.key()).expect("phase plan registered");
        let mut spec = SpecializedCheckpointer::new(GuardMode::Checked);
        // Continue the store's contiguous numbering from this driver.
        spec.set_next_seq(store.len() as u64);
        let report = engine.run_phase(phase, |heap, roots, iter| {
            let roots = roots.to_vec();
            let rec = spec.checkpoint(heap, plan, &roots, None)?;
            println!(
                "  {} iter {iter}: {:>7} bytes, {:>4} objects recorded, {} flag tests, {} virtual calls",
                phase.key(),
                rec.len_bytes(),
                rec.stats().objects_recorded,
                rec.stats().flag_tests,
                rec.stats().virtual_calls,
            );
            recs.push(rec);
            Ok(())
        })?;
        for rec in recs.drain(..) {
            store.push(rec)?;
        }
        println!(
            "{} phase: {} iterations, {} annotation writes\n",
            phase.key(),
            report.iterations,
            report.annotation_writes
        );
    }

    // Crash! Rebuild everything from the store and verify.
    println!("store: {} checkpoints, {} total bytes", store.len(), store.total_bytes());
    let rebuilt = restore(&store, engine.heap().registry(), RestorePolicy::Lenient)?;
    match verify_restore(engine.heap(), &roots, &rebuilt)? {
        None => println!("recovery verified: all {} attribute trees restored exactly", roots.len()),
        Some(diff) => println!("recovery diverged: {diff}"),
    }
    Ok(())
}
