//! Quickstart: define classes, mutate objects, take incremental
//! checkpoints, and restore.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ickp::core::{
    restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp::heap::{ClassRegistry, FieldType, Heap, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define the classes of a tiny linked structure.
    let mut registry = ClassRegistry::new();
    let node = registry.define(
        "Node",
        None,
        &[("value", FieldType::Int), ("next", FieldType::Ref(None))],
    )?;

    // 2. Build `head -> mid -> tail` on the managed heap.
    let mut heap = Heap::new(registry);
    let tail = heap.alloc(node)?;
    let mid = heap.alloc(node)?;
    let head = heap.alloc(node)?;
    heap.set_field(mid, 1, Value::Ref(Some(tail)))?;
    heap.set_field(head, 1, Value::Ref(Some(mid)))?;
    for (i, obj) in [head, mid, tail].into_iter().enumerate() {
        heap.set_field(obj, 0, Value::Int(i as i32 * 10))?;
    }

    // 3. Derive the per-class record/fold methods (what the paper's
    //    preprocessor generates) and take a first checkpoint: everything
    //    is freshly allocated, so everything is recorded.
    let methods = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut store = CheckpointStore::new();
    let base = ckp.checkpoint(&mut heap, &methods, &[head])?;
    println!(
        "base checkpoint: {} objects, {} bytes",
        base.stats().objects_recorded,
        base.len_bytes()
    );
    store.push(base)?;

    // 4. Mutate one object; the write barrier marks it. The next
    //    incremental checkpoint records only that object.
    heap.set_field(tail, 0, Value::Int(999))?;
    let incr = ckp.checkpoint(&mut heap, &methods, &[head])?;
    println!(
        "incremental checkpoint: {} object(s), {} bytes",
        incr.stats().objects_recorded,
        incr.len_bytes()
    );
    store.push(incr)?;

    // 5. Recover from the store and verify the rebuilt state is exact.
    let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient)?;
    match verify_restore(&heap, &[head], &rebuilt)? {
        None => println!("restore verified: recovered state identical to live state"),
        Some(diff) => println!("restore diverged: {diff}"),
    }

    let tail_restored = rebuilt.lookup(heap.stable_id(tail)?).expect("tail exists");
    println!("restored tail value = {}", rebuilt.heap().field(tail_restored, 0)?);
    Ok(())
}
