//! The sharded parallel engine streaming into the crash-safe store —
//! killed mid-commit, recovered, resumed, same answer.
//!
//! ```text
//! cargo run --release --example parallel_durable
//! ```
//!
//! `parallel_checkpoint.rs` shows the sharded engine; `durable_recovery.rs`
//! shows crash recovery with the sequential checkpointer. This example
//! composes them: [`ParallelBackend::checkpoint_into`] hands each
//! record straight to the [`DurableStore`] sink, so shard traversal and
//! durability are one pipeline. The fault-injection filesystem then
//! kills the process during a commit; recovery reopens the directory,
//! discards the torn commit, and a fresh parallel backend resumes from
//! the last acknowledged checkpoint.

use ickp::backend::ParallelBackend;
use ickp::core::{restore, verify_restore, RestorePolicy};
use ickp::durable::{DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, Vfs};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

const STRUCTURES: usize = 12;
const LIST_LEN: usize = 6;
const ROUNDS: u64 = 32;
const CHECKPOINT_EVERY: u64 = 4;
const WORKERS: usize = 4;

/// Durable-store cost model (see `durable_recovery.rs`): creating a
/// store is 4 I/O ops, each append 6. The plan below kills the run on
/// the manifest rename of the 6th append — the round-20 checkpoint.
const CREATE_OPS: u64 = 4;
const APPEND_OPS: u64 = 6;

/// A dozen independent list structures — exactly the shape the
/// first-touch shard planner splits across workers.
fn build_world() -> Result<(Heap, Vec<ObjectId>), Box<dyn std::error::Error>> {
    let mut registry = ClassRegistry::new();
    let cell = registry.define(
        "Cell",
        None,
        &[("acc", FieldType::Long), ("next", FieldType::Ref(None))],
    )?;
    let mut heap = Heap::new(registry);
    let mut roots = Vec::with_capacity(STRUCTURES);
    for _ in 0..STRUCTURES {
        let mut next: Option<ObjectId> = None;
        for _ in 0..LIST_LEN {
            let c = heap.alloc(cell)?;
            heap.set_field(c, 1, Value::Ref(next))?;
            next = Some(c);
        }
        roots.push(next.expect("LIST_LEN > 0"));
    }
    Ok((heap, roots))
}

/// One deterministic round of work: every cell of every list folds a
/// round- and position-dependent term into its accumulator.
fn work(heap: &mut Heap, roots: &[ObjectId], round: u64) -> Result<(), Box<dyn std::error::Error>> {
    for (s, &head) in roots.iter().enumerate() {
        let mut cursor = Some(head);
        let mut pos = 0i64;
        while let Some(c) = cursor {
            let acc = match heap.field(c, 0)? {
                Value::Long(v) => v,
                other => panic!("acc is a Long, got {other:?}"),
            };
            let term = (round as i64).wrapping_mul(31).wrapping_add(s as i64 * 17 + pos);
            heap.set_field(c, 0, Value::Long(acc.wrapping_add(term)))?;
            cursor = match heap.field(c, 1)? {
                Value::Ref(r) => r,
                other => panic!("next is a Ref, got {other:?}"),
            };
            pos += 1;
        }
    }
    Ok(())
}

fn checksum(heap: &Heap, roots: &[ObjectId]) -> i64 {
    let mut sum = 0i64;
    for &head in roots {
        let mut cursor = Some(head);
        while let Some(c) = cursor {
            match heap.field(c, 0).expect("live cell") {
                Value::Long(v) => sum = sum.wrapping_mul(31).wrapping_add(v),
                other => panic!("acc is a Long, got {other:?}"),
            }
            cursor = match heap.field(c, 1).expect("live cell") {
                Value::Ref(r) => r,
                other => panic!("next is a Ref, got {other:?}"),
            };
        }
    }
    sum
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Reference: the uninterrupted run.
    // ------------------------------------------------------------------
    let (mut heap, roots) = build_world()?;
    for round in 1..=ROUNDS {
        work(&mut heap, &roots, round)?;
    }
    let expected = checksum(&heap, &roots);
    println!("reference run: {ROUNDS} rounds, checksum {expected}");

    // ------------------------------------------------------------------
    // Fault-tolerant run, part 1: parallel checkpoints into the store,
    // killed while the round-20 commit swaps its manifest in.
    // ------------------------------------------------------------------
    let crash_op = CREATE_OPS + 5 * APPEND_OPS + 4;
    let mut fs = FailFs::new(FaultPlan::crash_at(crash_op));
    let config = DurableConfig::default();

    let (mut heap, roots) = build_world()?;
    let registry = heap.registry().clone();
    let mut backend = ParallelBackend::new(WORKERS, &registry);
    let mut store = DurableStore::create(&mut fs, config)?;

    // A parallel base checkpoint, then increments on a fixed cadence.
    heap.mark_all_modified();
    backend.checkpoint_into(&mut heap, &roots, &mut store)?;
    let mut died_at_round = None;
    for round in 1..=ROUNDS {
        work(&mut heap, &roots, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            // `checkpoint_into` hands the record to the sink as it is
            // produced; a sink error means the checkpoint was *taken*
            // (shards traversed, flags reset) but never became durable.
            if backend.checkpoint_into(&mut heap, &roots, &mut store).is_err() {
                died_at_round = Some(round);
                break;
            }
        }
    }
    let died_at_round = died_at_round.expect("the fault plan kills the run");
    drop((heap, backend, store));
    assert!(fs.crashed());
    let mut disk: MemFs = fs.into_recovered();
    println!(
        "crashed while committing the round-{died_at_round} checkpoint; surviving files: {:?}",
        disk.list()?
    );

    // ------------------------------------------------------------------
    // Fault-tolerant run, part 2: reboot, recover, resume in parallel.
    // ------------------------------------------------------------------
    let (mut store, recovered) = DurableStore::open(&mut disk, config, &registry)?;
    let durable_round = (recovered.len() as u64 - 1) * CHECKPOINT_EVERY;
    println!(
        "recovery: {} checkpoints on disk, torn round-{died_at_round} commit discarded, \
         resuming after round {durable_round}",
        recovered.len()
    );
    assert!(durable_round < died_at_round);

    let rebuilt = restore(&recovered, &registry, RestorePolicy::Lenient)?;
    let roots = rebuilt.roots().to_vec();
    let mut heap = rebuilt.into_heap();

    // A fresh parallel backend picks up the sequence where the disk
    // left off; the sharded pipeline keeps streaming into the same store.
    let mut backend = ParallelBackend::new(WORKERS, &registry);
    backend.set_next_seq(recovered.latest().expect("non-empty").seq() + 1);
    for round in durable_round + 1..=ROUNDS {
        work(&mut heap, &roots, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            backend.checkpoint_into(&mut heap, &roots, &mut store)?;
        }
    }

    // ------------------------------------------------------------------
    // The verdict: same answer, and the disk agrees with the heap.
    // ------------------------------------------------------------------
    let got = checksum(&heap, &roots);
    assert_eq!(got, expected, "recovered parallel run diverged from the reference");
    drop(store);
    let (_, finished) = DurableStore::open(&mut disk, config, &registry)?;
    let rebuilt = restore(&finished, &registry, RestorePolicy::Lenient)?;
    assert_eq!(verify_restore(&heap, &roots, &rebuilt)?, None);
    println!(
        "recovered parallel run matches the reference \
         ({STRUCTURES} structures × {LIST_LEN} cells, {WORKERS} workers, checksum {got})"
    );
    Ok(())
}
