//! Checkpointing as serialization: migrating a "mobile agent" between
//! hosts (paper §6 — "checkpointing is conceptually similar to
//! serialization"; Java agent systems ship object state exactly this
//! way).
//!
//! An agent is a compound object (itinerary + accumulated results). The
//! origin host serializes it with a full checkpoint of its subgraph; the
//! destination host — a completely separate heap — deserializes it with
//! the restore machinery, and the agent continues its work there.
//!
//! ```text
//! cargo run --example agent_migration
//! ```

use ickp::core::{
    restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable, RestorePolicy,
};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

/// Defines the agent's classes on a registry shared by all hosts (the
/// class files travel with the agent system, not with the agent).
fn agent_classes(registry: &mut ClassRegistry) -> Result<(), Box<dyn std::error::Error>> {
    let stop = registry.define(
        "Stop",
        None,
        &[("host", FieldType::Int), ("visited", FieldType::Bool), ("next", FieldType::Ref(None))],
    )?;
    registry.define(
        "Agent",
        None,
        &[("sum", FieldType::Long), ("itinerary", FieldType::Ref(Some(stop)))],
    )?;
    Ok(())
}

/// The agent's work on one host: visit every unvisited stop matching the
/// host id, accumulate, and mark it visited.
fn work(heap: &mut Heap, agent: ObjectId, host: i32) -> Result<u32, Box<dyn std::error::Error>> {
    let mut visited = 0;
    let mut cur = heap.field_named(agent, "itinerary")?.as_ref_id();
    while let Some(stop) = cur {
        let stop_host = heap.field_named(stop, "host")?.as_int().unwrap_or(-1);
        let seen = heap.field_named(stop, "visited")?.as_bool().unwrap_or(false);
        if stop_host == host && !seen {
            heap.set_field_named(stop, "visited", Value::Bool(true))?;
            let sum = heap.field_named(agent, "sum")?.as_long().unwrap_or(0);
            heap.set_field_named(agent, "sum", Value::Long(sum + host as i64 * 100))?;
            visited += 1;
        }
        cur = heap.field_named(stop, "next")?.as_ref_id();
    }
    Ok(visited)
}

/// Serializes the agent's subgraph for transmission.
fn serialize(heap: &mut Heap, agent: ObjectId) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let methods = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::full());
    let rec = ckp.checkpoint(heap, &methods, &[agent])?;
    Ok(rec.bytes().to_vec())
}

/// Deserializes the agent into a host's heap.
fn deserialize(
    host_heap_registry: &ClassRegistry,
    wire: &[u8],
) -> Result<(Heap, ObjectId), Box<dyn std::error::Error>> {
    // A single full checkpoint is a complete serialized object graph.
    let decoded = ickp::core::decode(wire, host_heap_registry)?;
    let mut store = CheckpointStore::new();
    store.push(ickp::core::CheckpointRecord::from_parts(
        decoded.seq,
        ickp::core::CheckpointKind::Full,
        decoded.roots.clone(),
        wire.to_vec(),
        Default::default(),
    ))?;
    let rebuilt = restore(&store, host_heap_registry, RestorePolicy::RequireFullBase)?;
    let agent = rebuilt.roots()[0];
    Ok((rebuilt.into_heap(), agent))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = ClassRegistry::new();
    agent_classes(&mut registry)?;

    // ---- Host 1: create the agent with a 6-stop itinerary -------------
    let mut host1 = Heap::new(registry.clone());
    let stop_class = host1.registry().id_of("Stop")?;
    let agent_class = host1.registry().id_of("Agent")?;
    let mut next: Option<ObjectId> = None;
    for host in [3, 2, 1, 3, 2, 1] {
        let s = host1.alloc(stop_class)?;
        host1.set_field_named(s, "host", Value::Int(host))?;
        host1.set_field_named(s, "next", Value::Ref(next))?;
        next = Some(s);
    }
    let agent = host1.alloc(agent_class)?;
    host1.set_field_named(agent, "itinerary", Value::Ref(next))?;

    let visited = work(&mut host1, agent, 1)?;
    println!("host 1: visited {visited} stops, sum = {}", host1.field_named(agent, "sum")?);

    // ---- Migrate to host 2 --------------------------------------------
    let wire = serialize(&mut host1, agent)?;
    println!("serialized agent: {} bytes on the wire", wire.len());
    drop(host1); // the origin host forgets the agent

    let (mut host2, agent) = deserialize(&registry, &wire)?;
    let visited = work(&mut host2, agent, 2)?;
    println!("host 2: visited {visited} stops, sum = {}", host2.field_named(agent, "sum")?);

    // ---- Migrate to host 3 --------------------------------------------
    let wire = serialize(&mut host2, agent)?;
    drop(host2);
    let (mut host3, agent) = deserialize(&registry, &wire)?;
    let visited = work(&mut host3, agent, 3)?;
    let sum = host3.field_named(agent, "sum")?.as_long().unwrap();
    println!("host 3: visited {visited} stops, sum = {sum}");

    // 2 stops per host: 2*(100 + 200 + 300).
    assert_eq!(sum, 1200, "agent accumulated the full itinerary");
    println!("\nagent completed its itinerary across 3 hosts ✓");
    Ok(())
}
