//! Parallel sharded checkpointing: same bytes, spread over worker threads.
//!
//! ```text
//! cargo run --release --example parallel_checkpoint
//! ```
//!
//! Builds a forest of linked structures, checkpoints it with the
//! sequential generic driver and with the parallel sharded engine at
//! several worker counts, and proves the streams byte-identical and the
//! store restorable.

use ickp::backend::ParallelBackend;
use ickp::core::{
    restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp::heap::{ClassRegistry, FieldType, Heap, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A forest of 1 000 chains, with some sharing between neighbours so
    //    the shard partitioner has real ownership conflicts to resolve.
    let mut registry = ClassRegistry::new();
    let node = registry.define(
        "Node",
        None,
        &[("value", FieldType::Int), ("next", FieldType::Ref(None))],
    )?;
    let mut heap = Heap::new(registry);
    let mut roots = Vec::new();
    let mut prev_mid = None;
    for i in 0..1_000 {
        let tail = heap.alloc(node)?;
        let mid = heap.alloc(node)?;
        let head = heap.alloc(node)?;
        heap.set_field(head, 0, Value::Int(i))?;
        heap.set_field(head, 1, Value::Ref(Some(mid)))?;
        heap.set_field(mid, 1, Value::Ref(Some(tail)))?;
        if i % 3 == 0 {
            if let Some(shared) = prev_mid {
                heap.set_field(tail, 1, Value::Ref(Some(shared)))?;
            }
        }
        prev_mid = Some(mid);
        roots.push(head);
    }

    // 2. The sequential reference stream.
    let methods = MethodTable::derive(heap.registry());
    let reference = Checkpointer::new(CheckpointConfig::incremental()).checkpoint(
        &mut heap.clone(),
        &methods,
        &roots,
    )?;
    println!(
        "sequential: {} objects, {} bytes",
        reference.stats().objects_recorded,
        reference.len_bytes()
    );

    // 3. The parallel engine at several worker counts — byte-identical.
    for workers in [1, 2, 4, 8] {
        let mut backend = ParallelBackend::new(workers, heap.registry());
        let record = backend.checkpoint(&mut heap.clone(), &roots)?;
        assert_eq!(record.bytes(), reference.bytes());
        println!("parallel x{workers}: byte-identical ({} bytes)", record.len_bytes());
    }

    // 4. And the parallel records feed the ordinary store/restore path.
    let mut backend = ParallelBackend::new(4, heap.registry());
    let mut store = CheckpointStore::new();
    store.push(backend.checkpoint(&mut heap, &roots)?)?;
    heap.set_field(roots[123], 0, Value::Int(-1))?; // write barrier marks it
    let incr = backend.checkpoint(&mut heap, &roots)?;
    println!("incremental after 1 write: {} object recorded", incr.stats().objects_recorded);
    store.push(incr)?;

    let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient)?;
    assert_eq!(verify_restore(&heap, &roots, &rebuilt)?, None);
    println!("restore verified: rebuilt state identical to the live heap");
    Ok(())
}
