//! The paper's synthetic benchmark, at example scale: build compound
//! structures, dirty a controlled subset, and compare full, incremental,
//! and specialized checkpointing side by side.
//!
//! ```text
//! cargo run --release --example synthetic
//! ```

use ickp::core::{CheckpointConfig, Checkpointer, MethodTable};
use ickp::spec::{GuardMode, SpecializedCheckpointer, Specializer};
use ickp::synth::{ModificationSpec, SynthConfig, SynthWorld};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 000 structures × 5 lists × 5 elements, one int per element.
    let config = SynthConfig {
        structures: 2_000,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 1,
        seed: 42,
    };
    let mut world = SynthWorld::build(config)?;
    println!(
        "built {} compound structures ({} objects total)\n",
        config.structures,
        world.object_count()
    );

    // This phase modifies only the last element of the first list of each
    // structure, half of them per round — the Figure 10 scenario.
    let mods = ModificationSpec { pct_modified: 50, modified_lists: 1, last_only: true };

    let table = MethodTable::derive(world.heap().registry());
    let spec = Specializer::new(world.heap().registry());
    let plan_structure = spec.compile(&world.shape_structure_only())?;
    let plan_last = spec.compile(&world.shape_last_only(1))?;
    let roots = world.roots().to_vec();

    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "variant", "bytes", "recorded", "visited", "tests", "time"
    );
    let run = |name: &str,
               world: &mut SynthWorld,
               f: &mut dyn FnMut(&mut SynthWorld) -> ickp::core::CheckpointRecord| {
        world.apply_modifications(&mods);
        let start = Instant::now();
        let rec = f(world);
        let elapsed = start.elapsed();
        world.reset_modified();
        println!(
            "{:<34} {:>10} {:>9} {:>9} {:>9} {:>7.2}ms",
            name,
            rec.len_bytes(),
            rec.stats().objects_recorded,
            rec.stats().objects_visited,
            rec.stats().flag_tests,
            elapsed.as_secs_f64() * 1e3,
        );
    };

    let mut full = Checkpointer::new(CheckpointConfig::full());
    run("full (records everything)", &mut world, &mut |w| {
        full.checkpoint(w.heap_mut(), &table, &roots).expect("checkpoint")
    });

    let mut incr = Checkpointer::new(CheckpointConfig::incremental());
    run("incremental (generic)", &mut world, &mut |w| {
        incr.checkpoint(w.heap_mut(), &table, &roots).expect("checkpoint")
    });

    let mut s1 = SpecializedCheckpointer::new(GuardMode::Trusting);
    run("specialized: structure only", &mut world, &mut |w| {
        s1.checkpoint(w.heap_mut(), &plan_structure, &roots, None).expect("checkpoint")
    });

    let mut s2 = SpecializedCheckpointer::new(GuardMode::Trusting);
    run("specialized: structure+pattern", &mut world, &mut |w| {
        s2.checkpoint(w.heap_mut(), &plan_last, &roots, None).expect("checkpoint")
    });

    println!("\nNote how the structure+pattern plan tests exactly one object per");
    println!("structure (the only one this phase can modify) while the generic");
    println!(
        "incremental checkpointer still walks and tests all {} objects.",
        world.object_count()
    );
    Ok(())
}
