//! Kill a computation mid-write, recover from disk, same answer.
//!
//! ```text
//! cargo run --release --example durable_recovery
//! ```
//!
//! The earlier simulated version of this example kept its checkpoints in
//! an in-memory store and "crashed" by abandoning the heap. This one
//! goes further: checkpoints stream into the crash-safe segmented
//! durable store, and the fault-injection filesystem kills the process
//! *during* a commit — mid-append, while the new manifest is being
//! swapped in. Everything volatile is lost; only bytes that survived an
//! fsync remain. Recovery reopens the directory, truncates the torn
//! tail, restores the last acknowledged checkpoint, and the resumed run
//! finishes with exactly the answer an uninterrupted run produces.

use ickp::core::{
    restore, verify_restore, CheckpointConfig, Checkpointer, MethodTable, RestorePolicy,
};
use ickp::durable::{DurableConfig, DurableStore, FailFs, FaultPlan, MemFs, Vfs};
use ickp::heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};

const CELLS: usize = 64;
const ROUNDS: u64 = 40;
const CHECKPOINT_EVERY: u64 = 5;

/// Durable-store cost model: creating a store is 4 I/O ops, each append
/// is 6 (frame write, segment fsync, manifest write, manifest fsync,
/// rename, directory fsync).
const CREATE_OPS: u64 = 4;
const APPEND_OPS: u64 = 6;

fn build_world() -> Result<(Heap, Vec<ObjectId>), Box<dyn std::error::Error>> {
    let mut registry = ClassRegistry::new();
    let cell =
        registry.define("Cell", None, &[("id", FieldType::Int), ("acc", FieldType::Long)])?;
    let mut heap = Heap::new(registry);
    let mut cells = Vec::with_capacity(CELLS);
    for i in 0..CELLS {
        let c = heap.alloc(cell)?;
        heap.set_field(c, 0, Value::Int(i as i32))?;
        heap.set_field(c, 1, Value::Long(0))?;
        cells.push(c);
    }
    Ok((heap, cells))
}

/// One round of "work": every cell folds a round-dependent term into its
/// accumulator. Deterministic, so two runs agree iff no update was lost.
fn work(heap: &mut Heap, cells: &[ObjectId], round: u64) -> Result<(), Box<dyn std::error::Error>> {
    for (i, &c) in cells.iter().enumerate() {
        let acc = match heap.field(c, 1)? {
            Value::Long(v) => v,
            other => panic!("acc is a Long, got {other:?}"),
        };
        let term = (round as i64).wrapping_mul(31).wrapping_add(i as i64 * 7 + 1);
        heap.set_field(c, 1, Value::Long(acc.wrapping_add(term)))?;
    }
    Ok(())
}

fn accs(heap: &Heap, cells: &[ObjectId]) -> Vec<i64> {
    cells
        .iter()
        .map(|&c| match heap.field(c, 1).expect("live cell") {
            Value::Long(v) => v,
            other => panic!("acc is a Long, got {other:?}"),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Reference: the uninterrupted run.
    // ------------------------------------------------------------------
    let (mut heap, cells) = build_world()?;
    for round in 1..=ROUNDS {
        work(&mut heap, &cells, round)?;
    }
    let expected = accs(&heap, &cells);
    println!("reference run: {ROUNDS} rounds, no interruption");

    // ------------------------------------------------------------------
    // Fault-tolerant run, part 1: killed mid-commit.
    //
    // Checkpoints land every {CHECKPOINT_EVERY} rounds: a base at round
    // 0, then rounds 5, 10, ... The fault plan kills the process during
    // the 7th append (the round-30 checkpoint), on the rename that would
    // have made its manifest current — the frame is already in the
    // segment file, but the commit never lands.
    // ------------------------------------------------------------------
    let crash_op = CREATE_OPS + 6 * APPEND_OPS + 4;
    let mut fs = FailFs::new(FaultPlan::crash_at(crash_op));
    let config = DurableConfig { segment_target_bytes: 4 * 1024 };

    let (mut heap, cells) = build_world()?;
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut store = DurableStore::create(&mut fs, config)?;

    heap.mark_all_modified();
    store.append(&ckp.checkpoint(&mut heap, &table, &cells)?)?;
    let mut died_at_round = None;
    for round in 1..=ROUNDS {
        work(&mut heap, &cells, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            let record = ckp.checkpoint(&mut heap, &table, &cells)?;
            if store.append(&record).is_err() {
                died_at_round = Some(round);
                break;
            }
        }
    }
    let died_at_round = died_at_round.expect("the fault plan kills the run");
    // The process is gone: heap, checkpointer and store handle all die
    // with it. Only the filesystem's durable image survives.
    drop((heap, ckp, store));
    assert!(fs.crashed());
    let mut disk: MemFs = fs.into_recovered();
    println!(
        "crashed while committing the round-{died_at_round} checkpoint; surviving files: {:?}",
        disk.list()?
    );

    // ------------------------------------------------------------------
    // Fault-tolerant run, part 2: reboot and recover.
    // ------------------------------------------------------------------
    let (ref_heap, _) = build_world()?;
    let registry = ref_heap.registry().clone();
    let (mut store, recovered) = DurableStore::open(&mut disk, config, &registry)?;
    let durable_round = (recovered.len() as u64 - 1) * CHECKPOINT_EVERY;
    println!(
        "recovery: {} checkpoints on disk, torn round-{died_at_round} commit discarded, \
         resuming after round {durable_round}",
        recovered.len()
    );
    assert!(durable_round < died_at_round);

    let rebuilt = restore(&recovered, &registry, RestorePolicy::Lenient)?;
    let cells = rebuilt.roots().to_vec();
    let mut heap = rebuilt.into_heap();

    // Redo the lost rounds, checkpointing on the same cadence into the
    // reopened store; sequence numbers continue where the disk left off.
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    ckp.set_next_seq(recovered.latest().expect("non-empty").seq() + 1);
    for round in durable_round + 1..=ROUNDS {
        work(&mut heap, &cells, round)?;
        if round % CHECKPOINT_EVERY == 0 {
            store.append(&ckp.checkpoint(&mut heap, &table, &cells)?)?;
        }
    }

    // ------------------------------------------------------------------
    // The verdict: same answer, and the disk tells the same story.
    // ------------------------------------------------------------------
    let got = accs(&heap, &cells);
    assert_eq!(got, expected, "recovered run diverged from the reference");
    let (_, finished) = DurableStore::open(&mut disk, config, &registry)?;
    let rebuilt = restore(&finished, &registry, RestorePolicy::Lenient)?;
    assert_eq!(verify_restore(&heap, &cells, &rebuilt)?, None);
    println!(
        "recovered run matches the reference ({} cells, checksum {})",
        CELLS,
        got.iter().fold(0i64, |a, v| a.wrapping_mul(31).wrapping_add(*v))
    );
    Ok(())
}
